#!/usr/bin/env python3
"""Protecting onboard navigation math: risk analysis + quantized checking.

The paper motivates protection with navigation/communication workloads that
"can tolerate some error in the result".  This example:

1. runs the static risk-analysis pass over the navigation workloads to find
   the most SEU-vulnerable code regions;
2. applies quantized (order-of-magnitude) checking to a floating-point
   multiply/divide chain and shows which targeted bit flips it catches at
   each protected-mantissa-bits setting k.

Run:  python examples/nav_protection.py
"""

from repro import PROGRAMS, QuantizedProgram, build_program
from repro.core.risk.report import analyze, render_report
from repro.faults.model import FaultSpec, FaultTarget
from repro.faults.seu import RegisterFaultInjector
from repro.ir.interp import ExecutionStatus, Interpreter


def risk_section() -> None:
    print("=== static risk analysis (sect. 4.2's LLVM pass) ===\n")
    for name in ("kalman", "orbit"):
        module = build_program(name)
        report = analyze(module.function(name), module)
        print(render_report(report))
        print(
            f"-> protect {report.hottest_block.label} first "
            f"(rating {report.hottest_block.rating})\n"
        )


def quantize_section() -> None:
    print("=== quantized data-flow checking (sect. 4.1) ===\n")
    base = build_program("fmul_chain")
    args = PROGRAMS["fmul_chain"].default_args
    flips = [
        ("fmul2", 60, "exponent bit 60"),
        ("fmul7", 63, "sign bit at output"),
        ("fmul7", 51, "mantissa MSB (50% error)"),
        ("fmul7", 20, "mantissa bit 20 (~1e-10 error)"),
    ]
    print(f"{'injected flip':28s} " +
          " ".join(f"{'k=' + str(k):>8s}" for k in (0, 4, 8)))
    for register, bit, label in flips:
        cells = []
        for k in (0, 4, 8):
            program = QuantizedProgram(base, "fmul_chain", k=k)
            injector = RegisterFaultInjector(
                FaultSpec(FaultTarget.REGISTER, 0, location=register,
                          bit=bit),
                seed=1,
            )
            interp = Interpreter(program.module, step_hook=injector)
            status = interp.run("fmul_chain", list(args)).status
            cells.append(
                "caught" if status is ExecutionStatus.DETECTED else "passed"
            )
        print(f"{label:28s} " + " ".join(f"{c:>8s}" for c in cells))
    program = QuantizedProgram(base, "fmul_chain", k=0)
    print(
        f"\ncycle overhead of the shadow checks: "
        f"{program.overhead(args):.2f}x (full DMR on this chain costs more;"
        " see benchmarks/bench_quantize_overhead.py)"
    )


def main() -> None:
    risk_section()
    quantize_section()


if __name__ == "__main__":
    main()
