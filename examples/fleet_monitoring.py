#!/usr/bin/env python3
"""Fleet monitoring: one shared detector supervising sixteen boards.

A constellation operator doesn't run one flight computer — it runs a
fleet.  This example trains a single residual-CUSUM detector on clean
telemetry, then multiplexes sixteen simulated boards through it with
``SelFleetService``: per-board alarm persistence, per-board power-cycle
escalation, and quarantine for boards whose current sensor drops out.
One board suffers a 5 mA latch-up mid-run; one board loses its sensor
for half a minute.

Run:  python examples/fleet_monitoring.py
"""

from repro.core.sel import (
    FleetMember, SelFleetService, SelTrialConfig,
    train_detector_on_clean_trace,
)
from repro.detect import FleetConfig, ResidualCusumDetector
from repro.faults.sel import LatchupEvent
from repro.hw.board import Board
from repro.hw.specs import RASPBERRY_PI_4
from repro.obs import FleetDecision, InMemorySink, MetricsSink, Tracer
from repro.obs.report import render_fleet
from repro.workloads.stress import cpu_memory_stress_schedule

N_BOARDS = 16
LATCHED, DROPPED = 7, 12


def main() -> None:
    print("training the shared detector on 2 min of clean telemetry...")
    detector = train_detector_on_clean_trace(
        ResidualCusumDetector(h_sigma=40.0),
        SelTrialConfig(train_duration_s=120.0),
        seed=11,
    )

    members = [
        FleetMember(
            board_id=f"board-{b:02d}",
            board=Board(spec=RASPBERRY_PI_4, seed=200 + b),
            schedule=cpu_memory_stress_schedule(RASPBERRY_PI_4.n_cores),
        )
        for b in range(N_BOARDS)
    ]
    members[LATCHED].board.inject_latchup(
        LatchupEvent(onset_s=40.0, delta_current_a=0.005)
    )
    members[DROPPED].board.sensor.fail_between(60.0, 90.0)

    sink, metrics = InMemorySink(), MetricsSink()
    service = SelFleetService(
        detector, members, FleetConfig(),
        tracer=Tracer(sink, metrics), metrics=metrics.registry,
    )
    print(f"running {N_BOARDS} boards for 3 min at 10 Hz "
          f"(latch-up on board-{LATCHED:02d}, "
          f"sensor dropout on board-{DROPPED:02d})...\n")
    service.run(duration_s=180.0, rate_hz=10.0)

    decisions = [e for e in sink.events if isinstance(e, FleetDecision)]
    print(render_fleet(decisions))
    snap = metrics.registry.snapshot()
    lat = snap["histograms"]["fleet.score_latency_s"]
    # The latency values themselves are wall-clock (vary run to run);
    # the deterministic counters show the metrics wiring end to end.
    print(f"\nscoring latency histogram: {lat['count']} ticks recorded; "
          f"{snap['counters']['fleet.samples_scored']} samples scored, "
          f"{snap['counters']['fleet.alarms']} alarm decisions")
    for member in members:
        if member.board.power_cycles:
            print(f"power-cycled: {member.board_id} "
                  f"(destroyed={member.board.destroyed})")
    print(
        "\nOne shared fitted detector scores the whole fleet per tick"
        "\n(bitwise identical to per-board daemons); only the latched"
        "\nboard reboots, and the dropped-out board is quarantined"
        "\ninstead of raising false alarms on NaN readings."
    )


if __name__ == "__main__":
    main()
