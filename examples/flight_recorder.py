#!/usr/bin/env python3
"""The flight recorder in action: trace a campaign, read the black box.

A flight computer's last moments live in a battery-backed ring buffer so
the post-mortem can explain a reboot nobody watched.  This demo attaches
the library's observability stack to two fault-injection campaigns:

- a :class:`~repro.obs.recorder.FlightRecorder` keeps the most recent
  events and snapshots a post-mortem dump whenever a trial ends in CRASH
  or HANG (and survives the escalation ladder's power cycles);
- a :class:`~repro.obs.metrics.MetricsSink` folds the same event stream
  into counters and latency histograms;
- a :class:`~repro.obs.events.JsonlSink` writes the trace to disk for
  ``python -m repro.obs.report``.

Run:  python examples/flight_recorder.py
"""

import tempfile
from pathlib import Path

from repro.faults.campaign import Campaign, run_campaign
from repro.obs.events import JsonlSink, Tracer
from repro.obs.metrics import MetricsSink
from repro.obs.recorder import FlightRecorder
from repro.obs.report import outcome_counts, read_trace, render, summarize
from repro.recover import SupervisorConfig, run_supervised_campaign
from repro.workloads.irprograms import PROGRAMS, build_program


def _campaign(name: str, n_trials: int = 150) -> Campaign:
    return Campaign(
        module=build_program(name),
        func_name=name,
        args=PROGRAMS[name].default_args,
        n_trials=n_trials,
    )


def main() -> None:
    trace_path = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "trace.jsonl"
    recorder = FlightRecorder(capacity=48, max_dumps=64)
    metrics = MetricsSink()

    print("=== traced campaigns: isort (crashes) + fib (hangs) ===\n")
    with Tracer(JsonlSink(trace_path), recorder, metrics) as tracer:
        crash_run = run_campaign(_campaign("isort"), seed=7, tracer=tracer)
        hang_run = run_campaign(_campaign("fib"), seed=7, tracer=tracer)
        supervised = run_supervised_campaign(
            _campaign("isort", n_trials=80),
            SupervisorConfig(checkpoint_interval=100),
            seed=13,
            tracer=tracer,
        )

    print(f"isort: {crash_run.counts.as_dict()}")
    print(f"fib:   {hang_run.counts.as_dict()}")
    print(f"supervised isort: {supervised.counts.as_dict()} "
          f"(recovery rate {supervised.recovery_rate:.1%})\n")

    print("=== the black box ===\n")
    print(f"dumps taken: {len(recorder.dumps)} "
          f"({len(recorder.dumps_for('crash'))} crash, "
          f"{len(recorder.dumps_for('hang'))} hang); "
          f"{recorder.dropped} events aged out of the ring, "
          f"{recorder.power_cycles} power cycle(s) survived\n")
    print(recorder.dumps[0].render())

    print("\n=== metrics folded from the same stream ===\n")
    snapshot = metrics.registry.snapshot()
    for name, value in snapshot["counters"].items():
        print(f"  {name:<28} {value}")
    latency = snapshot["histograms"].get("recovery.latency_s")
    if latency:
        print(f"  recovery latency_s: p50={latency['p50']:.3e} "
              f"p90={latency['p90']:.3e} max={latency['max']:.3e}")

    print("\n=== the evidence is self-consistent ===\n")
    events = [event for _, event in read_trace(trace_path)]
    rebuilt = outcome_counts(events)
    engine = {
        outcome: crash_run.counts.as_dict()[outcome]
        + hang_run.counts.as_dict()[outcome]
        + supervised.counts.as_dict()[outcome]
        for outcome in rebuilt
    }
    print(f"engine tally:     {engine}")
    print(f"rebuilt from log: {rebuilt}")
    assert rebuilt == engine, "trace disagrees with the engine!"

    print(f"\n=== report CLI (python -m repro.obs.report {trace_path}) ===\n")
    print(render(summarize(events), source=str(trace_path)))


if __name__ == "__main__":
    main()
