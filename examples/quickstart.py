#!/usr/bin/env python3
"""Quickstart: protect a program with tunable DMR and measure the trade-off.

Builds a workload from the bundled suite, instruments it at every
protection level, and prints the cycle overhead and fault-injection outcome
mix at each level — the library's core loop in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import PROGRAMS, ProtectedProgram, build_program
from repro.core.dmr.levels import ALL_LEVELS


def main() -> None:
    name = "collatz"
    module = build_program(name)
    args = PROGRAMS[name].default_args
    print(f"workload: {name}{args} — {PROGRAMS[name].description}\n")
    print(f"{'level':14s} {'overhead':>9s} {'benign':>7s} {'SDC':>5s} "
          f"{'crash':>6s} {'hang':>5s} {'detected':>9s}")
    for level in ALL_LEVELS:
        prog = ProtectedProgram(module, name, level)
        overhead = prog.overhead(args)
        counts = prog.campaign(args, n_trials=200, seed=7).counts.as_dict()
        print(
            f"{level.value:14s} {overhead:8.2f}x {counts['benign']:7d} "
            f"{counts['sdc']:5d} {counts['crash']:6d} {counts['hang']:5d} "
            f"{counts['detected']:9d}"
        )
    print(
        "\nReading the table: each level duplicates a larger slice of the"
        "\nprogram (overhead grows) and converts more silent corruptions"
        "\n(SDC) into detections — the paper's tunable redundancy."
    )


if __name__ == "__main__":
    main()
