#!/usr/bin/env python3
"""Coprocessor memory scrubbing: policies under radiation.

Boots a small non-ECC memory, checksums it through the kernel module,
bombards it with accelerated SEUs while a Zipf workload reads and writes,
and lets the DSP-hosted scrubber race the reads — once per scheduling
policy.

Run:  python examples/memory_scrubbing.py
"""

import numpy as np

from repro.core.scrubber import ScrubSimConfig, run_scrub_simulation


def main() -> None:
    config_base = dict(
        n_pages=128, page_size=256, duration_s=120.0,
        seu_rate_per_bit_s=2e-6, accesses_per_s=120.0, zipf_s=2.0,
        scrub_pages_per_s=8.0,
    )
    print(
        "128 pages x 256 B, accelerated SEU rate, hot-skewed workload,\n"
        "DSP budget of 8 page-verifies per second\n"
    )
    print(f"{'policy':12s} {'flips':>6s} {'mean exposure':>14s} "
          f"{'corrupted reads':>16s} {'repaired':>9s} {'baked-in':>9s}")
    for policy in ("sequential", "lru", "predicted", "random"):
        lat, frac, corrected, baked, flips = [], [], 0, 0, 0
        for seed in (1, 2, 3):
            r = run_scrub_simulation(
                ScrubSimConfig(policy=policy, **config_base), seed=seed
            )
            lat.extend(r.detection_latencies_s)
            frac.append(r.corrupted_read_fraction)
            corrected += r.pages_corrected
            baked += r.baked_in
            flips += r.flips_injected
        print(
            f"{policy:12s} {flips:6d} {np.mean(lat):13.1f}s "
            f"{np.mean(frac) * 100:15.2f}% {corrected:9d} {baked:9d}"
        )
    print(
        "\nexposure = how long a flip survives before the scrubber clears"
        "\nit; corrupted reads = reads served from a flipped page first."
        "\nLRU minimizes exposure of cold data; predicted-access shields"
        "\nthe hot set the workload is about to read.  All verification"
        "\nruns on the idle DSP — zero CPU cycles (sect. 4.1)."
    )


if __name__ == "__main__":
    main()
