#!/usr/bin/env python3
"""Mission planning: should this constellation fly commodity hardware?

Runs year-long mission simulations across hardware/protection
configurations and radiation environments, answering the paper's headline
question with numbers: software protection lets commodity hardware match
rad-hard survivability at a fraction of the cost.

Run:  python examples/mission_planning.py
"""

from repro.radiation.environment import LEO_NOMINAL, MARS_SURFACE, SOLAR_STORM
from repro.sim.mission import (
    PROTECTED_COMMODITY, RAD_HARD_BASELINE, UNPROTECTED_COMMODITY,
    sweep_profiles,
)
from repro.sim.report import render_mission_table

PROFILES = [UNPROTECTED_COMMODITY, PROTECTED_COMMODITY, RAD_HARD_BASELINE]


def main() -> None:
    for environment, days in (
        (LEO_NOMINAL, 365.0),
        (SOLAR_STORM, 90.0),
        (MARS_SURFACE, 365.0),
    ):
        print(f"=== {environment.name}, {days:.0f} days "
              f"(mean of 5 runs) ===")
        reports = sweep_profiles(
            PROFILES, environment=environment, duration_days=days,
            n_runs=5, seed=4,
        )
        print(render_mission_table(reports))
        print()
    print(
        "columns: uptime = fraction of the mission the computer was alive"
        "\nand not rebooting; SDC/day = silent corruptions reaching output"
        "\nper alive day; loss P = probability the board was permanently"
        "\ndestroyed; compute = useful work normalized to an unprotected"
        "\nSnapdragon 801 (includes protection overhead and the rad-hard"
        "\npart's Table 1 clock deficit)."
    )


if __name__ == "__main__":
    main()
