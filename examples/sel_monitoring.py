#!/usr/bin/env python3
"""SEL monitoring: a flight computer's current-anomaly daemon, end to end.

Simulates the paper's sect. 3 scenario: a Raspberry-Pi-class board runs a
cycling CPU/memory stress workload; a user-mode daemon samples
software-extractable metrics plus the current sensor; a latch-up begins
drawing extra current mid-run.  Four detectors race the 3-minute damage
deadline.

Run:  python examples/sel_monitoring.py
"""

from repro.core.sel import (
    SelTrialConfig, run_detection_trial, train_detector_on_clean_trace,
)
from repro.core.sel.experiment import false_alarm_rate
from repro.detect import (
    CurrentThresholdDetector, EllipticEnvelopeDetector,
    LinearResidualDetector, ResidualCusumDetector,
)

DETECTORS = {
    "naive current threshold": CurrentThresholdDetector(),
    "linear residual (metric-aware)": LinearResidualDetector(),
    "elliptic envelope (paper)": EllipticEnvelopeDetector(seed=3),
    "residual + CUSUM": ResidualCusumDetector(),
}
DELTAS_MA = (5, 20, 100, 500)


def main() -> None:
    config = SelTrialConfig(train_duration_s=180.0, eval_duration_s=240.0)
    print("training each detector on 3 minutes of clean telemetry...\n")
    print(f"{'detector':32s} {'FA/h':>5s} " +
          " ".join(f"{d:>4d}mA" for d in DELTAS_MA))
    for name, detector in DETECTORS.items():
        trained = train_detector_on_clean_trace(detector, config, seed=11)
        fa = false_alarm_rate(trained, config, seed=77)
        cells = []
        for delta_ma in DELTAS_MA:
            trial = run_detection_trial(
                trained, delta_ma / 1000.0, config, seed=42
            )
            cells.append(
                f"{trial.latency_s:5.1f}s" if trial.saved else " MISS "
            )
        print(f"{name:32s} {fa:5.1f} " + " ".join(cells))
    print(
        "\nMISS = the latch-up outlived the 180 s damage deadline and the"
        "\nboard was destroyed.  The black-box threshold only catches"
        "\nampere-scale events; modelling current from CPU/memory metrics"
        "\n(the paper's method) reaches down to the 5 mA case."
    )


if __name__ == "__main__":
    main()
