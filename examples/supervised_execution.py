#!/usr/bin/env python3
"""Supervised execution: a flight-software supervisor recovers from faults.

Runs a fault-injection campaign with the recovery supervisor in the loop:
each trial executes under chained checkpoint / watchdog hooks, and every
observable failure (crash, hang, DMR detection) is driven up the
escalation ladder — task retry, rollback to the last checksum-verified
checkpoint, cold restart, power cycle — until the task delivers a correct
output.  Then an adaptive controller is shown reacting to a solar-storm
fault-rate spike by escalating the DMR level and scrub cadence.

Run:  python examples/supervised_execution.py
"""

from repro.core.dmr import ProtectedProgram, ProtectionLevel
from repro.faults.campaign import Campaign
from repro.recover import (
    AdaptiveConfig,
    AdaptiveController,
    LadderConfig,
    SupervisorConfig,
    run_supervised_campaign,
)
from repro.workloads.irprograms import PROGRAMS, build_program


def supervised_campaign() -> None:
    name = "matmul"
    module = ProtectedProgram(
        build_program(name), name, ProtectionLevel.CFI_DATAFLOW
    ).module
    campaign = Campaign(
        module=module,
        func_name=name,
        args=PROGRAMS[name].default_args,
        n_trials=150,
    )
    config = SupervisorConfig(
        ladder=LadderConfig.rollback_first(),
        checkpoint_interval=100,
        checkpoint_capacity=8,
        storage_flip_prob=0.02,  # SEUs strike checkpoint storage too
    )
    result = run_supervised_campaign(campaign, config, seed=13)

    print(f"workload: {name}{campaign.args} at CFI+dataflow DMR")
    print(f"outcomes: {result.counts}")
    print(
        f"\nobservable failures : {result.n_failures}"
        f"\nrecovered correctly : {result.n_recovered}"
        f" ({result.recovery_rate:.1%})"
        f"\nmean recovery time  : {result.mean_recovery_latency_s * 1e6:.1f} us"
        f"\nwasted-cycle overhead: {result.wasted_cycle_overhead:.2%}"
    )
    print("\nrecoveries by ladder rung:")
    for rung, count in result.rung_histogram().items():
        if count:
            print(f"  {rung.value:14s} {count}")
    corrupt = sum(
        1 for r in result.failure_records
        if any(a.rung.value == "rollback" and not a.success
               for a in r.attempts)
    )
    print(f"\nrollback attempts that escalated further: {corrupt} "
          "(corrupt or post-fault checkpoints)")


def adaptive_storm_response() -> None:
    controller = AdaptiveController(AdaptiveConfig(
        window_s=60.0,
        escalate_rate_per_s=0.2,
        deescalate_rate_per_s=0.05,
        quiet_period_s=180.0,
    ))
    print("\n-- adaptive protection through a storm --")
    print(f"t=0s      level={controller.level.value:13s} "
          f"scrub every {controller.scrub_period_s():.0f}s")
    # Quiet orbit, then a storm spike, then quiet again.
    t = 0.0
    for t in range(0, 300, 30):          # quiet: ~1 fault/min
        controller.observe(float(t), 1)
    for t in range(300, 480, 5):         # storm: ~12 faults/min
        controller.observe(float(t), 1)
    print(f"t={t:.0f}s  level={controller.level.value:13s} "
          f"scrub every {controller.scrub_period_s():.0f}s  (storm)")
    for t in range(480, 1500, 30):       # storm passes
        controller.observe(float(t), 0)
    print(f"t={t:.0f}s  level={controller.level.value:13s} "
          f"scrub every {controller.scrub_period_s():.0f}s  (quiet again)")
    print("\ntransitions:")
    for tr in controller.transitions:
        print(f"  t={tr.t:6.0f}s -> {tr.level.value:13s} "
              f"(rate {tr.rate_per_s:.2f}/s)")


def main() -> None:
    supervised_campaign()
    adaptive_storm_response()


if __name__ == "__main__":
    main()
