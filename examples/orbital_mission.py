#!/usr/bin/env python3
"""Orbital mission: one day of environment-driven, phase-adaptive flight.

Builds a LEO environment timeline with SAA passes and a forced solar
particle event, walks the phase-adaptive degradation controller through
it (checkpoints, scrub-cadence changes, workload shedding — all traced),
then compares the adaptive policy against every static protection level
on useful compute per joule.

Run:  python examples/orbital_mission.py
"""

from repro.obs import InMemorySink, Tracer
from repro.radiation.orbit import LeoOrbit
from repro.radiation.schedule import EnvironmentTimeline, SpeModel
from repro.sim.scenario import ScenarioConfig, run_scenario, sweep_policies
from repro.units import SECONDS_PER_HOUR

DURATION_S = 8.0 * SECONDS_PER_HOUR
SPE_ONSET_S = 4.0 * SECONDS_PER_HOUR


def build_timeline() -> EnvironmentTimeline:
    return EnvironmentTimeline(
        orbit=LeoOrbit(),
        spe=SpeModel(
            onset_rate_per_day=0.0,        # deterministic demo storm...
            forced_onsets=(SPE_ONSET_S,),  # ...four hours in
            peak_storm_scale=50.0,
            decay_tau_s=1800.0,
        ),
        seed=1,
        name="leo-demo",
    )


def main() -> None:
    timeline = build_timeline()

    print("=== forecast ===")
    profile = timeline.phase_profile(0.0, DURATION_S, "register")
    for phase, seconds in profile.seconds.items():
        print(f"  {phase.value:>5}: {seconds / 60:7.1f} min "
              f"({profile.occupancy(phase):5.1%})")
    print(f"  mean register-upset multiplier: "
          f"{profile.mean_multiplier:.2f}x quiet sun "
          f"(peak {profile.peak_multiplier:.1f}x)")

    print("\n=== adaptive flight log ===")
    sink = InMemorySink()
    report = run_scenario(
        ScenarioConfig(timeline=timeline, duration_s=DURATION_S),
        tracer=Tracer(sink),
    )
    for event in sink.events:
        t_min = event.t / 60.0
        if event.kind == "phase-transition":
            extra = " + checkpoint" if event.checkpoint else ""
            print(f"  t={t_min:6.1f} min  {event.previous:>5} -> "
                  f"{event.phase:<5} scrub={event.scrub_period_s:.0f}s "
                  f"detector x{event.detector_threshold_scale:.2f}{extra}")
        else:
            verb = "shed" if event.kind == "workload-shed" else "restored"
            print(f"  t={t_min:6.1f} min  {verb} {event.workload} "
                  f"({event.criticality})")

    print("\n=== policy economics (same timeline, exactly paired) ===")
    results = sweep_policies(timeline, duration_s=DURATION_S)
    adaptive_cpj = results["adaptive"].useful_compute_per_joule
    for name, r in sorted(
        results.items(), key=lambda kv: kv[1].useful_compute_per_joule
    ):
        survived = "yes" if r.critical_survived_spe else "NO"
        marker = "  <-- " if name == "adaptive" else ""
        print(f"  {name:<20} {r.useful_compute_per_joule:.4f} "
              f"compute-s/J   critical survived SPE: {survived}{marker}")

    worst = min(
        adaptive_cpj / r.useful_compute_per_joule - 1.0
        for n, r in results.items() if n != "adaptive"
    )
    shed = {w.name: w.shed_s for w in report.workloads if w.shed_s}
    print(
        f"\nThe storm sheds {', '.join(shed)} for "
        f"{max(shed.values()) / 60:.0f} min while critical work rides"
        f"\nthrough at full DMR: the adaptive walk beats the best static"
        f"\nlevel by {worst:+.1%} on useful compute per joule, and no"
        f"\nsingle static level survives the storm *and* wins the quiet"
        f"\ncruise."
    )


if __name__ == "__main__":
    main()
