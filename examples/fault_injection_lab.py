#!/usr/bin/env python3
"""A QEMU-style fault-injection session on the machine emulator.

Walks through the paper's sect. 4.2 workflow interactively: load a program,
snapshot it, step to a point of interest, flip a bit through the
monitor/GDB interface, ask the cache plugin where a memory fault would
land, and compare the corrupted run against the restored golden state.

Run:  python examples/fault_injection_lab.py
"""

from repro.faults.model import FaultTarget
from repro.machine import (
    CachePlugin, Machine, MachineCampaign, Monitor, load_program,
    run_machine_campaign,
)
from repro.machine.programs import RESULT_ADDR


def interactive_session() -> None:
    print("=== monitor session on bubble_sort ===\n")
    machine = Machine(load_program("bubble_sort"), cache=CachePlugin())
    monitor = Monitor(machine)
    for command in (
        "step 40",
        "savevm before_fault",
        "where",
        "cacheq 0x100 0x140 0x4000",
        "flipmem 0x100 62",         # flip a high bit of the first element
        "x 0x100",
    ):
        print(f"(monitor) {command}")
        print(monitor.execute(command))
        print()

    machine.run()
    corrupted = machine.read_word(RESULT_ADDR)
    print(f"corrupted run result:  {corrupted}")

    monitor.execute("loadvm before_fault")
    machine.state.halted = False
    machine.run()
    golden = machine.read_word(RESULT_ADDR)
    print(f"restored golden result: {golden}")
    print(f"silent data corruption: {corrupted != golden}\n")


def campaign_section() -> None:
    print("=== campaign: where do faults hurt? ===\n")
    print(f"{'target':10s} {'benign':>7s} {'SDC':>5s} {'crash':>6s} "
          f"{'hang':>5s}")
    for target in (FaultTarget.REGISTER, FaultTarget.MEMORY,
                   FaultTarget.CACHE):
        result = run_machine_campaign(
            MachineCampaign("bubble_sort", n_trials=120, target=target),
            seed=5,
        )
        c = result.counts.as_dict()
        print(f"{target.value:10s} {c['benign']:7d} {c['sdc']:5d} "
              f"{c['crash']:6d} {c['hang']:5d}")
    print(
        "\ncache-resident words are the live working set — flipping them"
        "\ncorrupts the output far more often than flipping cold DRAM,"
        "\nwhich is why the paper extends QEMU's monitor to distinguish"
        "\nthe two."
    )


def main() -> None:
    interactive_session()
    campaign_section()


if __name__ == "__main__":
    main()
