"""Recovery & supervision: the layer between detection and survival.

The paper's argument is that commodity hardware survives space because
*software recovers from what it cannot prevent*.  The rest of the library
detects — DMR traps, the SEL daemon alarms, the fuel budget catches hangs —
but nothing turned those detections into survivals.  This package does:

- :mod:`repro.recover.checkpoint` — periodic, checksum-verified snapshots
  of :class:`~repro.machine.cpu.Machine` and
  :class:`~repro.ir.interp.Interpreter` state, with rollback/resume.
- :mod:`repro.recover.watchdog` — heartbeat / fuel-based hang detection
  for both execution substrates.
- :mod:`repro.recover.ladder` — the escalation ladder (task retry ->
  rollback -> cold restart -> power cycle) with bounded attempts and
  exponential backoff, plus the fault-persistence model that decides
  which rung can clear a given failure.
- :mod:`repro.recover.supervisor` — supervised fault-injection campaigns:
  every CRASH/HANG/DETECTED trial is driven through the ladder and the
  recovery rate, latency, and wasted cycles are measured.
- :mod:`repro.recover.adaptive` — a controller that escalates DMR level
  and scrub cadence when the observed fault rate spikes and de-escalates
  after a quiet period.
"""

from repro.recover.adaptive import (
    DEFAULT_PHASE_POLICIES,
    AdaptiveConfig,
    AdaptiveController,
    LevelTransition,
    ManagedWorkload,
    PhaseActions,
    PhaseAdaptiveController,
    PhasePolicy,
    WorkloadCriticality,
)
from repro.recover.checkpoint import (
    Checkpoint,
    CheckpointHook,
    CheckpointManager,
    checkpoint_machine,
    restore_machine_checkpoint,
    resume_from_checkpoint,
)
from repro.recover.ladder import (
    EscalationLadder,
    FaultPersistence,
    LadderConfig,
    PlannedAttempt,
    RecoveryRung,
)
from repro.recover.supervisor import (
    RecoveryParams,
    RecoveryRecord,
    SupervisedCampaignResult,
    Supervisor,
    SupervisorConfig,
    run_supervised_campaign,
)
from repro.recover.watchdog import (
    InterpWatchdog,
    MachineWatchdog,
    Watchdog,
    chain_step_hooks,
)

__all__ = [
    "AdaptiveConfig", "AdaptiveController", "LevelTransition",
    "DEFAULT_PHASE_POLICIES", "ManagedWorkload", "PhaseActions",
    "PhaseAdaptiveController", "PhasePolicy", "WorkloadCriticality",
    "Checkpoint", "CheckpointHook", "CheckpointManager",
    "checkpoint_machine", "restore_machine_checkpoint",
    "resume_from_checkpoint",
    "EscalationLadder", "FaultPersistence", "LadderConfig",
    "PlannedAttempt", "RecoveryRung",
    "RecoveryParams", "RecoveryRecord", "SupervisedCampaignResult",
    "Supervisor", "SupervisorConfig", "run_supervised_campaign",
    "InterpWatchdog", "MachineWatchdog", "Watchdog", "chain_step_hooks",
]
