"""Adaptive protection: match the protection level to the environment.

Wang et al.'s application-aware tolerance argument (arXiv:2407.11853) cuts
both ways: paying FULL_DMR overhead through a quiet orbit wastes compute,
and flying SCC_CFI through a solar storm wastes the spacecraft.  The
controller watches the observed fault-event rate over a sliding window and
walks the DMR level up one step each time the rate crosses the escalation
threshold, stepping back down only after a sustained quiet period
(hysteresis — a single quiet window during a storm must not strip the
armor).  The memory scrubber's cadence scales the same way: each level
step halves the scrub period.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.core.dmr.levels import ALL_LEVELS, ProtectionLevel
from repro.errors import ConfigError
from repro.obs.events import PhaseTransition, WorkloadRestored, WorkloadShed
from repro.radiation.schedule import MissionPhase


@dataclass(frozen=True)
class AdaptiveConfig:
    """Controller tuning.

    Attributes:
        window_s: sliding window over which the fault rate is estimated.
        escalate_rate_per_s: windowed rate at or above which the
            controller steps the protection level up.
        deescalate_rate_per_s: rate below which a window counts as quiet
            (must be below the escalation threshold: the gap is the
            hysteresis band).
        quiet_period_s: continuous quiet time required before stepping
            the level down.
        min_level / max_level: clamp on the walk.
        base_scrub_period_s: scrub cadence at ``min_level``; each level
            step above it halves the period.
    """

    window_s: float = 60.0
    escalate_rate_per_s: float = 0.5
    deescalate_rate_per_s: float = 0.1
    quiet_period_s: float = 300.0
    min_level: ProtectionLevel = ProtectionLevel.SCC_CFI
    max_level: ProtectionLevel = ProtectionLevel.FULL_DMR
    base_scrub_period_s: float = 64.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError("window must be positive")
        if self.deescalate_rate_per_s >= self.escalate_rate_per_s:
            raise ConfigError(
                "de-escalation rate must be below the escalation rate "
                "(the gap is the hysteresis band)"
            )
        if self.quiet_period_s < 0:
            raise ConfigError("quiet period must be >= 0")
        if self.max_level < self.min_level:
            raise ConfigError("max level below min level")
        if self.base_scrub_period_s <= 0:
            raise ConfigError("scrub period must be positive")


@dataclass(frozen=True)
class LevelTransition:
    """One protection-level change, for telemetry and tests."""

    t: float
    level: ProtectionLevel
    rate_per_s: float


class AdaptiveController:
    """Fault-rate-driven DMR level and scrub cadence.

    Feed it fault observations (DMR detections, watchdog bites, scrubber
    corrections, SEL alarms — anything countable) via :meth:`observe`;
    read :attr:`level` and :meth:`scrub_period_s` back.  Observations
    must arrive in nondecreasing time order.
    """

    def __init__(
        self,
        config: AdaptiveConfig = AdaptiveConfig(),
        initial_level: ProtectionLevel | None = None,
    ) -> None:
        self.config = config
        level = initial_level if initial_level is not None else config.min_level
        self.level = self._clamp(level)
        self._events: deque[tuple[float, int]] = deque()
        self._quiet_since: float | None = None
        self._last_t = float("-inf")
        self.transitions: list[LevelTransition] = []

    def _clamp(self, level: ProtectionLevel) -> ProtectionLevel:
        lo, hi = self.config.min_level, self.config.max_level
        if level < lo:
            return lo
        if hi < level:
            return hi
        return level

    def _step(self, delta: int) -> ProtectionLevel:
        index = ALL_LEVELS.index(self.level) + delta
        index = max(0, min(len(ALL_LEVELS) - 1, index))
        return self._clamp(ALL_LEVELS[index])

    def rate_per_s(self, t: float) -> float:
        """Windowed fault rate at time ``t``."""
        horizon = t - self.config.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()
        return sum(n for _, n in self._events) / self.config.window_s

    def observe(self, t: float, n_faults: int = 1) -> ProtectionLevel:
        """Record ``n_faults`` events at time ``t``; returns the new level.

        Call with ``n_faults=0`` to let time pass (quiet periods only
        de-escalate when the controller gets a chance to notice them).
        """
        if t < self._last_t:
            raise ConfigError(
                f"observations must be time-ordered: {t} after {self._last_t}"
            )
        self._last_t = t
        if n_faults > 0:
            self._events.append((t, n_faults))
        rate = self.rate_per_s(t)

        if rate >= self.config.escalate_rate_per_s:
            self._quiet_since = None
            stepped = self._step(+1)
            if stepped is not self.level:
                self.level = stepped
                self.transitions.append(LevelTransition(t, stepped, rate))
        elif rate < self.config.deescalate_rate_per_s:
            if self._quiet_since is None:
                self._quiet_since = t
            elif t - self._quiet_since >= self.config.quiet_period_s:
                stepped = self._step(-1)
                if stepped is not self.level:
                    self.level = stepped
                    self.transitions.append(LevelTransition(t, stepped, rate))
                self._quiet_since = t  # each further step needs its own quiet
        else:
            self._quiet_since = None  # inside the hysteresis band: hold
        return self.level

    def scrub_period_s(self) -> float:
        """Scrub cadence at the current level: base halved per step up."""
        steps = self.level.rank - self.config.min_level.rank
        return self.config.base_scrub_period_s / (2 ** max(0, steps))


# -- phase-adaptive degradation ------------------------------------------------


class WorkloadCriticality(enum.Enum):
    """How much a workload matters when the environment turns hostile.

    LOW workloads (opportunistic science, background compression) are the
    first to be shed during a solar particle event; CRITICAL workloads
    (attitude control, command & data handling) are never shed and get
    the strongest protection the policy table allows.
    """

    LOW = "low"
    NORMAL = "normal"
    CRITICAL = "critical"

    @property
    def rank(self) -> int:
        return _CRITICALITY_ORDER.index(self)

    def __lt__(self, other: "WorkloadCriticality") -> bool:
        if not isinstance(other, WorkloadCriticality):
            return NotImplemented
        return self.rank < other.rank


_CRITICALITY_ORDER = (
    WorkloadCriticality.LOW,
    WorkloadCriticality.NORMAL,
    WorkloadCriticality.CRITICAL,
)


@dataclass(frozen=True)
class PhasePolicy:
    """What one mission phase demands of the protection stack.

    Attributes:
        levels: protection level per workload criticality class.
        scrub_period_scale: multiplier on the base scrub period
            (< 1 scrubs faster).
        checkpoint_on_entry: take a pre-emptive checkpoint when the
            mission enters this phase (SAA passes and SPE onsets are
            forecastable moments to bank state before flux rises).
        shed_below: shed workloads whose criticality is strictly below
            this class while the phase lasts (None sheds nothing).
        detector_threshold_scale: scale on the fleet SEL detector
            threshold (< 1 tightens detection while flux is elevated).
    """

    levels: Mapping[WorkloadCriticality, ProtectionLevel]
    scrub_period_scale: float = 1.0
    checkpoint_on_entry: bool = False
    shed_below: WorkloadCriticality | None = None
    detector_threshold_scale: float = 1.0

    def __post_init__(self) -> None:
        missing = [c for c in WorkloadCriticality if c not in self.levels]
        if missing:
            raise ConfigError(
                f"policy must map every criticality class; missing {missing}"
            )
        if self.scrub_period_scale <= 0:
            raise ConfigError("scrub period scale must be positive")
        if self.detector_threshold_scale <= 0:
            raise ConfigError("detector threshold scale must be positive")

    def level_for(self, criticality: WorkloadCriticality) -> ProtectionLevel:
        return self.levels[criticality]

    def sheds(self, criticality: WorkloadCriticality) -> bool:
        return self.shed_below is not None and criticality < self.shed_below


#: The paper-informed default table.  Quiet orbit runs light (control-flow
#: checking only) and keeps full compute; SAA passes pre-checkpoint, scrub
#: 4x faster, and armor normal and critical work with full DMR (at SAA
#: flux the partial levels mostly produce rework, so only duplication
#: pays); a solar particle event sheds low-criticality workloads,
#: escalates everything that still runs to full DMR, scrubs 8x faster,
#: and tightens the fleet detector.
DEFAULT_PHASE_POLICIES: dict[MissionPhase, PhasePolicy] = {
    MissionPhase.QUIET: PhasePolicy(
        levels={
            WorkloadCriticality.LOW: ProtectionLevel.SCC_CFI,
            WorkloadCriticality.NORMAL: ProtectionLevel.SCC_CFI,
            WorkloadCriticality.CRITICAL: ProtectionLevel.CFI_DATAFLOW,
        },
    ),
    MissionPhase.SAA: PhasePolicy(
        levels={
            WorkloadCriticality.LOW: ProtectionLevel.CFI_DATAFLOW,
            WorkloadCriticality.NORMAL: ProtectionLevel.FULL_DMR,
            WorkloadCriticality.CRITICAL: ProtectionLevel.FULL_DMR,
        },
        scrub_period_scale=0.25,
        checkpoint_on_entry=True,
        detector_threshold_scale=0.9,
    ),
    MissionPhase.SPE: PhasePolicy(
        levels={
            WorkloadCriticality.LOW: ProtectionLevel.FULL_DMR,
            WorkloadCriticality.NORMAL: ProtectionLevel.FULL_DMR,
            WorkloadCriticality.CRITICAL: ProtectionLevel.FULL_DMR,
        },
        scrub_period_scale=0.125,
        checkpoint_on_entry=True,
        shed_below=WorkloadCriticality.NORMAL,
        detector_threshold_scale=0.75,
    ),
}


@dataclass
class ManagedWorkload:
    """One workload under the controller's authority."""

    name: str
    criticality: WorkloadCriticality
    shed: bool = False


@dataclass(frozen=True)
class PhaseActions:
    """What one :meth:`PhaseAdaptiveController.advance` call decided."""

    t: float
    phase: MissionPhase
    changed: bool
    checkpoint: bool
    shed: tuple[str, ...] = ()
    restored: tuple[str, ...] = ()
    scrub_period_s: float = 0.0
    detector_threshold_scale: float = 1.0


class PhaseAdaptiveController:
    """Environment-driven graceful degradation.

    Where :class:`AdaptiveController` reacts to the *observed* fault rate,
    this controller acts on the *forecast*: the mission phase from an
    :class:`~repro.radiation.schedule.EnvironmentTimeline`.  On each phase
    boundary it applies the matching :class:`PhasePolicy` — pre-emptive
    checkpoint, scrub cadence, workload shedding, detector tightening —
    and emits :class:`~repro.obs.events.PhaseTransition` /
    :class:`~repro.obs.events.WorkloadShed` /
    :class:`~repro.obs.events.WorkloadRestored` events through the tracer.

    An optional reactive :class:`AdaptiveController` can ride along; the
    effective protection level for a workload is then the max of the
    phase policy's level and the reactive controller's level, so a storm
    the timeline did not forecast still escalates the armor.
    """

    def __init__(
        self,
        workloads: list[ManagedWorkload],
        policies: Mapping[MissionPhase, PhasePolicy] | None = None,
        base_scrub_period_s: float = 64.0,
        tracer=None,
        reactive: AdaptiveController | None = None,
    ) -> None:
        if base_scrub_period_s <= 0:
            raise ConfigError("scrub period must be positive")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate workload names in {names}")
        self.workloads = {w.name: w for w in workloads}
        self.policies = dict(policies if policies is not None else DEFAULT_PHASE_POLICIES)
        missing = [p for p in MissionPhase if p not in self.policies]
        if missing:
            raise ConfigError(f"policy table missing phases {missing}")
        self.base_scrub_period_s = base_scrub_period_s
        self.tracer = tracer
        self.reactive = reactive
        self.phase = MissionPhase.QUIET
        self.actions: list[PhaseActions] = []
        self._last_t = float("-inf")

    @property
    def policy(self) -> PhasePolicy:
        """The policy in force for the current phase."""
        return self.policies[self.phase]

    def scrub_period_s(self) -> float:
        """Scrub cadence under the current phase policy."""
        return self.base_scrub_period_s * self.policy.scrub_period_scale

    def detector_threshold_scale(self) -> float:
        """Fleet detector threshold scale under the current phase policy."""
        return self.policy.detector_threshold_scale

    def level_for(self, name: str) -> ProtectionLevel:
        """Effective protection level for a workload (phase ∨ reactive)."""
        workload = self.workloads.get(name)
        if workload is None:
            raise ConfigError(f"unknown workload {name!r}")
        level = self.policy.level_for(workload.criticality)
        if self.reactive is not None and level < self.reactive.level:
            level = self.reactive.level
        return level

    def active_workloads(self) -> list[str]:
        """Names of workloads currently running (not shed)."""
        return [w.name for w in self.workloads.values() if not w.shed]

    def observe(self, t: float, n_faults: int = 1) -> None:
        """Forward a fault observation to the reactive controller."""
        if self.reactive is not None:
            self.reactive.observe(t, n_faults)

    def advance(self, t: float, phase: MissionPhase) -> PhaseActions:
        """Tell the controller the mission phase at time ``t``.

        Idempotent within a phase: repeated calls with the same phase
        return ``changed=False`` actions and emit nothing.
        """
        if t < self._last_t:
            raise ConfigError(
                f"phase updates must be time-ordered: {t} after {self._last_t}"
            )
        self._last_t = t
        if phase is self.phase:
            return PhaseActions(
                t=t,
                phase=phase,
                changed=False,
                checkpoint=False,
                scrub_period_s=self.scrub_period_s(),
                detector_threshold_scale=self.detector_threshold_scale(),
            )

        previous = self.phase
        self.phase = phase
        policy = self.policies[phase]
        shed: list[str] = []
        restored: list[str] = []
        for workload in self.workloads.values():
            should_shed = policy.sheds(workload.criticality)
            if should_shed and not workload.shed:
                workload.shed = True
                shed.append(workload.name)
            elif workload.shed and not should_shed:
                workload.shed = False
                restored.append(workload.name)

        actions = PhaseActions(
            t=t,
            phase=phase,
            changed=True,
            checkpoint=policy.checkpoint_on_entry,
            shed=tuple(shed),
            restored=tuple(restored),
            scrub_period_s=self.scrub_period_s(),
            detector_threshold_scale=self.detector_threshold_scale(),
        )
        self.actions.append(actions)
        if self.tracer is not None:
            self.tracer.emit(
                PhaseTransition(
                    t=t,
                    previous=previous.value,
                    phase=phase.value,
                    checkpoint=actions.checkpoint,
                    scrub_period_s=actions.scrub_period_s,
                    detector_threshold_scale=actions.detector_threshold_scale,
                )
            )
            for name in shed:
                self.tracer.emit(
                    WorkloadShed(
                        t=t,
                        workload=name,
                        criticality=self.workloads[name].criticality.value,
                        phase=phase.value,
                    )
                )
            for name in restored:
                self.tracer.emit(
                    WorkloadRestored(
                        t=t,
                        workload=name,
                        criticality=self.workloads[name].criticality.value,
                        phase=phase.value,
                    )
                )
        return actions
