"""Adaptive protection: match the protection level to the environment.

Wang et al.'s application-aware tolerance argument (arXiv:2407.11853) cuts
both ways: paying FULL_DMR overhead through a quiet orbit wastes compute,
and flying SCC_CFI through a solar storm wastes the spacecraft.  The
controller watches the observed fault-event rate over a sliding window and
walks the DMR level up one step each time the rate crosses the escalation
threshold, stepping back down only after a sustained quiet period
(hysteresis — a single quiet window during a storm must not strip the
armor).  The memory scrubber's cadence scales the same way: each level
step halves the scrub period.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.dmr.levels import ALL_LEVELS, ProtectionLevel
from repro.errors import ConfigError


@dataclass(frozen=True)
class AdaptiveConfig:
    """Controller tuning.

    Attributes:
        window_s: sliding window over which the fault rate is estimated.
        escalate_rate_per_s: windowed rate at or above which the
            controller steps the protection level up.
        deescalate_rate_per_s: rate below which a window counts as quiet
            (must be below the escalation threshold: the gap is the
            hysteresis band).
        quiet_period_s: continuous quiet time required before stepping
            the level down.
        min_level / max_level: clamp on the walk.
        base_scrub_period_s: scrub cadence at ``min_level``; each level
            step above it halves the period.
    """

    window_s: float = 60.0
    escalate_rate_per_s: float = 0.5
    deescalate_rate_per_s: float = 0.1
    quiet_period_s: float = 300.0
    min_level: ProtectionLevel = ProtectionLevel.SCC_CFI
    max_level: ProtectionLevel = ProtectionLevel.FULL_DMR
    base_scrub_period_s: float = 64.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError("window must be positive")
        if self.deescalate_rate_per_s >= self.escalate_rate_per_s:
            raise ConfigError(
                "de-escalation rate must be below the escalation rate "
                "(the gap is the hysteresis band)"
            )
        if self.quiet_period_s < 0:
            raise ConfigError("quiet period must be >= 0")
        if self.max_level < self.min_level:
            raise ConfigError("max level below min level")
        if self.base_scrub_period_s <= 0:
            raise ConfigError("scrub period must be positive")


@dataclass(frozen=True)
class LevelTransition:
    """One protection-level change, for telemetry and tests."""

    t: float
    level: ProtectionLevel
    rate_per_s: float


class AdaptiveController:
    """Fault-rate-driven DMR level and scrub cadence.

    Feed it fault observations (DMR detections, watchdog bites, scrubber
    corrections, SEL alarms — anything countable) via :meth:`observe`;
    read :attr:`level` and :meth:`scrub_period_s` back.  Observations
    must arrive in nondecreasing time order.
    """

    def __init__(
        self,
        config: AdaptiveConfig = AdaptiveConfig(),
        initial_level: ProtectionLevel | None = None,
    ) -> None:
        self.config = config
        level = initial_level if initial_level is not None else config.min_level
        self.level = self._clamp(level)
        self._events: deque[tuple[float, int]] = deque()
        self._quiet_since: float | None = None
        self._last_t = float("-inf")
        self.transitions: list[LevelTransition] = []

    def _clamp(self, level: ProtectionLevel) -> ProtectionLevel:
        lo, hi = self.config.min_level, self.config.max_level
        if level < lo:
            return lo
        if hi < level:
            return hi
        return level

    def _step(self, delta: int) -> ProtectionLevel:
        index = ALL_LEVELS.index(self.level) + delta
        index = max(0, min(len(ALL_LEVELS) - 1, index))
        return self._clamp(ALL_LEVELS[index])

    def rate_per_s(self, t: float) -> float:
        """Windowed fault rate at time ``t``."""
        horizon = t - self.config.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()
        return sum(n for _, n in self._events) / self.config.window_s

    def observe(self, t: float, n_faults: int = 1) -> ProtectionLevel:
        """Record ``n_faults`` events at time ``t``; returns the new level.

        Call with ``n_faults=0`` to let time pass (quiet periods only
        de-escalate when the controller gets a chance to notice them).
        """
        if t < self._last_t:
            raise ConfigError(
                f"observations must be time-ordered: {t} after {self._last_t}"
            )
        self._last_t = t
        if n_faults > 0:
            self._events.append((t, n_faults))
        rate = self.rate_per_s(t)

        if rate >= self.config.escalate_rate_per_s:
            self._quiet_since = None
            stepped = self._step(+1)
            if stepped is not self.level:
                self.level = stepped
                self.transitions.append(LevelTransition(t, stepped, rate))
        elif rate < self.config.deescalate_rate_per_s:
            if self._quiet_since is None:
                self._quiet_since = t
            elif t - self._quiet_since >= self.config.quiet_period_s:
                stepped = self._step(-1)
                if stepped is not self.level:
                    self.level = stepped
                    self.transitions.append(LevelTransition(t, stepped, rate))
                self._quiet_since = t  # each further step needs its own quiet
        else:
            self._quiet_since = None  # inside the hysteresis band: hold
        return self.level

    def scrub_period_s(self) -> float:
        """Scrub cadence at the current level: base halved per step up."""
        steps = self.level.rank - self.config.min_level.rank
        return self.config.base_scrub_period_s / (2 ** max(0, steps))
