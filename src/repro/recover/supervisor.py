"""Supervised execution: turn detections into survivals and measure it.

A supervised campaign replays the library's fault-injection methodology
with a flight-software supervisor in the loop.  Every trial runs with
three step hooks chained: the fault injector, a periodic checksum-verified
checkpoint taker, and a watchdog armed at a small multiple of the golden
instruction count.  When a trial ends in CRASH, HANG, or DETECTED — the
externally observable failures; silent corruption is the DMR layer's
problem — the supervisor climbs the escalation ladder until an attempt
delivers a correct output or the ladder is exhausted, charging every
attempt's cycles and backoff to the trial's recovery bill.

Attempt acceptance uses the campaign's golden value as an oracle.  On a
real spacecraft the oracle is an application-level acceptance test (a
range check, a residual bound, a duplicate computation); the campaign
stands in the stronger check so the measured recovery rate is a *lower*
bound does not hide silently-wrong recoveries — an attempt that completes
cleanly with a wrong value is recorded as ``recovered_wrong``, never as a
success.

The aggregate statistics — recovery rate, mean recovery latency, wasted
cycles — are exactly the parameters the mission simulator previously
asserted as a flat ``reboot_downtime_s``; :class:`RecoveryParams` carries
them into :mod:`repro.sim.mission`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigError
from repro.faults.campaign import (
    Campaign,
    begin_campaign_span,
    begin_trial_span,
    emit_campaign_end,
    emit_campaign_start,
    emit_trial_events,
    end_campaign_span,
    end_trial_span,
    make_injector,
    run_golden,
    trial_fuel_for,
)
from repro.faults.outcomes import (
    FaultOutcome,
    OutcomeCounts,
    TrialResult,
    classify,
)
from repro.ir.interp import ExecutionResult, Interpreter
from repro.recover.checkpoint import (
    CheckpointHook,
    CheckpointManager,
    resume_from_checkpoint,
)
from repro.recover.ladder import (
    EscalationLadder,
    FaultPersistence,
    LadderConfig,
    RecoveryRung,
)
from repro.obs.events import (
    LadderAttemptEvent,
    RecoveryDone,
    Tracer,
    TrialStart,
    WatchdogFire,
)
from repro.obs.spans import SpanEnd, SpanStart, span_id
from repro.recover.watchdog import InterpWatchdog, chain_step_hooks
from repro.rng import fork, make_rng

#: Failure outcomes a supervisor can observe and react to.
RECOVERABLE_OUTCOMES = frozenset({
    FaultOutcome.CRASH, FaultOutcome.HANG, FaultOutcome.DETECTED,
})


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervisor tuning.

    Attributes:
        checkpoint_interval: dynamic instructions between checkpoints.
        checkpoint_capacity: checkpoints retained (ring buffer).
        watchdog_margin: watchdog budget as a multiple of the golden
            instruction count — the hang detector's tightness.
        ladder: escalation policy.
        persistence_probs: distribution of failure stickiness classes
            (see :class:`FaultPersistence`); models corruption outside
            the interpreter's reach (globals, program image, latches).
        storage_flip_prob: per-checkpoint chance that an SEU corrupted
            the stored checkpoint before it is needed (CRC catches it).
        restore_cycles: cost of verifying + loading one checkpoint.
        reboot_cycles: compute cost of a cold restart (image reload).
        power_cycle_s: outage seconds charged by a power cycle.
        clock_hz: converts cycles to seconds for latency reporting.
    """

    checkpoint_interval: int = 200
    checkpoint_capacity: int = 4
    watchdog_margin: float = 3.0
    ladder: LadderConfig = field(default_factory=LadderConfig)
    persistence_probs: dict[FaultPersistence, float] = field(
        default_factory=lambda: {
            FaultPersistence.TRANSIENT: 0.85,
            FaultPersistence.STATE: 0.09,
            FaultPersistence.IMAGE: 0.04,
            FaultPersistence.STUCK: 0.02,
        }
    )
    storage_flip_prob: float = 0.0
    restore_cycles: int = 500
    reboot_cycles: int = 50_000
    power_cycle_s: float = 30.0
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        if self.watchdog_margin < 1.0:
            raise ConfigError(
                f"watchdog margin must be >= 1, got {self.watchdog_margin}"
            )
        if not 0.0 <= self.storage_flip_prob <= 1.0:
            raise ConfigError("storage flip probability outside [0, 1]")
        total = sum(self.persistence_probs.values())
        if total <= 0 or abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"persistence probabilities must sum to 1, got {total}"
            )
        if self.clock_hz <= 0:
            raise ConfigError("clock rate must be positive")


@dataclass(frozen=True)
class AttemptRecord:
    """One executed recovery attempt.

    Attributes:
        rung: ladder stage tried.
        attempt: 0-based index within the rung.
        success: delivered the golden output.
        cycles: compute spent by the attempt (mechanism + penalties).
        backoff_s: delay charged before the attempt.
        latency_s: full latency of the attempt — backoff, outage and
            compute at the configured clock.
    """

    rung: RecoveryRung
    attempt: int
    success: bool
    cycles: int
    backoff_s: float
    latency_s: float = 0.0


@dataclass
class RecoveryRecord:
    """Full recovery story of one failed trial.

    Attributes:
        outcome: the initial failure classification.
        persistence: drawn stickiness class of the root cause.
        attempts: every ladder attempt executed, in order.
        recovered: a rung delivered the correct output.
        recovered_wrong: an attempt completed cleanly with a wrong value
            (counted as a failure; the residual-SDC risk of recovery).
        recovered_rung: the rung that succeeded (None if exhausted).
        faulty_cycles: cycles burned by the original failed run.
        recovery_cycles: cycles spent across all recovery attempts.
        wasted_cycles: total spent minus one useful task execution.
        recovery_latency_s: failure-to-recovery wall time (attempt
            cycles at the configured clock, plus backoffs and outages).
        checkpoints_taken: checkpoints captured during the faulty run.
        checkpoint_resumed_instructions: progress of the checkpoint a
            successful rollback resumed from (None otherwise).
    """

    outcome: FaultOutcome
    persistence: FaultPersistence
    attempts: list[AttemptRecord] = field(default_factory=list)
    recovered: bool = False
    recovered_wrong: bool = False
    recovered_rung: RecoveryRung | None = None
    faulty_cycles: int = 0
    recovery_cycles: int = 0
    wasted_cycles: int = 0
    recovery_latency_s: float = 0.0
    checkpoints_taken: int = 0
    checkpoint_resumed_instructions: int | None = None


@dataclass(frozen=True)
class RecoveryParams:
    """Supervisor-derived recovery parameters for the mission simulator.

    Replaces the flat ``reboot_downtime_s`` charge: each recoverable
    compute failure costs ``mean_downtime_s`` and succeeds with
    probability ``success_frac``; failures of recovery charge
    ``unrecovered_downtime_s`` (a full reboot), and a ``residual_sdc_frac``
    slice of recoveries delivers a wrong output anyway.
    """

    mean_downtime_s: float = 1.0
    success_frac: float = 0.95
    residual_sdc_frac: float = 0.0
    unrecovered_downtime_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_frac <= 1.0:
            raise ConfigError("recovery success fraction outside [0, 1]")
        if not 0.0 <= self.residual_sdc_frac <= 1.0:
            raise ConfigError("residual SDC fraction outside [0, 1]")


@dataclass
class SupervisedCampaignResult:
    """A campaign's outcomes plus the supervisor's recovery ledger."""

    golden: ExecutionResult
    counts: OutcomeCounts
    trials: list[TrialResult]
    records: list[RecoveryRecord | None]
    config: SupervisorConfig

    @property
    def failure_records(self) -> list[RecoveryRecord]:
        return [r for r in self.records if r is not None]

    @property
    def n_failures(self) -> int:
        return len(self.failure_records)

    @property
    def n_recovered(self) -> int:
        return sum(r.recovered for r in self.failure_records)

    @property
    def recovery_rate(self) -> float:
        """Fraction of observable failures recovered to a correct output."""
        if self.n_failures == 0:
            return 1.0
        return self.n_recovered / self.n_failures

    @property
    def mean_recovery_latency_s(self) -> float:
        recs = [r for r in self.failure_records if r.recovered]
        if not recs:
            return 0.0
        return float(np.mean([r.recovery_latency_s for r in recs]))

    @property
    def mean_wasted_cycles(self) -> float:
        recs = self.failure_records
        if not recs:
            return 0.0
        return float(np.mean([r.wasted_cycles for r in recs]))

    @property
    def wasted_cycle_overhead(self) -> float:
        """Wasted cycles across all trials, relative to the useful work."""
        useful = self.golden.cycles * max(1, len(self.trials))
        wasted = sum(r.wasted_cycles for r in self.failure_records)
        return wasted / useful

    def rung_histogram(self) -> dict[RecoveryRung, int]:
        """How often each rung delivered the recovery."""
        hist = {rung: 0 for rung in RecoveryRung}
        for rec in self.failure_records:
            if rec.recovered_rung is not None:
                hist[rec.recovered_rung] += 1
        return hist

    def recovery_params(self) -> RecoveryParams:
        """Distill the ledger into mission-simulator parameters."""
        recs = self.failure_records
        if not recs:
            return RecoveryParams()
        wrong = sum(r.recovered_wrong for r in recs)
        return RecoveryParams(
            mean_downtime_s=self.mean_recovery_latency_s,
            success_frac=self.recovery_rate,
            residual_sdc_frac=wrong / len(recs),
            unrecovered_downtime_s=self.config.power_cycle_s,
        )


class Supervisor:
    """Drives one task through supervised execution and recovery.

    Bound to a campaign (module, entry point, args, cost model) and its
    golden run; :meth:`run_trial` executes one faulted run and, on an
    observable failure, :meth:`recover` climbs the escalation ladder.
    """

    def __init__(
        self,
        campaign: Campaign,
        golden: ExecutionResult,
        config: SupervisorConfig = SupervisorConfig(),
    ) -> None:
        self.campaign = campaign
        self.golden = golden
        self.config = config
        # Compiled blocks shared by every trial, clean re-run and resume
        # this supervisor drives (one module + one cost model throughout).
        self.code_cache: dict = {}
        self.ladder = EscalationLadder(config.ladder)
        self.watchdog_budget = max(
            1, int(golden.instructions * config.watchdog_margin)
        )
        self._persistence_classes = sorted(
            config.persistence_probs, key=lambda p: p.value
        )
        self._persistence_probs = np.array([
            config.persistence_probs[p] for p in self._persistence_classes
        ])

    # -- trial execution -------------------------------------------------------

    def run_trial(
        self,
        trial_rng: np.random.Generator,
        tracer: Tracer | None = None,
        trial_index: int = 0,
        span_root: str = "",
    ) -> tuple[TrialResult, RecoveryRecord | None]:
        """One supervised trial: inject, classify, recover if observable.

        With a tracer, the trial emits the same start / injection / end
        events as an unsupervised trial, interleaved with checkpoint and
        watchdog events during execution and followed by one
        ladder-attempt event per rung climbed plus the recovery verdict.
        A ``span_root`` additionally brackets the trial with its
        deterministic span and each ladder attempt with a child span —
        derived ids only, so supervised traces merge byte-identically
        across worker counts too.
        """
        trial_span = ""
        if tracer is not None:
            if span_root:
                trial_span = begin_trial_span(tracer, span_root, trial_index)
            tracer.emit(TrialStart(trial=trial_index))
        campaign, golden = self.campaign, self.golden
        injector = make_injector(campaign, golden, trial_rng)
        manager = CheckpointManager(self.config.checkpoint_capacity)
        watchdog = InterpWatchdog(self.watchdog_budget)
        hooks = chain_step_hooks(
            injector,
            CheckpointHook(
                manager, self.config.checkpoint_interval,
                tracer=tracer, trial_index=trial_index,
            ),
            watchdog,
        )
        interp = Interpreter(
            campaign.module,
            cost_model=campaign.cost_model,
            fuel=trial_fuel_for(campaign, golden),
            step_hook=hooks,
            code_cache=self.code_cache,
        )
        result = interp.run(campaign.func_name, list(campaign.args))
        if tracer is not None and watchdog.bites > 0:
            tracer.emit(WatchdogFire(
                trial=trial_index, budget=watchdog.budget
            ))
        outcome, rel_error = classify(
            result, golden.value, campaign.sdc_tolerance
        )
        if not injector.fired:
            outcome, rel_error = FaultOutcome.BENIGN, 0.0
        trial = TrialResult(
            spec=injector.resolved or injector.spec,
            outcome=outcome,
            value=result.value,
            rel_error=rel_error,
            cycles=result.cycles,
        )
        if tracer is not None:
            emit_trial_events(tracer, trial_index, trial, fired=injector.fired)
        if outcome not in RECOVERABLE_OUTCOMES:
            if tracer is not None and trial_span:
                end_trial_span(tracer, trial_span, trial)
            return trial, None
        record = self.recover(
            outcome, result, manager, trial_rng,
            tracer=tracer, trial_index=trial_index, span=trial_span,
        )
        trial = replace(
            trial,
            recovery_latency_s=record.recovery_latency_s,
            attempt_latencies_s=tuple(
                a.latency_s for a in record.attempts
            ),
            backoff_charged_s=sum(a.backoff_s for a in record.attempts),
        )
        if tracer is not None and trial_span:
            end_trial_span(tracer, trial_span, trial)
        return trial, record

    # -- recovery --------------------------------------------------------------

    def recover(
        self,
        outcome: FaultOutcome,
        failed: ExecutionResult,
        manager: CheckpointManager,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
        trial_index: int = 0,
        span: str = "",
    ) -> RecoveryRecord:
        """Climb the escalation ladder until a correct output or exhaustion.

        With a trial ``span``, each ladder attempt is bracketed by a
        deterministic child span (``attempt`` #k under the trial) so the
        causal chain campaign → trial → attempt is reconstructible from
        the trace alone.
        """
        cfg = self.config
        # Storage SEUs strike retained checkpoints while they sit in RAM.
        if cfg.storage_flip_prob > 0.0:
            for index in range(len(manager)):
                if rng.random() < cfg.storage_flip_prob:
                    manager.flip_payload_bit(index, int(rng.integers(1 << 16)))
        persistence = self._persistence_classes[
            int(rng.choice(
                len(self._persistence_classes), p=self._persistence_probs
            ))
        ]
        record = RecoveryRecord(
            outcome=outcome,
            persistence=persistence,
            faulty_cycles=failed.cycles,
            checkpoints_taken=manager.taken,
        )
        rollback_skip = 0
        for planned in self.ladder.plan():
            if planned.rung is RecoveryRung.ROLLBACK:
                success, cycles, outage_s, resumed_at = self._try_rollback(
                    manager, rollback_skip, persistence
                )
                rollback_skip += 1
            else:
                success, cycles, outage_s = self._try_restart(
                    planned.rung, persistence
                )
                resumed_at = None
            attempt_latency_s = (
                planned.backoff_s + outage_s + cycles / cfg.clock_hz
            )
            record.attempts.append(AttemptRecord(
                rung=planned.rung,
                attempt=planned.attempt,
                success=success,
                cycles=cycles,
                backoff_s=planned.backoff_s,
                latency_s=attempt_latency_s,
            ))
            record.recovery_cycles += cycles
            record.recovery_latency_s += attempt_latency_s
            if tracer is not None:
                attempt_span = ""
                if span:
                    attempt_index = len(record.attempts) - 1
                    attempt_span = span_id(span, "attempt", attempt_index)
                    tracer.emit(SpanStart(
                        span=attempt_span, parent=span, name="attempt",
                        index=attempt_index, detail=planned.rung.value,
                    ))
                tracer.emit(LadderAttemptEvent(
                    trial=trial_index,
                    rung=planned.rung.value,
                    attempt=planned.attempt,
                    success=success,
                    cycles=cycles,
                    backoff_s=planned.backoff_s,
                    latency_s=attempt_latency_s,
                ))
                if attempt_span:
                    tracer.emit(SpanEnd(
                        span=attempt_span,
                        status="ok" if success else "failed",
                        cycles=cycles,
                    ))
            if success:
                record.recovered = True
                record.recovered_rung = planned.rung
                record.checkpoint_resumed_instructions = resumed_at
                break
        total = record.faulty_cycles + record.recovery_cycles
        if record.recovered:
            record.wasted_cycles = max(0, total - self.golden.cycles)
        else:
            record.wasted_cycles = total
        if tracer is not None:
            tracer.emit(RecoveryDone(
                trial=trial_index,
                outcome=outcome.value,
                recovered=record.recovered,
                rung=(
                    record.recovered_rung.value
                    if record.recovered_rung is not None else None
                ),
                attempts=len(record.attempts),
                latency_s=record.recovery_latency_s,
                wasted_cycles=record.wasted_cycles,
                persistence=record.persistence.value,
            ))
        return record

    def _clean_run(self) -> ExecutionResult:
        """Re-execute the task from scratch under the watchdog."""
        interp = Interpreter(
            self.campaign.module,
            cost_model=self.campaign.cost_model,
            fuel=self.campaign.fuel,
            step_hook=InterpWatchdog(self.watchdog_budget),
            code_cache=self.code_cache,
        )
        return interp.run(self.campaign.func_name, list(self.campaign.args))

    def _accepts(self, result: ExecutionResult) -> bool:
        """Oracle acceptance: correct output (see module docstring)."""
        if not result.ok:
            return False
        value, golden = result.value, self.golden.value
        if isinstance(value, float) and isinstance(golden, float):
            if np.isnan(value) and np.isnan(golden):
                return True
        return value == golden

    def _try_restart(
        self, rung: RecoveryRung, persistence: FaultPersistence
    ) -> tuple[bool, int, float]:
        """RETRY / COLD_RESTART / POWER_CYCLE: a clean re-execution.

        Returns (success, cycles, outage seconds).  When the persistence
        class is not cleared by this rung, the modeled external corruption
        re-manifests: the re-run's work is charged but its output is
        rejected (no interpreter run is needed to know it fails).
        """
        cfg = self.config
        penalty = 0
        outage_s = 0.0
        if rung is RecoveryRung.COLD_RESTART:
            penalty = cfg.reboot_cycles
        elif rung is RecoveryRung.POWER_CYCLE:
            penalty = cfg.reboot_cycles
            outage_s = cfg.power_cycle_s
        if not persistence.cleared_by(rung):
            return False, self.golden.cycles + penalty, outage_s
        result = self._clean_run()
        return self._accepts(result), result.cycles + penalty, outage_s

    def _try_rollback(
        self,
        manager: CheckpointManager,
        skip: int,
        persistence: FaultPersistence,
    ) -> tuple[bool, int, float, int | None]:
        """Restore the newest good checkpoint (skipping ``skip``) and resume.

        The mechanism is real: the interpreter resumes from the verified
        checkpoint and the resumed output is checked against the oracle.
        A checkpoint captured after the fault landed carries the corruption
        and reproduces the failure (or a wrong value) — that is exactly the
        case the ladder's next rung exists for.
        """
        cfg = self.config
        ckpt = manager.latest_good(skip=skip)
        if ckpt is None:
            return False, cfg.restore_cycles, 0.0, None
        result = resume_from_checkpoint(
            self.campaign.module,
            ckpt,
            cost_model=self.campaign.cost_model,
            fuel=self.campaign.fuel,
            step_hook=InterpWatchdog(self.watchdog_budget),
            code_cache=self.code_cache,
        )
        # Resumed counters continue from the checkpoint, so the attempt's
        # own work is the delta; a failed resume still pays what it ran.
        cycles = cfg.restore_cycles + max(0, result.cycles - ckpt.cycles)
        if not persistence.cleared_by(RecoveryRung.ROLLBACK):
            return False, cycles, 0.0, None
        if not self._accepts(result):
            return False, cycles, 0.0, None
        return True, cycles, 0.0, ckpt.instructions


def run_supervised_campaign(
    campaign: Campaign,
    config: SupervisorConfig = SupervisorConfig(),
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    trace_spans: bool = False,
) -> SupervisedCampaignResult:
    """Execute ``campaign`` with the supervisor in the loop.

    Deterministic under a fixed seed: every trial's injector, checkpoint
    corruption, and persistence draw come from one forked child generator.
    With ``workers`` > 1, trials fan out across a process pool (see
    :func:`repro.faults.parallel.run_supervised_campaign_parallel`) with
    byte-identical results, traced or not (worker event batches are
    merged back in trial order; ``trace_spans`` adds the deterministic
    campaign → trial → attempt span hierarchy).
    """
    if workers is not None and workers > 1:
        from repro.faults.parallel import run_supervised_campaign_parallel

        return run_supervised_campaign_parallel(
            campaign, config=config, seed=seed, workers=workers,
            tracer=tracer, trace_spans=trace_spans,
        )
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign, supervised=True)
    golden = run_golden(campaign, tracer=tracer)
    supervisor = Supervisor(campaign, golden, config)
    counts = OutcomeCounts()
    trials: list[TrialResult] = []
    records: list[RecoveryRecord | None] = []
    for index, trial_rng in enumerate(fork(rng, campaign.n_trials)):
        trial, record = supervisor.run_trial(
            trial_rng, tracer=tracer, trial_index=index,
            span_root=span_root,
        )
        counts.record(trial.outcome)
        trials.append(trial)
        records.append(record)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return SupervisedCampaignResult(
        golden=golden,
        counts=counts,
        trials=trials,
        records=records,
        config=config,
    )
