"""Heartbeat / fuel-based hang detection for both execution substrates.

The interpreter's global fuel budget is deliberately generous (a campaign
must never misclassify a slow-but-terminating run), which makes it a slow
hang detector: a hung trial burns the whole budget before anyone notices.
A watchdog is the flight-software answer — arm it with a *task-specific*
budget (golden instruction count times a small margin) and it bites long
before the generic fuel runs out, cutting the cycles wasted per hang by
an order of magnitude.  The supervisor re-arms ("kicks") the watchdog at
every recovery attempt.
"""

from __future__ import annotations

from repro.errors import ConfigError, WatchdogTimeout
from repro.ir.instructions import Instruction
from repro.ir.interp import Frame, Interpreter
from repro.machine.cpu import Machine
from repro.machine.isa import MachInstr


class Watchdog:
    """Core countdown: ``kick`` to rearm, ``tick`` to spend budget.

    Attributes:
        budget: ticks allowed between kicks.
        bites: times the watchdog expired over its lifetime.
    """

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ConfigError(f"watchdog budget must be >= 1, got {budget}")
        self.budget = budget
        self.remaining = budget
        self.bites = 0

    def kick(self, budget: int | None = None) -> None:
        """Rearm the countdown (optionally with a new budget)."""
        if budget is not None:
            if budget < 1:
                raise ConfigError(
                    f"watchdog budget must be >= 1, got {budget}"
                )
            self.budget = budget
        self.remaining = self.budget

    def tick(self, n: int = 1) -> None:
        """Consume ``n`` ticks; raises :class:`WatchdogTimeout` on expiry."""
        self.remaining -= n
        if self.remaining < 0:
            self.bites += 1
            raise WatchdogTimeout(
                f"watchdog expired after {self.budget} ticks without a kick"
            )


class InterpWatchdog(Watchdog):
    """Interpreter ``step_hook``: one tick per dynamic instruction."""

    def __call__(
        self,
        interp: Interpreter,
        frame: Frame,
        instr: Instruction,
        dynamic_index: int,
    ) -> None:
        self.tick()


class MachineWatchdog(Watchdog):
    """Machine ``step_hook``: one tick per executed instruction."""

    def __call__(
        self, machine: Machine, instr: MachInstr, step_index: int
    ) -> None:
        self.tick()


def chain_step_hooks(*hooks):
    """Compose step hooks left-to-right; ``None`` entries are dropped.

    Both substrates accept a single ``step_hook`` callable; the supervisor
    needs several at once (fault injector, checkpoint taker, watchdog).
    """
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(*args) -> None:
        for hook in live:
            hook(*args)

    return chained
