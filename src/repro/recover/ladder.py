"""The escalation ladder: staged recovery with bounded attempts.

Fuchs et al.'s multi-stage fault-tolerance argument (arXiv:1708.06931) is
that recovery actions form a cost hierarchy — re-issuing a task is cheap,
rolling back to a checkpoint wastes only the work since the checkpoint, a
cold restart re-runs everything, and a power cycle adds seconds of outage
on top.  A supervisor should climb that ladder, not jump to the top: most
upsets are transient and clear at the first rung.  Each rung gets a
bounded number of attempts with exponential backoff between them, so a
persistent fault cannot pin the supervisor in a retry loop.

:class:`FaultPersistence` models *why* a rung can fail: the injected SEU
may have corrupted state the rung does not reset (a global outside the
task's write set, the program image, a stuck peripheral latch).  Those
failure modes live outside the interpreter's reach, so they are drawn
probabilistically per failure; within an eligible rung the mechanism
(re-run, checkpoint resume) must still actually produce a correct output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class RecoveryRung(enum.Enum):
    """One stage of the escalation ladder, cheapest first."""

    RETRY = "retry"                # re-issue the task on the live system
    ROLLBACK = "rollback"          # restore last good checkpoint, resume
    COLD_RESTART = "cold-restart"  # reboot: reset state, reload image
    POWER_CYCLE = "power-cycle"    # full power cycle, clears stuck latches

    @property
    def rank(self) -> int:
        return _RUNG_RANKS[self]


_RUNG_RANKS = {
    RecoveryRung.RETRY: 0,
    RecoveryRung.ROLLBACK: 1,
    RecoveryRung.COLD_RESTART: 2,
    RecoveryRung.POWER_CYCLE: 3,
}

#: Rungs in default escalation order.
DEFAULT_ORDER = (
    RecoveryRung.RETRY,
    RecoveryRung.ROLLBACK,
    RecoveryRung.COLD_RESTART,
    RecoveryRung.POWER_CYCLE,
)


class FaultPersistence(enum.Enum):
    """How sticky a failure's root cause is.

    Attributes map each class to the weakest rung that clears it:
    TRANSIENT clears at any rung, STATE needs at least a rollback to a
    pre-fault checkpoint, IMAGE needs the program reloaded (cold restart),
    STUCK needs power removed.
    """

    TRANSIENT = "transient"
    STATE = "state"
    IMAGE = "image"
    STUCK = "stuck"

    def cleared_by(self, rung: RecoveryRung) -> bool:
        return rung.rank >= _MIN_CLEARING_RANK[self]


_MIN_CLEARING_RANK = {
    FaultPersistence.TRANSIENT: RecoveryRung.RETRY.rank,
    FaultPersistence.STATE: RecoveryRung.ROLLBACK.rank,
    FaultPersistence.IMAGE: RecoveryRung.COLD_RESTART.rank,
    FaultPersistence.STUCK: RecoveryRung.POWER_CYCLE.rank,
}


@dataclass(frozen=True)
class PlannedAttempt:
    """One scheduled recovery attempt.

    Attributes:
        rung: the ladder stage.
        attempt: 0-based attempt index within the rung.
        backoff_s: delay before this attempt (exponential within a rung).
    """

    rung: RecoveryRung
    attempt: int
    backoff_s: float


@dataclass(frozen=True)
class LadderConfig:
    """Escalation policy.

    Attributes:
        attempts: max attempts per rung (0 skips the rung entirely).
        backoff_base_s: delay before the second attempt of any rung.
        backoff_factor: multiplier per further attempt on the same rung.
        order: rung sequence; the default follows the cost hierarchy.
            Long-running tasks with cheap checkpoints may prefer
            :meth:`rollback_first`.
    """

    attempts: dict[RecoveryRung, int] = field(
        default_factory=lambda: {
            RecoveryRung.RETRY: 1,
            RecoveryRung.ROLLBACK: 2,
            RecoveryRung.COLD_RESTART: 2,
            RecoveryRung.POWER_CYCLE: 1,
        }
    )
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    order: tuple[RecoveryRung, ...] = DEFAULT_ORDER

    @staticmethod
    def rollback_first() -> "LadderConfig":
        """Prefer checkpoint rollback over full task retry.

        Rolling back wastes only the work done since the checkpoint, so
        for tasks long relative to their checkpoint interval this order
        minimizes wasted cycles.
        """
        return LadderConfig(order=(
            RecoveryRung.ROLLBACK,
            RecoveryRung.RETRY,
            RecoveryRung.COLD_RESTART,
            RecoveryRung.POWER_CYCLE,
        ))


class EscalationLadder:
    """Expands a :class:`LadderConfig` into a bounded attempt schedule."""

    def __init__(self, config: LadderConfig = LadderConfig()) -> None:
        for rung, n in config.attempts.items():
            if n < 0:
                raise ConfigError(
                    f"attempt count for {rung.value} must be >= 0, got {n}"
                )
        if config.backoff_base_s < 0:
            raise ConfigError("backoff base must be >= 0")
        if config.backoff_factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")
        if len(set(config.order)) != len(config.order):
            raise ConfigError("ladder order must not repeat rungs")
        self.config = config

    def plan(self) -> list[PlannedAttempt]:
        """The full attempt schedule, in execution order.

        The first attempt on each rung is immediate (backoff 0); further
        attempts on the same rung back off exponentially — the fault may
        need time to drain (e.g. charge dissipation after an SEU burst).
        """
        schedule: list[PlannedAttempt] = []
        for rung in self.config.order:
            for attempt in range(self.config.attempts.get(rung, 0)):
                backoff = 0.0
                if attempt > 0:
                    backoff = (
                        self.config.backoff_base_s
                        * self.config.backoff_factor ** (attempt - 1)
                    )
                schedule.append(PlannedAttempt(
                    rung=rung, attempt=attempt, backoff_s=backoff,
                ))
        return schedule

    @property
    def max_attempts(self) -> int:
        return sum(self.config.attempts.get(r, 0) for r in self.config.order)
