"""Checksum-verified checkpointing for both execution substrates.

Checkpoints live in the same radiation environment as the state they
protect: an SEU can flip a bit of a stored checkpoint just as easily as a
bit of a live register.  Every checkpoint therefore stores a canonical
byte serialization of the captured state together with its CRC-32, and
:meth:`CheckpointManager.latest_good` re-verifies the checksum before a
restore is allowed — a corrupted checkpoint is skipped, not restored
(restoring corrupt state would convert a detected failure into silent
data corruption).

Two substrates are supported:

- the machine emulator, via :func:`checkpoint_machine` /
  :func:`restore_machine_checkpoint` on top of
  :mod:`repro.machine.snapshot`;
- the IR interpreter, via :class:`CheckpointHook` (a ``step_hook`` that
  captures single-frame state at block-body boundaries) and
  :func:`resume_from_checkpoint`, which re-enters execution through
  :meth:`repro.ir.interp.Interpreter.resume`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.ecc.crc import crc32
from repro.errors import CheckpointError
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.instructions import Instruction
from repro.ir.interp import ExecutionResult, Frame, Interpreter
from repro.ir.module import Module
from repro.machine.cpu import Machine
from repro.machine.snapshot import restore_snapshot, take_snapshot
from repro.obs.events import CheckpointTaken, Tracer


@dataclass(frozen=True)
class Checkpoint:
    """One stored checkpoint: serialized state plus its checksum.

    Attributes:
        payload: canonical byte serialization of the captured state.
        crc: CRC-32 of ``payload`` computed at capture time.
        instructions: dynamic instruction count at capture.
        cycles: cycle count at capture.
        substrate: "interp" or "machine".
    """

    payload: bytes
    crc: int
    instructions: int
    cycles: int
    substrate: str

    @property
    def intact(self) -> bool:
        """True when the payload still matches its capture-time CRC."""
        return crc32(self.payload) == self.crc

    def state(self) -> tuple:
        """Deserialize the payload (verify with :attr:`intact` first)."""
        try:
            return ast.literal_eval(self.payload.decode("utf-8"))
        except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint payload is unparseable: {exc}"
            ) from exc


def _serialize(state: tuple) -> bytes:
    """Canonical byte form: the repr of a literal-safe tuple."""
    return repr(state).encode("utf-8")


class CheckpointManager:
    """Ring buffer of the last ``capacity`` checkpoints.

    Attributes:
        taken: checkpoints captured over the manager's lifetime.
        corrupt_detected: checkpoints the CRC rejected during lookup.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise CheckpointError(
                f"checkpoint capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._ring: list[Checkpoint] = []
        self.taken = 0
        self.corrupt_detected = 0

    def __len__(self) -> int:
        return len(self._ring)

    def store(
        self, state: tuple, instructions: int, cycles: int, substrate: str
    ) -> Checkpoint:
        """Serialize and retain ``state``, evicting the oldest if full."""
        payload = _serialize(state)
        ckpt = Checkpoint(
            payload=payload,
            crc=crc32(payload),
            instructions=instructions,
            cycles=cycles,
            substrate=substrate,
        )
        self._ring.append(ckpt)
        if len(self._ring) > self.capacity:
            self._ring.pop(0)
        self.taken += 1
        return ckpt

    def latest_good(self, skip: int = 0) -> Checkpoint | None:
        """Newest CRC-intact checkpoint, optionally skipping ``skip``.

        ``skip`` counts *intact* checkpoints: the escalation ladder's
        second rollback attempt passes ``skip=1`` to reach further into
        the past when resuming from the newest checkpoint reproduced the
        failure (its state postdates the fault).
        """
        good = 0
        for ckpt in reversed(self._ring):
            if not ckpt.intact:
                self.corrupt_detected += 1
                continue
            if good == skip:
                return ckpt
            good += 1
        return None

    def flip_payload_bit(self, index: int, bit: int) -> None:
        """Corrupt a stored checkpoint in place (an SEU hit storage).

        ``index`` addresses the ring oldest-first; ``bit`` is a bit
        offset into the payload.
        """
        ckpt = self._ring[index]
        data = bytearray(ckpt.payload)
        data[(bit // 8) % len(data)] ^= 1 << (bit % 8)
        self._ring[index] = Checkpoint(
            payload=bytes(data),
            crc=ckpt.crc,
            instructions=ckpt.instructions,
            cycles=ckpt.cycles,
            substrate=ckpt.substrate,
        )

    def clear(self) -> None:
        self._ring.clear()


# -- machine substrate ---------------------------------------------------------


def checkpoint_machine(
    machine: Machine, manager: CheckpointManager
) -> Checkpoint:
    """Capture the machine's architectural state into ``manager``."""
    snap = take_snapshot(machine)
    state = (
        snap.registers, snap.pc, snap.memory, snap.halted,
        snap.steps, snap.cycles,
    )
    return manager.store(
        state, instructions=snap.steps, cycles=snap.cycles,
        substrate="machine",
    )


def restore_machine_checkpoint(machine: Machine, ckpt: Checkpoint) -> None:
    """Verify and restore a machine checkpoint (cache is flushed)."""
    if ckpt.substrate != "machine":
        raise CheckpointError(
            f"cannot restore a {ckpt.substrate!r} checkpoint into a machine"
        )
    if not ckpt.intact:
        raise CheckpointError("refusing to restore a corrupt checkpoint")
    registers, pc, memory, halted, steps, cycles = ckpt.state()
    from repro.machine.snapshot import Snapshot

    restore_snapshot(machine, Snapshot(
        registers=tuple(registers),
        pc=pc,
        memory=tuple(memory),
        halted=halted,
        steps=steps,
        cycles=cycles,
    ))


# -- interpreter substrate -----------------------------------------------------


class CheckpointHook:
    """Step hook that checkpoints interpreter state every ``interval``.

    Captures fire only at *safe points*: the first body instruction of a
    block in a single-frame execution, where the block's phis have already
    been applied to the environment.  :func:`resume_from_checkpoint` can
    re-enter execution exactly there, skipping the already-applied phis.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        interval: int = 200,
        tracer: Tracer | None = None,
        trial_index: int = 0,
    ) -> None:
        if interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        self.manager = manager
        self.interval = interval
        self.tracer = tracer
        self.trial_index = trial_index
        self._next_at = interval

    def __call__(
        self,
        interp: Interpreter,
        frame: Frame,
        instr: Instruction,
        dynamic_index: int,
    ) -> None:
        if dynamic_index < self._next_at:
            return
        if len(interp.frames) != 1:
            return  # only top-frame state is resumable; wait for a return
        body = frame.block.body
        if not body or instr is not body[0]:
            return  # mid-block; wait for the next block boundary
        state = (
            frame.func.name,
            frame.block.name,
            tuple(sorted(frame.env.items())),
            tuple(interp.heap),
        )
        self.manager.store(
            state,
            instructions=interp.instructions,
            cycles=interp.cycles,
            substrate="interp",
        )
        self._next_at = dynamic_index + self.interval
        if self.tracer is not None:
            self.tracer.emit(CheckpointTaken(
                trial=self.trial_index,
                instructions=interp.instructions,
                cycles=interp.cycles,
                taken=self.manager.taken,
            ))


def resume_from_checkpoint(
    module: Module,
    ckpt: Checkpoint,
    cost_model: CostModel = CORTEX_A53,
    fuel: int = 5_000_000,
    step_hook=None,
    code_cache: dict | None = None,
) -> ExecutionResult:
    """Verify an interpreter checkpoint and resume execution from it."""
    if ckpt.substrate != "interp":
        raise CheckpointError(
            f"cannot resume a {ckpt.substrate!r} checkpoint in the interpreter"
        )
    if not ckpt.intact:
        raise CheckpointError("refusing to resume a corrupt checkpoint")
    func_name, block_name, env_items, heap = ckpt.state()
    interp = Interpreter(
        module, cost_model=cost_model, fuel=fuel, step_hook=step_hook,
        code_cache=code_cache
    )
    return interp.resume(
        func_name,
        block_name,
        env=dict(env_items),
        heap=list(heap),
        cycles=ckpt.cycles,
        instructions=ckpt.instructions,
    )
