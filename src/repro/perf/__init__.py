"""Performance support: golden-run caching, warm pools, the perf report.

Campaign wall-clock is the binding constraint on how many fault-injection
trials, DMR levels and workloads the experiment suite can afford (see
ROADMAP).  This package holds the cross-cutting perf machinery:

* :mod:`repro.perf.cache` — a process-global golden-run cache keyed by a
  module fingerprint (hash of the printed IR) + entry function + args +
  cost model, so multi-level sweeps stop re-deriving identical golden runs;
* :mod:`repro.perf.pool` — the persistent warm worker-pool registry and
  the shared-memory trial-result buffers used by the parallel campaign
  engine, so repeat campaigns skip fork/parse/golden-validate entirely;
* :mod:`repro.perf.report` — the machine-readable ``BENCH_perf.json``
  writer that gives subsequent PRs a perf trajectory to regress against,
  plus the ``python -m repro.perf.report`` summary CLI.

The parallel campaign engine itself lives in :mod:`repro.faults.parallel`.
"""

from repro.perf.cache import (
    CacheStats,
    GOLDEN_CACHE,
    GoldenRunCache,
    cost_model_key,
    module_fingerprint,
)
from repro.perf.pool import (
    POOL_REGISTRY,
    PoolRegistry,
    TRIAL_DTYPE,
    TrialBuffer,
    WarmPool,
    adaptive_chunk_size,
    decode_trial,
    encode_trial,
    site_table,
)
from repro.perf.report import (
    format_report,
    load_perf_report,
    write_perf_report,
)

__all__ = [
    "CacheStats",
    "GOLDEN_CACHE",
    "GoldenRunCache",
    "cost_model_key",
    "module_fingerprint",
    "POOL_REGISTRY",
    "PoolRegistry",
    "TRIAL_DTYPE",
    "TrialBuffer",
    "WarmPool",
    "adaptive_chunk_size",
    "decode_trial",
    "encode_trial",
    "site_table",
    "format_report",
    "load_perf_report",
    "write_perf_report",
]
