"""Performance support: golden-run caching and the perf trajectory report.

Campaign wall-clock is the binding constraint on how many fault-injection
trials, DMR levels and workloads the experiment suite can afford (see
ROADMAP).  This package holds the cross-cutting perf machinery:

* :mod:`repro.perf.cache` — a process-global golden-run cache keyed by a
  module fingerprint (hash of the printed IR) + entry function + args +
  cost model, so multi-level sweeps stop re-deriving identical golden runs;
* :mod:`repro.perf.report` — the machine-readable ``BENCH_perf.json``
  writer that gives subsequent PRs a perf trajectory to regress against.

The parallel campaign engine itself lives in :mod:`repro.faults.parallel`.
"""

from repro.perf.cache import (
    CacheStats,
    GOLDEN_CACHE,
    GoldenRunCache,
    cost_model_key,
    module_fingerprint,
)
from repro.perf.report import load_perf_report, write_perf_report

__all__ = [
    "CacheStats",
    "GOLDEN_CACHE",
    "GoldenRunCache",
    "cost_model_key",
    "module_fingerprint",
    "load_perf_report",
    "write_perf_report",
]
