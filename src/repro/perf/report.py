"""Machine-readable perf trajectory: ``BENCH_perf.json``.

``benchmarks/bench_perf.py`` measures campaign throughput (serial vs
parallel), interpreter speed (fast path vs reference loop) and golden-cache
effectiveness, then writes one snapshot here.  Previous snapshots are kept
in a bounded ``history`` list so later PRs can regress against the
trajectory, not just the latest number.

``python -m repro.perf.report [path]`` prints a human summary of the
report — headline numbers, the trajectory of ``min_speedup`` and
``parallel_vs_serial`` across history, and the live
:data:`~repro.obs.metrics.ENGINE_METRICS` snapshot (golden-cache and
warm-pool sections).
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1

#: Snapshots retained in the trajectory (newest first).
MAX_HISTORY = 20


def load_perf_report(path: str | Path) -> dict | None:
    """Read an existing report; None when absent or unparseable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(report, dict):
        return None
    return report


def write_perf_report(
    path: str | Path, snapshot: dict, keep_history: int = MAX_HISTORY
) -> dict:
    """Write ``snapshot`` as the current measurement, rolling the old one
    into ``history``.  Returns the full report.

    History is append-only and bounded: the previous snapshot (minus its
    own ``history``) is prepended, every retained entry carries the
    ``schema`` version it was written under (entries predating schema
    stamps are backfilled with version 1), and the list is truncated to
    ``keep_history`` newest-first.
    """
    path = Path(path)
    previous = load_perf_report(path)
    history: list[dict] = []
    if previous is not None:
        history = [
            {"schema": 1, **h} if "schema" not in h else h
            for h in previous.get("history", [])
            if isinstance(h, dict)
        ]
        rolled = {
            "schema": previous.get("schema", 1),
            **{k: v for k, v in previous.items()
               if k not in ("history", "schema")},
        }
        if len(rolled) > 1:
            history.insert(0, rolled)
    report = {
        "schema": SCHEMA_VERSION,
        **snapshot,
        "history": history[:keep_history],
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return report


# -- CLI -----------------------------------------------------------------------

_HEADLINES = (
    ("min_speedup", "fast-path speedup vs reference (min)", "x"),
    ("target_speedup", "fast-path speedup target", "x"),
    ("parallel_vs_serial", "parallel vs serial throughput", "x"),
    ("lockstep_vs_serial", "lockstep vs serial throughput", "x"),
    ("serial_trials_per_s", "serial campaign throughput", " trials/s"),
    ("parallel_trials_per_s", "parallel campaign throughput", " trials/s"),
    ("available_cpus", "CPUs available to the bench run", ""),
    ("workers", "workers used by the bench run", ""),
)


def _headline(snapshot: dict, key: str):
    """Find ``key`` at the top level or inside any dict-valued section."""
    if key in snapshot:
        return snapshot[key]
    for section in snapshot.values():
        if isinstance(section, dict) and key in section:
            return section[key]
    return None


def format_report(report: dict | None, registry_snapshot: dict) -> str:
    """Render a report + engine-metrics snapshot as the CLI's text.

    ``registry_snapshot`` is a versioned export snapshot
    (:func:`repro.obs.export.export_snapshot`); sections are read
    through :func:`repro.obs.export.snapshot_section` rather than by
    poking the registry's internal dict layout.
    """
    from repro.obs.export import snapshot_section

    lines: list[str] = []
    if report is None:
        lines.append("no perf report found (run benchmarks/bench_perf.py)")
    else:
        lines.append(
            f"perf report (schema {report.get('schema', '?')}, "
            f"{len(report.get('history', []))} history entries)"
        )
        for key, label, unit in _HEADLINES:
            value = _headline(report, key)
            if value is not None:
                shown = f"{value:.2f}" if isinstance(value, float) else value
                lines.append(f"  {label}: {shown}{unit}")
        history = [
            h for h in report.get("history", []) if isinstance(h, dict)
        ]
        for key in ("min_speedup", "parallel_vs_serial"):
            trail = [
                v for v in (
                    _headline(snap, key) for snap in [report] + history
                ) if v is not None
            ]
            if len(trail) > 1:
                shown = " <- ".join(f"{v:.2f}" for v in trail[:8])
                lines.append(f"  {key} trajectory (newest first): {shown}")
    for section in ("golden_cache", "warm_pool", "engine"):
        rows = snapshot_section(registry_snapshot, section)
        lines.append(f"engine metrics: {section}")
        if rows:
            for name, value in sorted(rows.items()):
                if isinstance(value, dict):
                    # Histogram summary: show the load-bearing quantiles.
                    shown = ", ".join(
                        f"{k}={value[k]:.3g}"
                        for k in ("count", "p50", "p99", "max")
                        if k in value
                    )
                    lines.append(f"  {name}: {shown}")
                else:
                    lines.append(f"  {name}: {value}")
        else:
            lines.append("  (no activity this process)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.obs.export import export_snapshot
    from repro.obs.metrics import ENGINE_METRICS

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.report",
        description="Summarize BENCH_perf.json and live engine metrics.",
    )
    parser.add_argument(
        "path", nargs="?", default="BENCH_perf.json",
        help="perf report to summarize (default: ./BENCH_perf.json)",
    )
    opts = parser.parse_args(argv)
    print(format_report(
        load_perf_report(opts.path), export_snapshot(ENGINE_METRICS)
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
