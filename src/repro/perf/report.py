"""Machine-readable perf trajectory: ``BENCH_perf.json``.

``benchmarks/bench_perf.py`` measures campaign throughput (serial vs
parallel), interpreter speed (fast path vs reference loop) and golden-cache
effectiveness, then writes one snapshot here.  Previous snapshots are kept
in a bounded ``history`` list so later PRs can regress against the
trajectory, not just the latest number.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1

#: Snapshots retained in the trajectory (newest first).
MAX_HISTORY = 20


def load_perf_report(path: str | Path) -> dict | None:
    """Read an existing report; None when absent or unparseable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(report, dict):
        return None
    return report


def write_perf_report(
    path: str | Path, snapshot: dict, keep_history: int = MAX_HISTORY
) -> dict:
    """Write ``snapshot`` as the current measurement, rolling the old one
    into ``history``.  Returns the full report.

    History is append-only and bounded: the previous snapshot (minus its
    own ``history``) is prepended, every retained entry carries the
    ``schema`` version it was written under (entries predating schema
    stamps are backfilled with version 1), and the list is truncated to
    ``keep_history`` newest-first.
    """
    path = Path(path)
    previous = load_perf_report(path)
    history: list[dict] = []
    if previous is not None:
        history = [
            {"schema": 1, **h} if "schema" not in h else h
            for h in previous.get("history", [])
            if isinstance(h, dict)
        ]
        rolled = {
            "schema": previous.get("schema", 1),
            **{k: v for k, v in previous.items()
               if k not in ("history", "schema")},
        }
        if len(rolled) > 1:
            history.insert(0, rolled)
    report = {
        "schema": SCHEMA_VERSION,
        **snapshot,
        "history": history[:keep_history],
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return report
