"""Persistent warm worker pools + shared-memory trial result buffers.

The fork-per-campaign pool of the original parallel engine paid its full
setup cost — fork, module re-parse, golden re-validation, block
compilation — on **every** campaign, which is why ``parallel_vs_serial``
sat below 1.0 on small hosts.  This module keeps pools *alive across
campaigns*:

* :class:`PoolRegistry` — an LRU of named :class:`WarmPool`s keyed by
  everything the worker warm-start depends on (module fingerprint via
  printed IR, entry + args, cost model, fuel, supervisor config, tracing
  mode, worker count).  The first campaign for a key forks and
  warm-starts the pool; subsequent campaigns with the same shape reuse
  the hot workers — their parsed module, validated golden run and
  compiled ``code_cache`` are already in place, so dispatch cost drops
  to queue traffic.
* :class:`TrialBuffer` — a preallocated ``multiprocessing.shared_memory``
  segment holding one fixed-width record per trial
  (:data:`TRIAL_DTYPE`).  Workers write their chunk's classified results
  straight into the segment at the trial's global index; the parent
  reconstructs the ``TrialResult`` list without unpickling per-trial
  objects.  Values that cannot be represented in the fixed-width row
  (integers beyond int64 — e.g. a pointer return with a flipped high
  bit — or unknown injection sites) fall back to a tiny pickled
  per-trial override list, so the fast path never bends correctness.

Lifecycle stats are published to
:data:`repro.obs.metrics.ENGINE_METRICS`: ``warm_pool.created`` /
``warm_pool.reused`` counters, a ``warm_pool.workers_alive`` gauge and a
``warm_pool.chunks_dispatched`` counter, surfaced by
``python -m repro.perf.report``.
"""

from __future__ import annotations

import atexit
import math
import threading
from collections import OrderedDict
from multiprocessing import get_context
from multiprocessing import shared_memory

import numpy as np

from repro.ir.module import Module
from repro.obs.metrics import ENGINE_METRICS

# NOTE: repro.faults imports are deferred to call sites — this module is
# imported by repro.faults.parallel during repro.faults package init, so
# a top-level import back into repro.faults would re-enter the partially
# initialized package.


def _pool_context():
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return get_context("spawn")


class WarmPool:
    """One persistent process pool, warm-started for a campaign shape."""

    def __init__(self, key: tuple, pool, workers: int) -> None:
        self.key = key
        self.pool = pool
        self.workers = workers

    def map(self, fn, chunks: list) -> list:
        ENGINE_METRICS.counter("warm_pool.chunks_dispatched").inc(len(chunks))
        return self.pool.map(fn, chunks)

    def shutdown(self) -> None:
        self.pool.terminate()
        self.pool.join()


class PoolRegistry:
    """LRU registry of warm pools, bounded to ``max_pools`` alive at once.

    ``get`` returns the existing pool for a key (reuse — the warm path)
    or forks and warm-starts a new one, evicting the least recently used
    pool beyond the bound.  Returns None when the host cannot create a
    pool at all (no POSIX semaphores, fork blocked); callers fall back to
    in-process execution exactly as before.
    """

    def __init__(self, max_pools: int = 2) -> None:
        if max_pools < 1:
            raise ValueError(f"max_pools must be >= 1, got {max_pools}")
        self.max_pools = max_pools
        self._pools: OrderedDict[tuple, WarmPool] = OrderedDict()
        self._lock = threading.Lock()

    def get(
        self,
        key: tuple,
        workers: int,
        initializer,
        initargs: tuple,
    ) -> WarmPool | None:
        with self._lock:
            pool = self._pools.get(key)
            if pool is not None:
                self._pools.move_to_end(key)
                ENGINE_METRICS.counter("warm_pool.reused").inc()
                return pool
        try:
            raw = _pool_context().Pool(
                processes=workers,
                initializer=initializer,
                initargs=initargs,
            )
        except (OSError, PermissionError, ValueError):
            return None
        pool = WarmPool(key, raw, workers)
        evicted: list[WarmPool] = []
        with self._lock:
            self._pools[key] = pool
            while len(self._pools) > self.max_pools:
                _, old = self._pools.popitem(last=False)
                evicted.append(old)
            ENGINE_METRICS.counter("warm_pool.created").inc()
            ENGINE_METRICS.gauge("warm_pool.workers_alive").set(
                sum(p.workers for p in self._pools.values())
            )
        for old in evicted:
            old.shutdown()
        return pool

    def discard(self, pool: WarmPool) -> None:
        """Drop a pool that turned out broken (worker init raised)."""
        with self._lock:
            if self._pools.get(pool.key) is pool:
                del self._pools[pool.key]
            ENGINE_METRICS.gauge("warm_pool.workers_alive").set(
                sum(p.workers for p in self._pools.values())
            )
        pool.shutdown()

    def clear(self) -> None:
        """Terminate every pool (tests, interpreter shutdown)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
            ENGINE_METRICS.gauge("warm_pool.workers_alive").set(0)
        for pool in pools:
            pool.shutdown()

    def __len__(self) -> int:
        return len(self._pools)


#: Process-global pool registry used by :mod:`repro.faults.parallel`.
POOL_REGISTRY = PoolRegistry()
atexit.register(POOL_REGISTRY.clear)


# -- shared-memory trial records -----------------------------------------------

#: Fixed-width wire form of one classified trial.  ``*_kind`` columns
#: disambiguate the unions (None / str site / int address; None / int /
#: float value); anything unrepresentable ships as a pickled override.
TRIAL_DTYPE = np.dtype([
    ("outcome", "u1"),
    ("target", "u1"),
    ("loc_kind", "u1"),      # 0 = None, 1 = site-table index, 2 = address
    ("value_kind", "u1"),    # 0 = None, 1 = int, 2 = float
    ("dynamic_index", "<i8"),
    ("location", "<i8"),
    ("bit", "<i8"),          # -1 = None
    ("value_int", "<i8"),
    ("value_float", "<f8"),
    ("rel_error", "<f8"),
    ("cycles", "<i8"),
])

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1

_ENUM_CACHE: tuple[list, list] | None = None


def _enums() -> tuple[list, list]:
    """``(outcomes, targets)`` in stable declaration order (lazy import)."""
    global _ENUM_CACHE
    if _ENUM_CACHE is None:
        from repro.faults.model import FaultTarget
        from repro.faults.outcomes import FaultOutcome

        _ENUM_CACHE = (list(FaultOutcome), list(FaultTarget))
    return _ENUM_CACHE


def site_table(module: Module) -> list[str]:
    """Deterministic table of every named SSA value in ``module``.

    Register injection sites are SSA value names; both the parent and
    each worker derive this table from their own copy of the module
    (printed-IR round-trips preserve names), so an index written by a
    worker decodes to the identical string in the parent.
    """
    names: set[str] = set()
    for func in module.functions:
        for arg in func.args:
            names.add(arg.name)
        for instr in func.instructions():
            if instr.defines_value:
                names.add(instr.name)
    return sorted(names)


def encode_trial(row: np.ndarray, trial, site_index: dict[str, int]) -> bool:
    """Encode one trial into ``row``; False when it needs the override path."""
    outcomes, targets = _enums()
    spec = trial.spec
    location = spec.location
    if location is None:
        loc_kind, loc = 0, 0
    elif isinstance(location, str):
        idx = site_index.get(location)
        if idx is None:
            return False
        loc_kind, loc = 1, idx
    else:
        loc = int(location)
        if not _INT64_MIN <= loc <= _INT64_MAX:
            return False
        loc_kind = 2
    value = trial.value
    if value is None:
        value_kind, value_int, value_float = 0, 0, 0.0
    elif isinstance(value, float):
        value_kind, value_int, value_float = 2, 0, value
    else:
        value_int = int(value)
        if not _INT64_MIN <= value_int <= _INT64_MAX:
            return False
        value_kind, value_float = 1, 0.0
    row["outcome"] = outcomes.index(trial.outcome)
    row["target"] = targets.index(spec.target)
    row["loc_kind"] = loc_kind
    row["value_kind"] = value_kind
    row["dynamic_index"] = spec.dynamic_index
    row["location"] = loc
    row["bit"] = -1 if spec.bit is None else spec.bit
    row["value_int"] = value_int
    row["value_float"] = value_float
    row["rel_error"] = trial.rel_error
    row["cycles"] = trial.cycles
    return True


def decode_trial(row: np.ndarray, sites: list[str]):
    """Rebuild one :class:`~repro.faults.outcomes.TrialResult` from a row."""
    from repro.faults.model import FaultSpec
    from repro.faults.outcomes import TrialResult

    outcomes, targets = _enums()
    loc_kind = int(row["loc_kind"])
    if loc_kind == 0:
        location: str | int | None = None
    elif loc_kind == 1:
        location = sites[int(row["location"])]
    else:
        location = int(row["location"])
    value_kind = int(row["value_kind"])
    if value_kind == 0:
        value: int | float | None = None
    elif value_kind == 1:
        value = int(row["value_int"])
    else:
        value = float(row["value_float"])
    bit = int(row["bit"])
    spec = FaultSpec(
        target=targets[int(row["target"])],
        dynamic_index=int(row["dynamic_index"]),
        location=location,
        bit=None if bit < 0 else bit,
    )
    return TrialResult(
        spec=spec,
        outcome=outcomes[int(row["outcome"])],
        value=value,
        rel_error=float(row["rel_error"]),
        cycles=int(row["cycles"]),
    )


class TrialBuffer:
    """A shared-memory array of ``n`` encoded trial rows.

    The parent ``create``s it and passes :attr:`name` to workers, which
    ``attach`` and write rows in place; ``close``/``unlink`` follow the
    usual shared-memory ownership split (everyone closes, the creator
    unlinks).
    """

    def __init__(self, shm: shared_memory.SharedMemory, n: int) -> None:
        self._shm = shm
        self.array = np.ndarray((n,), dtype=TRIAL_DTYPE, buffer=shm.buf)
        self.name = shm.name

    @classmethod
    def create(cls, n: int) -> "TrialBuffer | None":
        """Allocate a zeroed buffer; None when shared memory is unavailable."""
        size = max(1, n) * TRIAL_DTYPE.itemsize
        try:
            shm = shared_memory.SharedMemory(create=True, size=size)
        except (OSError, PermissionError):
            return None
        buf = cls(shm, n)
        buf.array[:] = np.zeros(n, dtype=TRIAL_DTYPE)
        return buf

    @classmethod
    def attach(cls, name: str, n: int) -> "TrialBuffer":
        shm = shared_memory.SharedMemory(name=name)
        # Attaching registers the segment with this process's resource
        # tracker, which would later (wrongly) warn about / unlink the
        # parent-owned segment.  Ownership stays with the creator.
        try:
            from multiprocessing.resource_tracker import unregister

            unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API unavailable
            pass
        return cls(shm, n)

    def close(self) -> None:
        del self.array  # release the exported buffer before closing
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def chunk_offsets(chunks: list[list]) -> list[int]:
    """Global start index of each contiguous chunk."""
    offsets = []
    total = 0
    for chunk in chunks:
        offsets.append(total)
        total += len(chunk)
    return offsets


def adaptive_chunk_size(n: int, effective_workers: int) -> int:
    """~4 chunks per *effective* worker: straggler/IPC balance."""
    return max(1, math.ceil(n / (effective_workers * 4)))
