"""Golden-run cache: stop re-deriving identical fault-free reference runs.

Every campaign starts with a golden (fault-free) run of its module; sweeps
like ``bench_dmr_tradeoff`` and ``bench_placement_ablation`` construct many
campaigns over the *same* instrumented module + args, and the DMR/quantize
runtimes re-run their golden reference on every ``campaign()`` call.  The
cache keys on a **content fingerprint** — a SHA-256 of the printed IR —
not on the module object or its name, so an instrumented clone of a module
never hits the cache entry of its uninstrumented original, and any in-place
mutation of a module changes the key rather than returning a stale run.

A cached entry is only served when the requesting campaign's fuel budget
covers the recorded instruction count; a campaign whose fuel could not have
completed the golden run re-executes (and fails) exactly as it would have
without the cache.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.ir.costmodel import CostModel
from repro.ir.interp import ExecutionResult
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.obs.metrics import ENGINE_METRICS


def module_fingerprint(module: Module) -> str:
    """Content hash of a module: SHA-256 of its printed IR.

    Two modules with identical printed IR behave identically under the
    interpreter (the printer is the module's canonical serialization), so
    the fingerprint is a sound cache key for execution results.
    """
    return hashlib.sha256(print_module(module).encode("utf-8")).hexdigest()


def cost_model_key(cost_model: CostModel) -> tuple:
    """Hashable identity of a cost model's cycle charges."""
    return (
        cost_model.name,
        cost_model.int_alu,
        cost_model.int_div,
        cost_model.fp_alu,
        cost_model.magnitude,
        cost_model.load,
        cost_model.store,
        cost_model.branch,
        cost_model.call_overhead,
        tuple(sorted(
            (op.value, cost) for op, cost in cost_model.overrides.items()
        )),
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class GoldenRunCache:
    """LRU cache of golden :class:`ExecutionResult` objects.

    Thread-safe; bounded at ``maxsize`` entries.  Entries are defensively
    copied on the way out so callers can never mutate a cached run.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, ExecutionResult] = OrderedDict()
        self._lock = threading.Lock()

    def key_for(
        self,
        module: Module,
        func_name: str,
        args: tuple[int | float, ...],
        cost_model: CostModel,
    ) -> tuple:
        """Cache key covering everything a golden run's outcome depends on."""
        return (
            module_fingerprint(module),
            func_name,
            tuple(args),
            cost_model_key(cost_model),
        )

    def get(self, key: tuple, fuel: int) -> ExecutionResult | None:
        """Return the cached golden run, or None on miss.

        A hit requires the cached run to fit the caller's ``fuel`` budget:
        a run that recorded more instructions than the budget would have
        hung under it, so serving it would silently change semantics.
        """
        with self._lock:
            golden = self._entries.get(key)
            if golden is None or golden.instructions > fuel:
                self.stats.misses += 1
                ENGINE_METRICS.counter("golden_cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            ENGINE_METRICS.counter("golden_cache.hits").inc()
            return replace(golden, block_trace=list(golden.block_trace))

    def put(self, key: tuple, golden: ExecutionResult) -> None:
        """Store a (successful) golden run."""
        with self._lock:
            self._entries[key] = replace(
                golden, block_trace=list(golden.block_trace)
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            ENGINE_METRICS.gauge("golden_cache.entries").set(
                len(self._entries)
            )

    def clear(self) -> None:
        """Drop all entries and reset the stats."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global golden-run cache consulted by
#: :func:`repro.faults.campaign.run_golden`.  Each worker process of the
#: parallel campaign engine warms its own instance in the pool initializer.
GOLDEN_CACHE = GoldenRunCache()
