"""Physical page frames with bit-level corruption."""

from __future__ import annotations

import numpy as np

from repro.errors import MemError, PageFault


class PhysicalMemory:
    """``n_pages`` frames of ``page_size`` bytes each.

    Backed by a numpy byte array; supports bit flips at arbitrary physical
    bit offsets (what an SEU does to DRAM) and page-granularity reads and
    writes (what the DSP verifier does).
    """

    def __init__(self, n_pages: int, page_size: int = 4096) -> None:
        if n_pages <= 0 or page_size <= 0:
            raise MemError(
                f"invalid geometry: {n_pages} pages x {page_size} bytes"
            )
        self.n_pages = n_pages
        self.page_size = page_size
        self._frames = np.zeros(n_pages * page_size, dtype=np.uint8)

    @property
    def total_bytes(self) -> int:
        return self.n_pages * self.page_size

    @property
    def total_bits(self) -> int:
        return self.total_bytes * 8

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise PageFault(f"physical page {page} out of range")

    def read_page(self, page: int) -> bytes:
        """Contents of one page frame."""
        self._check_page(page)
        start = page * self.page_size
        return self._frames[start: start + self.page_size].tobytes()

    def write_page(self, page: int, data: bytes) -> None:
        """Overwrite one page frame."""
        self._check_page(page)
        if len(data) != self.page_size:
            raise MemError(
                f"page write of {len(data)} bytes; page size is "
                f"{self.page_size}"
            )
        start = page * self.page_size
        self._frames[start: start + self.page_size] = np.frombuffer(
            data, dtype=np.uint8
        )

    def read_word(self, page: int, offset: int) -> int:
        """Read the 64-bit little-endian word at byte ``offset`` of a page."""
        self._check_page(page)
        if offset % 8 or not 0 <= offset <= self.page_size - 8:
            raise MemError(f"misaligned or out-of-page word offset {offset}")
        start = page * self.page_size + offset
        return int.from_bytes(self._frames[start: start + 8].tobytes(), "little")

    def write_word(self, page: int, offset: int, value: int) -> None:
        """Write a 64-bit little-endian word."""
        self._check_page(page)
        if offset % 8 or not 0 <= offset <= self.page_size - 8:
            raise MemError(f"misaligned or out-of-page word offset {offset}")
        start = page * self.page_size + offset
        self._frames[start: start + 8] = np.frombuffer(
            (value & (1 << 64) - 1).to_bytes(8, "little"), dtype=np.uint8
        )

    def flip_bit(self, bit_offset: int) -> tuple[int, int]:
        """Flip one physical bit; returns (page, bit offset within page)."""
        if not 0 <= bit_offset < self.total_bits:
            raise MemError(f"bit offset {bit_offset} beyond physical memory")
        byte_index, bit = divmod(bit_offset, 8)
        self._frames[byte_index] ^= 1 << bit
        page, page_byte = divmod(byte_index, self.page_size)
        return page, page_byte * 8 + bit

    def fill_random(self, rng: np.random.Generator) -> None:
        """Fill all frames with random bytes (a realistic live-data image)."""
        self._frames[:] = rng.integers(
            0, 256, size=self._frames.shape, dtype=np.uint8
        )
