"""The reserved checksum region.

"On startup, the kernel module will reserve an area of memory for checksums
to be stored" (sect. 4.1).  This class models that region: a per-physical-
page slot holding the page's CRC-32 (detection) and, when a correcting
codec is active, its correction metadata — SECDED check bits per 64-bit
word (1-bit correction), or BCH parity per 51-bit block (the paper's
"software BCH coding scheme", correcting multi-bit bursts per block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecc.bch import BchCode
from repro.ecc.crc import crc32
from repro.ecc.hamming import SecDedCode
from repro.errors import ConfigError, MemError


@dataclass
class PageChecksum:
    """Stored integrity metadata for one physical page.

    Attributes:
        crc: CRC-32 of the page contents at checksum time.
        word_checks: per-64-bit-word SECDED check bits (secded codec).
        block_parity: per-BCH-block parity bit arrays (bch codec).
    """

    crc: int
    word_checks: list[int] = field(default_factory=list)
    block_parity: list[np.ndarray] = field(default_factory=list)


class ChecksumStore:
    """Per-page checksum slots plus the codec used to fill them.

    Attributes:
        codec: "secded" (default), "bch", or "crc" (detection only).
    """

    def __init__(self, n_pages: int, page_size: int,
                 correction: bool | str = True) -> None:
        self.n_pages = n_pages
        self.page_size = page_size
        if correction is True:
            codec = "secded"
        elif correction is False:
            codec = "crc"
        else:
            codec = correction
        if codec not in ("secded", "bch", "crc"):
            raise ConfigError(f"unknown checksum codec {codec!r}")
        self.codec = codec
        self.correction = codec != "crc"
        self._slots: dict[int, PageChecksum] = {}
        self._secded = SecDedCode() if codec == "secded" else None
        self._bch = BchCode(m=6, t=2) if codec == "bch" else None

    @property
    def reserved_bytes(self) -> int:
        """Size of the reserved region this store occupies.

        4 bytes of CRC per page, plus the active codec's redundancy:
        1 byte of SECDED checks per 64-bit word, or 12 parity bits per
        51-bit BCH block.
        """
        per_page = 4
        if self.codec == "secded":
            per_page += self.page_size // 8
        elif self.codec == "bch":
            assert self._bch is not None
            n_blocks = -(-self.page_size * 8 // self._bch.k)
            per_page += -(-n_blocks * self._bch.n_parity // 8)
        return per_page * self.n_pages

    # -- BCH block helpers -------------------------------------------------------

    def _page_bits(self, data: bytes) -> np.ndarray:
        return np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )

    def bch_blocks(self, data: bytes) -> list[np.ndarray]:
        """The page split into k-bit data blocks (zero-padded tail)."""
        assert self._bch is not None
        bits = self._page_bits(data)
        k = self._bch.k
        n_blocks = -(-len(bits) // k)
        padded = np.zeros(n_blocks * k, dtype=np.uint8)
        padded[: len(bits)] = bits
        return [padded[i * k: (i + 1) * k] for i in range(n_blocks)]

    def checksum_page(self, page: int, data: bytes) -> None:
        """(Re)compute and store the metadata for ``page``."""
        if len(data) != self.page_size:
            raise MemError(
                f"checksum of {len(data)} bytes; page size {self.page_size}"
            )
        word_checks: list[int] = []
        block_parity: list[np.ndarray] = []
        if self._secded is not None:
            for off in range(0, self.page_size, 8):
                word = int.from_bytes(data[off: off + 8], "little")
                codeword = self._secded.encode(word)
                # Check bits: the codeword with the data positions zeroed.
                word_checks.append(self._extract_checks(codeword))
        elif self._bch is not None:
            for block in self.bch_blocks(data):
                codeword = self._bch.encode(block)
                block_parity.append(codeword[: self._bch.n_parity].copy())
        self._slots[page] = PageChecksum(
            crc=crc32(data), word_checks=word_checks,
            block_parity=block_parity,
        )

    def _extract_checks(self, codeword: int) -> int:
        """Pack the 8 non-data bits (overall parity + 7 checks) of a word."""
        assert self._secded is not None
        packed = codeword & 1  # overall parity at bit 0
        for i, pos in enumerate(self._secded._check_positions):
            if (codeword >> pos) & 1:
                packed |= 1 << (i + 1)
        return packed

    def rebuild_codeword(self, word: int, checks: int) -> int:
        """Reassemble a 72-bit codeword from data word + packed checks."""
        assert self._secded is not None
        codeword = 0
        for i, pos in enumerate(self._secded._data_positions):
            if (word >> i) & 1:
                codeword |= 1 << pos
        if checks & 1:
            codeword |= 1
        for i, pos in enumerate(self._secded._check_positions):
            if (checks >> (i + 1)) & 1:
                codeword |= 1 << pos
        return codeword

    def has_checksum(self, page: int) -> bool:
        return page in self._slots

    def get(self, page: int) -> PageChecksum:
        slot = self._slots.get(page)
        if slot is None:
            raise MemError(f"page {page} has no stored checksum")
        return slot

    def drop(self, page: int) -> None:
        self._slots.pop(page, None)

    @property
    def secded(self) -> SecDedCode | None:
        return self._secded

    @property
    def bch(self) -> BchCode | None:
        return self._bch
