"""A minimal kernel page table.

The paper's DSP verifier "does not have an understanding of the kernel's
page table and therefore will not be able to run on pages without kernel
support" (sect. 4.1) — the kernel module walks this structure and hands
*physical* page numbers to the DSP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemError, PageFault


@dataclass
class PageTableEntry:
    """One virtual-page mapping.

    Attributes:
        physical_page: backing frame number.
        present: whether the mapping is live.
        dirty: set on write; cleared when the scrubber re-checksums.
    """

    physical_page: int
    present: bool = True
    dirty: bool = False


class PageTable:
    """Virtual page number -> physical frame mapping."""

    def __init__(self, n_physical_pages: int) -> None:
        self.n_physical_pages = n_physical_pages
        self._entries: dict[int, PageTableEntry] = {}
        self._free = list(range(n_physical_pages - 1, -1, -1))

    def map_page(self, vpn: int) -> PageTableEntry:
        """Map a virtual page to a fresh physical frame."""
        if vpn in self._entries and self._entries[vpn].present:
            raise MemError(f"virtual page {vpn} already mapped")
        if not self._free:
            raise MemError("out of physical frames")
        entry = PageTableEntry(physical_page=self._free.pop())
        self._entries[vpn] = entry
        return entry

    def unmap_page(self, vpn: int) -> None:
        entry = self._entries.get(vpn)
        if entry is None or not entry.present:
            raise PageFault(f"virtual page {vpn} not mapped")
        entry.present = False
        self._free.append(entry.physical_page)
        del self._entries[vpn]

    def translate(self, vpn: int) -> int:
        """Physical frame of a virtual page."""
        entry = self._entries.get(vpn)
        if entry is None or not entry.present:
            raise PageFault(f"virtual page {vpn} not mapped")
        return entry.physical_page

    def entry(self, vpn: int) -> PageTableEntry:
        entry = self._entries.get(vpn)
        if entry is None:
            raise PageFault(f"virtual page {vpn} not mapped")
        return entry

    def mapped_pages(self) -> list[tuple[int, PageTableEntry]]:
        """All live (vpn, entry) pairs, ordered by vpn."""
        return sorted(
            ((vpn, e) for vpn, e in self._entries.items() if e.present),
        )

    def mark_dirty(self, vpn: int) -> None:
        self.entry(vpn).dirty = True

    def clear_dirty(self, vpn: int) -> None:
        self.entry(vpn).dirty = False

    def __len__(self) -> int:
        return sum(1 for _, e in self._entries.items() if e.present)
