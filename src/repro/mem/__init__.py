"""Paged physical memory substrate for the software memory scrubber.

Models the non-ECC DRAM of a commodity SoC: a flat array of physical pages,
a kernel page table mapping virtual pages onto them, and an access tracker
recording per-page read/write recency (the input to the scrubber's LRU and
predicted-access policies).
"""

from repro.mem.physical import PhysicalMemory
from repro.mem.pagetable import PageTable, PageTableEntry
from repro.mem.tracker import AccessTracker
from repro.mem.checksums import ChecksumStore

__all__ = ["PhysicalMemory", "PageTable", "PageTableEntry", "AccessTracker",
           "ChecksumStore"]
