"""Per-page access tracking: recency and history.

Feeds the scrubber's scheduling policies: least-recently-used ordering
("pages [that] have been in memory the longest and are thus more likely to
contain an error") and the access predictor ("using program traces to
predict which pages will be accessed next", sect. 4.1).
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque


class AccessTracker:
    """Records page accesses and answers recency/prediction queries."""

    def __init__(self, history_limit: int = 4096) -> None:
        self.last_access: dict[int, float] = {}
        self.last_scrub: dict[int, float] = {}
        self.access_counts: Counter[int] = Counter()
        self.history: deque[int] = deque(maxlen=history_limit)
        self._transitions: dict[int, Counter[int]] = defaultdict(Counter)
        self._previous: int | None = None

    def record_access(self, page: int, t: float) -> None:
        """Record a read or write of ``page`` at time ``t``."""
        self.last_access[page] = t
        self.access_counts[page] += 1
        self.history.append(page)
        if self._previous is not None and self._previous != page:
            self._transitions[self._previous][page] += 1
        self._previous = page

    def record_scrub(self, page: int, t: float) -> None:
        """Record that the scrubber verified ``page`` at time ``t``."""
        self.last_scrub[page] = t

    def lru_order(self, pages: list[int]) -> list[int]:
        """``pages`` sorted least-recently-*scrubbed-or-accessed* first.

        A page neither accessed nor scrubbed recently has been sitting in
        DRAM accumulating exposure — scrub it first.
        """
        def staleness_key(page: int) -> float:
            return max(
                self.last_access.get(page, float("-inf")),
                self.last_scrub.get(page, float("-inf")),
            )

        return sorted(pages, key=staleness_key)

    def predicted_next(self, limit: int) -> list[int]:
        """Pages most likely to be touched next, best first.

        First-order Markov prediction from the current page's observed
        transitions, backed off to global access frequency.
        """
        ranked: list[int] = []
        seen: set[int] = set()
        if self._previous is not None:
            for page, _count in self._transitions[self._previous].most_common():
                if page not in seen:
                    ranked.append(page)
                    seen.add(page)
                if len(ranked) >= limit:
                    return ranked
        for page, _count in self.access_counts.most_common():
            if page not in seen:
                ranked.append(page)
                seen.add(page)
            if len(ranked) >= limit:
                break
        return ranked
