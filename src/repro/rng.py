"""Seeded random-number plumbing.

All stochastic components in the library draw their randomness from a
:class:`numpy.random.Generator` passed in explicitly, so that campaigns,
missions and tests are reproducible bit-for-bit under a fixed seed.  This
module centralises construction and forking of generators.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5EED


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy`` Generator.

    Accepts ``None`` (fresh default seed), an integer seed, or an existing
    generator (returned unchanged), so components can uniformly take a
    ``seed`` argument of any of those kinds.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def fork(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Uses the ``spawn`` API so children are statistically independent of the
    parent and of each other.
    """
    if n < 0:
        raise ValueError(f"cannot fork a negative number of generators: {n}")
    return list(rng.spawn(n))
