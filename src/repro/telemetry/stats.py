"""Statistics helpers for telemetry analysis."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length series.

    This is the statistic behind the paper's headline Figure 1 number:
    "the correlation between CPU usage and current draw was 99.9%".
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ConfigError(f"shape mismatch: {x.shape} vs {y.shape}")
    if len(x) < 2:
        raise ConfigError("need at least two samples for a correlation")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)
