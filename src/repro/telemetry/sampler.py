"""Sampling a board under a stress schedule into a telemetry trace."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.board import Board, TelemetrySample
from repro.workloads.stress import StressSchedule


@dataclass
class SampledTrace:
    """A dense telemetry recording.

    Attributes:
        samples: board samples, oldest first.
    """

    samples: list[TelemetrySample]

    @property
    def t(self) -> np.ndarray:
        return np.array([s.t for s in self.samples])

    @property
    def current_a(self) -> np.ndarray:
        return np.array([s.current_a for s in self.samples])

    @property
    def cpu_util(self) -> np.ndarray:
        return np.array([s.cpu_util for s in self.samples])

    @property
    def mem_fraction(self) -> np.ndarray:
        return np.array([s.mem_fraction for s in self.samples])

    def feature_matrix(self) -> np.ndarray:
        """(n, d) software-feature matrix (no current)."""
        return np.stack([s.features() for s in self.samples])

    def joint_matrix(self) -> np.ndarray:
        """(n, d+1) features with measured current appended."""
        return np.column_stack([self.feature_matrix(), self.current_a])


def sample_fleet_tick(
    boards: list[Board],
    schedules: list[StressSchedule],
    t: float,
) -> list[TelemetrySample]:
    """Sample every board in a fleet at the same instant ``t``.

    Boards run their own schedules (typically the same workload with
    per-board RNG seeds), so the tick is one row per board — the shape
    the fleet scorer consumes.
    """
    return [
        board.sample(
            t,
            core_utils=schedule.core_utilizations(t),
            mem_fraction=schedule.memory_fraction(t),
            mem_bandwidth=schedule.memory_bandwidth_fraction(t),
        )
        for board, schedule in zip(boards, schedules)
    ]


def sample_schedule(
    board: Board,
    schedule: StressSchedule,
    duration_s: float,
    rate_hz: float = 10.0,
    t_start: float = 0.0,
) -> SampledTrace:
    """Run ``schedule`` on ``board`` and sample telemetry at ``rate_hz``."""
    samples = []
    n = int(duration_s * rate_hz)
    for i in range(n):
        t = t_start + i / rate_hz
        samples.append(
            board.sample(
                t,
                core_utils=schedule.core_utilizations(t),
                mem_fraction=schedule.memory_fraction(t),
                mem_bandwidth=schedule.memory_bandwidth_fraction(t),
            )
        )
    return SampledTrace(samples=samples)
