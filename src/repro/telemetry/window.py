"""Moving-window state for online detection.

The paper's daemon "normalize[s] these current spikes by having the
detection algorithm match against a moving window of the last 30 seconds of
data" (sect. 3.1).  :class:`MovingWindow` maintains that window and provides
the normalized view the detector scores.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError


class MovingWindow:
    """Fixed-duration sliding window over feature rows.

    Attributes:
        duration_s: window length (the paper uses 30 s).
    """

    def __init__(self, duration_s: float = 30.0) -> None:
        if duration_s <= 0:
            raise ConfigError(f"window duration must be positive: {duration_s}")
        self.duration_s = duration_s
        self._rows: deque[tuple[float, np.ndarray]] = deque()

    def push(self, t: float, row: np.ndarray) -> None:
        """Add a sample and evict everything older than the window."""
        self._rows.append((t, np.asarray(row, dtype=float)))
        cutoff = t - self.duration_s
        while self._rows and self._rows[0][0] < cutoff:
            self._rows.popleft()

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def full(self) -> bool:
        """Whether the window spans (nearly) its whole duration."""
        if len(self._rows) < 2:
            return False
        return (self._rows[-1][0] - self._rows[0][0]) >= 0.9 * self.duration_s

    def matrix(self) -> np.ndarray:
        """All rows as an (n, d) matrix (oldest first)."""
        if not self._rows:
            return np.empty((0, 0))
        return np.stack([row for _, row in self._rows])

    def median_row(self) -> np.ndarray:
        """Per-dimension median over the window (spike-robust center)."""
        return np.median(self.matrix(), axis=0)

    def normalized_latest(self) -> np.ndarray:
        """Latest row minus the window median.

        Subtracting the windowed median cancels slow drift and makes brief
        DVFS spikes stand out less than sustained shifts — the paper's
        spike-normalization idea.
        """
        matrix = self.matrix()
        return matrix[-1] - np.median(matrix, axis=0)
