"""Telemetry: sampling, moving windows and statistics over board metrics."""

from repro.telemetry.series import TimeSeries
from repro.telemetry.window import MovingWindow
from repro.telemetry.sampler import sample_schedule, SampledTrace
from repro.telemetry.stats import pearson_correlation

__all__ = [
    "TimeSeries", "MovingWindow", "sample_schedule", "SampledTrace",
    "pearson_correlation",
]
