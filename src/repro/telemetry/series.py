"""Time-series container for telemetry channels."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class TimeSeries:
    """An append-only (timestamp, value) series with numpy export."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ConfigError(
                f"{self.name}: non-monotonic timestamp {t} after {self._t[-1]}"
            )
        self._t.append(t)
        self._v.append(value)

    @property
    def t(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def __len__(self) -> int:
        return len(self._t)

    def window(self, t_start: float, t_end: float) -> np.ndarray:
        """Values with timestamps in [t_start, t_end)."""
        t = self.t
        mask = (t >= t_start) & (t < t_end)
        return self.values[mask]

    def resample_last(self, t_grid: np.ndarray) -> np.ndarray:
        """Zero-order-hold resample onto ``t_grid``."""
        if len(self) == 0:
            raise ConfigError(f"{self.name}: cannot resample an empty series")
        idx = np.searchsorted(self.t, t_grid, side="right") - 1
        idx = np.clip(idx, 0, len(self) - 1)
        return self.values[idx]
