"""Fault-injection campaigns on the machine emulator (experiment E9).

Faults are injected between instructions, QEMU-style: pause at a random
dynamic step, flip one bit of a register or a data word, resume, classify.
The cache plugin classifies memory faults as cache-resident or DRAM at
injection time — the paper's monitor-interface extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.model import FaultTarget
from repro.faults.outcomes import FaultOutcome, OutcomeCounts
from repro.machine.asm import Program
from repro.machine.cache import CachePlugin
from repro.machine.cpu import Machine, RunOutcome
from repro.machine.gdbport import GdbPort
from repro.machine.isa import MachInstr, N_REGISTERS
from repro.machine.programs import RESULT_ADDR, load_program
from repro.rng import fork, make_rng


@dataclass
class MachineCampaign:
    """Configuration for a machine-level campaign.

    Attributes:
        program_name: registered workload.
        n_trials: faults to inject.
        target: REGISTER, MEMORY (DRAM) or CACHE.
        fuel_factor: hang budget as a multiple of the golden step count.
    """

    program_name: str
    n_trials: int = 200
    target: FaultTarget = FaultTarget.REGISTER
    fuel_factor: int = 50


@dataclass
class MachineTrial:
    """One machine fault trial.

    Attributes:
        step: dynamic step of injection.
        location: register index or memory address.
        bit: flipped bit.
        outcome: classification vs the golden run.
        in_cache: for memory faults, whether the word was cache-resident.
    """

    step: int
    location: int
    bit: int
    outcome: FaultOutcome
    in_cache: bool | None = None


@dataclass
class MachineCampaignResult:
    """Aggregated machine campaign outcome."""

    program_name: str
    golden_result: int
    golden_steps: int
    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    trials: list[MachineTrial] = field(default_factory=list)


class _OneShotInjector:
    """Step hook flipping one bit at one dynamic step."""

    def __init__(
        self,
        target: FaultTarget,
        step: int,
        rng: np.random.Generator,
    ) -> None:
        self.target = target
        self.step = step
        self.rng = rng
        self.fired = False
        self.location = -1
        self.bit = -1
        self.in_cache: bool | None = None

    def __call__(self, machine: Machine, instr: MachInstr, step: int) -> None:
        if self.fired or step < self.step:
            return
        gdb = GdbPort(machine)
        if self.target is FaultTarget.REGISTER:
            self.location = int(self.rng.integers(N_REGISTERS))
            self.bit = int(self.rng.integers(64))
            gdb.flip_register_bit(self.location, self.bit)
            self.fired = True
            return
        # Memory-class fault: choose among words the program has touched
        # (plus its static data), then classify via the cache plugin.
        words = sorted(machine.state.memory)
        if not words:
            return
        cache = machine.cache
        if self.target is FaultTarget.CACHE:
            candidates = [
                a for a in words if cache is not None and cache.resident(a)
            ]
        else:
            candidates = [
                a for a in words if cache is None or not cache.resident(a)
            ]
        if not candidates:
            return  # wait for a step where the target class is non-empty
        self.location = int(candidates[int(self.rng.integers(len(candidates)))])
        self.bit = int(self.rng.integers(64))
        gdb.flip_memory_bit(self.location, self.bit)
        self.in_cache = cache.resident(self.location) if cache else None
        self.fired = True


def _golden(program: Program, fuel: int) -> tuple[int, int, int]:
    machine = Machine(program, cache=CachePlugin())
    outcome = machine.run(fuel=fuel)
    if outcome is not RunOutcome.HALTED:
        raise FaultInjectionError(
            f"golden machine run did not halt: {outcome.value} "
            f"({machine.trap_reason})"
        )
    return (
        machine.read_word(RESULT_ADDR),
        machine.state.steps,
        machine.state.cycles,
    )


def run_machine_campaign(
    campaign: MachineCampaign,
    seed: int | np.random.Generator | None = None,
) -> MachineCampaignResult:
    """Run a machine-level fault-injection campaign."""
    rng = make_rng(seed)
    program = load_program(campaign.program_name)
    golden_value, golden_steps, _ = _golden(program, fuel=5_000_000)
    result = MachineCampaignResult(
        program_name=campaign.program_name,
        golden_result=golden_value,
        golden_steps=golden_steps,
    )
    fuel = golden_steps * campaign.fuel_factor + 1_000

    for trial_rng in fork(rng, campaign.n_trials):
        step = int(trial_rng.integers(golden_steps))
        injector = _OneShotInjector(campaign.target, step, trial_rng)
        machine = Machine(
            load_program(campaign.program_name),
            cache=CachePlugin(),
            step_hook=injector,
        )
        outcome = machine.run(fuel=fuel)
        if not injector.fired:
            fault_outcome = FaultOutcome.BENIGN
        elif outcome is RunOutcome.TRAP:
            fault_outcome = FaultOutcome.CRASH
        elif outcome is RunOutcome.FUEL_EXHAUSTED:
            fault_outcome = FaultOutcome.HANG
        elif machine.read_word(RESULT_ADDR) == golden_value:
            fault_outcome = FaultOutcome.BENIGN
        else:
            fault_outcome = FaultOutcome.SDC
        result.counts.record(fault_outcome)
        result.trials.append(
            MachineTrial(
                step=step,
                location=injector.location,
                bit=injector.bit,
                outcome=fault_outcome,
                in_cache=injector.in_cache,
            )
        )
    return result
