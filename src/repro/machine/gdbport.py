"""GDB-stub-style programmatic access to a machine.

The paper's framework "uses GDB to modify register and memory contents in
the emulated system" (sect. 4.2).  This port exposes the same operations:
read/write registers and memory, flip individual bits, set breakpoints,
single-step, continue.
"""

from __future__ import annotations

from repro.errors import FaultInjectionError
from repro.machine.cpu import Machine, RunOutcome
from repro.machine.isa import MASK64, N_REGISTERS


class GdbPort:
    """Debugger-side handle on a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.breakpoints: set[int] = set()

    # -- state access -----------------------------------------------------------

    def read_register(self, index: int) -> int:
        self._check_reg(index)
        return self.machine.read_register(index)

    def write_register(self, index: int, value: int) -> None:
        self._check_reg(index)
        self.machine.write_register(index, value)

    def flip_register_bit(self, index: int, bit: int) -> int:
        """Flip one bit of a register; returns the new value."""
        self._check_reg(index)
        if not 0 <= bit < 64:
            raise FaultInjectionError(f"bit {bit} outside 64-bit register")
        value = self.machine.read_register(index) ^ (1 << bit)
        self.machine.write_register(index, value)
        return value & MASK64

    def read_memory(self, address: int) -> int:
        return self.machine.read_word(address)

    def write_memory(self, address: int, value: int) -> None:
        self.machine.write_word(address, value)

    def flip_memory_bit(self, address: int, bit: int) -> int:
        """Flip one bit of a memory word; returns the new value."""
        if not 0 <= bit < 64:
            raise FaultInjectionError(f"bit {bit} outside 64-bit word")
        value = self.machine.read_word(address) ^ (1 << bit)
        self.machine.write_word(address, value)
        return value

    # -- execution control ---------------------------------------------------------

    def set_breakpoint(self, pc: int) -> None:
        self.breakpoints.add(pc)

    def clear_breakpoint(self, pc: int) -> None:
        self.breakpoints.discard(pc)

    def step(self) -> None:
        self.machine.step()

    def cont(self, fuel: int = 1_000_000) -> RunOutcome | str:
        """Run until a breakpoint, halt, trap or fuel exhaustion.

        Returns "breakpoint" when stopped at one, else the RunOutcome.
        """
        steps = 0
        while steps < fuel:
            if self.machine.state.halted:
                return RunOutcome.HALTED
            if self.machine.state.pc in self.breakpoints and steps > 0:
                return "breakpoint"
            try:
                self.machine.step()
            except Exception as exc:  # noqa: BLE001 - surfaced as trap
                self.machine.trap_reason = str(exc)
                return RunOutcome.TRAP
            steps += 1
        return RunOutcome.FUEL_EXHAUSTED

    def _check_reg(self, index: int) -> None:
        if not 0 <= index < N_REGISTERS:
            raise FaultInjectionError(f"register r{index} out of range")
