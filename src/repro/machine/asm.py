"""Two-pass assembler for the machine ISA.

Source format::

    ; comments after semicolons
    .data 0x100 7 11 13      ; words written at byte address 0x100
    start:
        li   r1, 0
        li   r2, 10
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        st   r1, 0(r3)
        halt

Labels resolve to instruction indices; ``.data`` directives populate
initial memory.  Register ``r0`` is general purpose (not hardwired) but the
conventional zero register by usage.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.machine.isa import BRANCHES, JUMPS, MachInstr, Mnemonic, N_REGISTERS

_MEM_RE = re.compile(r"^(-?\w+)\((r\d+)\)$")


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: decoded instructions, pc = index.
        labels: label -> instruction index.
        data: initial memory image: byte address -> 64-bit word.
    """

    instructions: list[MachInstr] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)


def _parse_int(token: str, where: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"{where}: bad integer {token!r}") from None


def _parse_reg(token: str, where: str) -> int:
    token = token.strip()
    if not token.startswith("r"):
        raise AssemblerError(f"{where}: expected register, got {token!r}")
    index = _parse_int(token[1:], where)
    if not 0 <= index < N_REGISTERS:
        raise AssemblerError(f"{where}: register r{index} out of range")
    return index


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    program = Program()
    pending: list[tuple[int, str, list[str]]] = []  # (line no, mnem, args)

    # Pass 1: collect labels, data, and raw instructions.
    index = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".data"):
            parts = line.split()
            if len(parts) < 3:
                raise AssemblerError(f"line {line_no}: .data needs addr + words")
            base = _parse_int(parts[1], f"line {line_no}")
            for offset, word in enumerate(parts[2:]):
                program.data[base + 8 * offset] = _parse_int(
                    word, f"line {line_no}"
                )
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if label in program.labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label}")
            program.labels[label] = index
            line = line.strip()
        if not line:
            continue
        mnem, _, rest = line.partition(" ")
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []
        pending.append((line_no, mnem.lower(), args))
        index += 1

    # Pass 2: decode with labels resolved.
    for line_no, mnem_name, args in pending:
        where = f"line {line_no}"
        try:
            mnem = Mnemonic(mnem_name)
        except ValueError:
            raise AssemblerError(f"{where}: unknown mnemonic {mnem_name!r}") from None
        program.instructions.append(
            _decode(mnem, args, program.labels, where)
        )
    return program


def _resolve_target(token: str, labels: dict[str, int], where: str) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    return _parse_int(token, where)


def _decode(
    mnem: Mnemonic, args: list[str], labels: dict[str, int], where: str
) -> MachInstr:
    def need(n: int) -> None:
        if len(args) != n:
            raise AssemblerError(
                f"{where}: {mnem.value} takes {n} operands, got {len(args)}"
            )

    if mnem in (Mnemonic.HALT, Mnemonic.NOP):
        need(0)
        return MachInstr(mnem)
    if mnem is Mnemonic.LI:
        need(2)
        return MachInstr(mnem, rd=_parse_reg(args[0], where),
                         imm=_parse_int(args[1], where))
    if mnem is Mnemonic.ADDI:
        need(3)
        return MachInstr(
            mnem,
            rd=_parse_reg(args[0], where),
            rs1=_parse_reg(args[1], where),
            imm=_parse_int(args[2], where),
        )
    if mnem in (Mnemonic.LD, Mnemonic.ST):
        need(2)
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"{where}: expected offset(reg), got {args[1]!r}")
        return MachInstr(
            mnem,
            rd=_parse_reg(args[0], where),
            rs1=_parse_reg(m.group(2), where),
            imm=_parse_int(m.group(1), where),
        )
    if mnem in BRANCHES:
        need(3)
        return MachInstr(
            mnem,
            rs1=_parse_reg(args[0], where),
            rs2=_parse_reg(args[1], where),
            imm=_resolve_target(args[2], labels, where),
        )
    if mnem in JUMPS:
        need(1)
        return MachInstr(mnem, imm=_resolve_target(args[0], labels, where))
    if mnem is Mnemonic.JR:
        need(1)
        return MachInstr(mnem, rs1=_parse_reg(args[0], where))
    # Three-register ALU ops.
    need(3)
    return MachInstr(
        mnem,
        rd=_parse_reg(args[0], where),
        rs1=_parse_reg(args[1], where),
        rs2=_parse_reg(args[2], where),
    )
