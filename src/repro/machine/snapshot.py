"""VM snapshot / restore (QEMU's savevm/loadvm analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import Machine, MachineState


@dataclass(frozen=True)
class Snapshot:
    """An immutable copy of machine state at a point in time."""

    registers: tuple[int, ...]
    pc: int
    memory: tuple[tuple[int, int], ...]
    halted: bool
    steps: int
    cycles: int


def take_snapshot(machine: Machine) -> Snapshot:
    """Capture the machine's architectural state."""
    s = machine.state
    return Snapshot(
        registers=tuple(s.registers),
        pc=s.pc,
        memory=tuple(sorted(s.memory.items())),
        halted=s.halted,
        steps=s.steps,
        cycles=s.cycles,
    )


def restore_snapshot(machine: Machine, snapshot: Snapshot) -> None:
    """Restore state; the cache model is flushed (residency is unknown)."""
    machine.state = MachineState(
        registers=list(snapshot.registers),
        pc=snapshot.pc,
        memory=dict(snapshot.memory),
        halted=snapshot.halted,
        steps=snapshot.steps,
        cycles=snapshot.cycles,
    )
    if machine.cache is not None:
        machine.cache.flush()
