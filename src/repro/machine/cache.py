"""Cache-model plugin (the QEMU TCG cache plugin stand-in).

"To model a cache, we use QEMU's cache plugin, which instruments memory
accesses and records locations that would be stored in a cache ... to
allow QEMU's cache plugin to return addresses that are located in cache or
in memory" (sect. 4.2).  The plugin observes every data access the CPU
makes and maintains a set-associative LRU residency model; it never holds
data — it answers *where a fault would land*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the modelled data cache.

    Defaults approximate a Cortex-A53 L1D: 32 KiB, 4-way, 64-byte lines.
    """

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ConfigError("cache size must divide into ways x lines")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


class CachePlugin:
    """Set-associative LRU residency tracker.

    Attributes:
        hits / misses: access statistics.
    """

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        # Per-set ordered dict of resident line tags (LRU first).
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.n_sets, line

    def on_access(self, address: int) -> bool:
        """Record one access; returns True on hit."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
        return False

    def resident(self, address: int) -> bool:
        """Whether ``address`` is currently cache-resident."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def resident_addresses(self, addresses: list[int]) -> list[int]:
        """Subset of ``addresses`` currently in cache (the monitor query)."""
        return [a for a in addresses if self.resident(a)]

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def flush(self) -> None:
        """Drop all residency state (e.g. after a snapshot restore)."""
        for ways in self._sets:
            ways.clear()
        self.hits = 0
        self.misses = 0
