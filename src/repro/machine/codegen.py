"""IR -> machine code generation.

Lowers integer IR functions onto the emulated RISC machine, completing the
compiler pipeline between the library's two execution substrates: the same
program can run under the IR interpreter (where the DMR/quantize passes
operate) and on the machine emulator (where QEMU-style cache/memory faults
are injected), and campaigns on either can be cross-validated.

Strategy: a simple spill-everything allocator.  Every SSA value gets a
64-bit stack slot; each IR instruction loads its operands into scratch
registers, computes, and stores the result back.  Phi nodes are resolved as
parallel copies on each incoming edge (staged through shadow slots so
swaps are safe).  The IR heap is a bump allocator above the spill area;
IR pointers are machine byte addresses, so ``gep`` scales its cell offset
by 8.

Scope: integer and pointer IR only — the machine has no FPU.  ``call`` is
not lowered (the workload suite's programs are single-function).  Floating
point functions are rejected with :class:`UnsupportedIRError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.values import Argument, Constant, Value
from repro.machine.asm import Program
from repro.machine.isa import MASK64, MachInstr, Mnemonic

#: Scratch registers used by the lowering (r0 is kept zero by convention).
_SA, _SB, _SC, _SD = 1, 2, 3, 4

#: Stack slots start here; the IR heap begins right after the last slot.
_FRAME_BASE = 0x100

#: Where the lowered function stores its return value.
RESULT_SLOT = 0x8
#: Slot holding the bump-allocator's next free heap address.
_HEAP_PTR_SLOT = 0x10


class UnsupportedIRError(MachineError):
    """The IR construct has no machine lowering (floats, calls)."""


@dataclass
class _Emitter:
    instructions: list[MachInstr] = field(default_factory=list)
    #: label -> instruction index (blocks + synthesized edge blocks)
    labels: dict[str, int] = field(default_factory=dict)
    #: (instruction index, label) pairs needing target resolution
    fixups: list[tuple[int, str]] = field(default_factory=list)

    def here(self, label: str) -> None:
        self.labels[label] = len(self.instructions)

    def emit(self, instr: MachInstr) -> None:
        self.instructions.append(instr)

    def emit_branch(self, mnemonic: Mnemonic, label: str,
                    rs1: int = 0, rs2: int = 0) -> None:
        self.fixups.append((len(self.instructions), label))
        self.emit(MachInstr(mnemonic, rs1=rs1, rs2=rs2, imm=-1))

    def resolve(self) -> None:
        for index, label in self.fixups:
            old = self.instructions[index]
            self.instructions[index] = MachInstr(
                old.mnemonic, rd=old.rd, rs1=old.rs1, rs2=old.rs2,
                imm=self.labels[label],
            )


class CodeGenerator:
    """Lowers one IR function to a machine :class:`Program`."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.emitter = _Emitter()
        self.slots: dict[str, int] = {}
        self._next_slot = _FRAME_BASE
        self._check_supported()

    # -- validation ---------------------------------------------------------

    def _check_supported(self) -> None:
        if self.func.return_type.is_float:
            raise UnsupportedIRError(
                f"@{self.func.name}: machine has no FPU"
            )
        for arg in self.func.args:
            if arg.type.is_float:
                raise UnsupportedIRError(
                    f"@{self.func.name}: float argument %{arg.name}"
                )
        for instr in self.func.instructions():
            if instr.type.is_float or any(
                op.type.is_float for op in instr.operands
            ):
                raise UnsupportedIRError(
                    f"@{self.func.name}: float instruction "
                    f"{instr.opcode.value}"
                )
            if instr.opcode is Opcode.CALL:
                raise UnsupportedIRError(
                    f"@{self.func.name}: call lowering not supported"
                )

    # -- slots ---------------------------------------------------------------

    def _slot(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = self._next_slot
            self._next_slot += 8
        return self.slots[name]

    def _assign_all_slots(self) -> None:
        for arg in self.func.args:
            self._slot(arg.name)
        for instr in self.func.instructions():
            if instr.defines_value:
                self._slot(instr.name)
                if instr.is_phi:
                    self._slot(f"{instr.name}.shadow")

    # -- value access -----------------------------------------------------------

    def _load_value(self, value: Value, register: int) -> None:
        """Materialize ``value`` into ``register``."""
        e = self.emitter
        if isinstance(value, Constant):
            imm = int(value.value) & MASK64
            # The assembler's LI takes arbitrary Python ints; keep signed.
            e.emit(MachInstr(Mnemonic.LI, rd=register,
                             imm=int(value.value)))
            return
        if isinstance(value, (Argument, Instruction)):
            e.emit(MachInstr(Mnemonic.LD, rd=register, rs1=0,
                             imm=self._slot(value.name)))
            return
        raise MachineError(f"cannot load value {value!r}")

    def _store_result(self, name: str, register: int) -> None:
        self.emitter.emit(
            MachInstr(Mnemonic.ST, rd=register, rs1=0, imm=self._slot(name))
        )

    # -- lowering -------------------------------------------------------------------

    _ALU = {
        Opcode.ADD: Mnemonic.ADD, Opcode.SUB: Mnemonic.SUB,
        Opcode.MUL: Mnemonic.MUL, Opcode.SDIV: Mnemonic.DIV,
        Opcode.SREM: Mnemonic.REM, Opcode.AND: Mnemonic.AND,
        Opcode.OR: Mnemonic.OR, Opcode.XOR: Mnemonic.XOR,
        Opcode.SHL: Mnemonic.SHL, Opcode.LSHR: Mnemonic.SHR,
        Opcode.ASHR: Mnemonic.SAR,
    }

    def generate(self) -> Program:
        """Lower the function; arguments are read from fixed slots.

        Calling convention: the loader stores argument i at slot
        ``_FRAME_BASE + 8*i`` (the slots of the formals, which are assigned
        first); the return value lands in :data:`RESULT_SLOT`.
        """
        self._assign_all_slots()
        e = self.emitter
        # r0 = 0 throughout.
        e.emit(MachInstr(Mnemonic.LI, rd=0, imm=0))
        # Initialize the heap pointer past the spill area.
        e.emit(MachInstr(Mnemonic.LI, rd=_SA, imm=self._next_slot))
        e.emit(MachInstr(Mnemonic.ST, rd=_SA, rs1=0, imm=_HEAP_PTR_SLOT))
        e.emit_branch(Mnemonic.JMP, f"bb.{self.func.entry.name}")

        for block in self.func.blocks:
            self._lower_block(block)
        e.resolve()

        program = Program(
            instructions=e.instructions,
            labels=dict(e.labels),
            data={},
        )
        return program

    def _lower_block(self, block: BasicBlock) -> None:
        e = self.emitter
        e.here(f"bb.{block.name}")
        # Phi landing: copy shadow slots (written by predecessors) into the
        # real phi slots, as a parallel-copy second half.
        for phi in block.phis:
            e.emit(MachInstr(Mnemonic.LD, rd=_SA, rs1=0,
                             imm=self._slot(f"{phi.name}.shadow")))
            e.emit(MachInstr(Mnemonic.ST, rd=_SA, rs1=0,
                             imm=self._slot(phi.name)))
        for instr in block.body:
            self._lower_instruction(block, instr)

    def _stage_phis(self, edge_source: BasicBlock,
                    target: BasicBlock) -> None:
        """First half of the parallel copy: incoming values -> shadows."""
        e = self.emitter
        for phi in target.phis:
            for value, pred in phi.phi_incoming():
                if pred is edge_source:
                    self._load_value(value, _SA)
                    e.emit(MachInstr(
                        Mnemonic.ST, rd=_SA, rs1=0,
                        imm=self._slot(f"{phi.name}.shadow"),
                    ))

    def _lower_instruction(self, block: BasicBlock,
                           instr: Instruction) -> None:
        e = self.emitter
        op = instr.opcode

        if op in self._ALU:
            self._load_value(instr.operands[0], _SA)
            self._load_value(instr.operands[1], _SB)
            e.emit(MachInstr(self._ALU[op], rd=_SC, rs1=_SA, rs2=_SB))
            self._mask_to_width(instr, _SC)
            self._store_result(instr.name, _SC)
            return
        if op is Opcode.ICMP:
            self._lower_icmp(instr)
            return
        if op in (Opcode.ZEXT, Opcode.TRUNC):
            self._load_value(instr.operands[0], _SC)
            if op is Opcode.ZEXT:
                # Clear bits above the source width.
                src_bits = instr.operands[0].type.bits
                if src_bits < 64:
                    e.emit(MachInstr(Mnemonic.LI, rd=_SB,
                                     imm=(1 << src_bits) - 1))
                    e.emit(MachInstr(Mnemonic.AND, rd=_SC, rs1=_SC,
                                     rs2=_SB))
            self._mask_to_width(instr, _SC)
            self._store_result(instr.name, _SC)
            return
        if op is Opcode.ALLOC:
            # base = heap_ptr; heap_ptr += count * 8
            self._load_value(instr.operands[0], _SA)
            e.emit(MachInstr(Mnemonic.LI, rd=_SB, imm=8))
            e.emit(MachInstr(Mnemonic.MUL, rd=_SA, rs1=_SA, rs2=_SB))
            e.emit(MachInstr(Mnemonic.LD, rd=_SC, rs1=0,
                             imm=_HEAP_PTR_SLOT))
            e.emit(MachInstr(Mnemonic.ADD, rd=_SD, rs1=_SC, rs2=_SA))
            e.emit(MachInstr(Mnemonic.ST, rd=_SD, rs1=0,
                             imm=_HEAP_PTR_SLOT))
            self._store_result(instr.name, _SC)
            return
        if op is Opcode.GEP:
            self._load_value(instr.operands[0], _SA)
            self._load_value(instr.operands[1], _SB)
            e.emit(MachInstr(Mnemonic.LI, rd=_SC, imm=8))
            e.emit(MachInstr(Mnemonic.MUL, rd=_SB, rs1=_SB, rs2=_SC))
            e.emit(MachInstr(Mnemonic.ADD, rd=_SC, rs1=_SA, rs2=_SB))
            self._store_result(instr.name, _SC)
            return
        if op is Opcode.LOAD:
            self._load_value(instr.operands[0], _SA)
            e.emit(MachInstr(Mnemonic.LD, rd=_SC, rs1=_SA, imm=0))
            self._mask_to_width(instr, _SC)
            self._store_result(instr.name, _SC)
            return
        if op is Opcode.STORE:
            self._load_value(instr.operands[0], _SA)
            self._load_value(instr.operands[1], _SB)
            e.emit(MachInstr(Mnemonic.ST, rd=_SA, rs1=_SB, imm=0))
            return
        if op is Opcode.SELECT:
            self._lower_select(block, instr)
            return
        if op is Opcode.BR:
            then_b, else_b = instr.block_targets
            self._load_value(instr.operands[0], _SA)
            # cond != 0 -> then.  Stage phis per edge via split paths.
            edge_then = f"edge.{block.name}.{then_b.name}.{id(instr)}"
            edge_else = f"edge.{block.name}.{else_b.name}.{id(instr)}"
            e.emit_branch(Mnemonic.BNE, edge_then, rs1=_SA, rs2=0)
            e.emit_branch(Mnemonic.JMP, edge_else)
            e.here(edge_then)
            self._stage_phis(block, then_b)
            e.emit_branch(Mnemonic.JMP, f"bb.{then_b.name}")
            e.here(edge_else)
            self._stage_phis(block, else_b)
            e.emit_branch(Mnemonic.JMP, f"bb.{else_b.name}")
            return
        if op is Opcode.JMP:
            target = instr.block_targets[0]
            self._stage_phis(block, target)
            e.emit_branch(Mnemonic.JMP, f"bb.{target.name}")
            return
        if op is Opcode.RET:
            if instr.operands:
                self._load_value(instr.operands[0], _SA)
                e.emit(MachInstr(Mnemonic.ST, rd=_SA, rs1=0,
                                 imm=RESULT_SLOT))
            e.emit(MachInstr(Mnemonic.HALT))
            return
        if op is Opcode.TRAP:
            # Lower to a deliberate fault the emulator reports as a trap.
            e.emit(MachInstr(Mnemonic.LI, rd=_SA, imm=0))
            e.emit(MachInstr(Mnemonic.DIV, rd=_SA, rs1=_SA, rs2=_SA))
            return
        raise UnsupportedIRError(
            f"@{self.func.name}: no lowering for {op.value}"
        )

    def _mask_to_width(self, instr: Instruction, register: int) -> None:
        """Sign-extend a narrow integer result to the 64-bit register."""
        bits = instr.type.bits
        if instr.type.is_pointer or bits >= 64:
            return
        e = self.emitter
        shift = 64 - bits
        e.emit(MachInstr(Mnemonic.LI, rd=_SD, imm=shift))
        e.emit(MachInstr(Mnemonic.SHL, rd=register, rs1=register, rs2=_SD))
        e.emit(MachInstr(Mnemonic.SAR, rd=register, rs1=register, rs2=_SD))

    def _lower_icmp(self, instr: Instruction) -> None:
        e = self.emitter
        self._load_value(instr.operands[0], _SA)
        self._load_value(instr.operands[1], _SB)
        pred = instr.predicate
        assert pred is not None
        swap = pred in (Predicate.GT, Predicate.LE)
        a, b = (_SB, _SA) if swap else (_SA, _SB)
        true_label = f"icmp.true.{id(instr)}"
        done_label = f"icmp.done.{id(instr)}"
        branch = {
            Predicate.EQ: Mnemonic.BEQ,
            Predicate.NE: Mnemonic.BNE,
            Predicate.LT: Mnemonic.BLT,
            Predicate.GT: Mnemonic.BLT,   # swapped operands
            Predicate.GE: Mnemonic.BGE,
            Predicate.LE: Mnemonic.BGE,   # swapped operands
        }[pred]
        e.emit_branch(branch, true_label, rs1=a, rs2=b)
        e.emit(MachInstr(Mnemonic.LI, rd=_SC, imm=0))
        e.emit_branch(Mnemonic.JMP, done_label)
        e.here(true_label)
        e.emit(MachInstr(Mnemonic.LI, rd=_SC, imm=1))
        e.here(done_label)
        self._store_result(instr.name, _SC)

    def _lower_select(self, block: BasicBlock, instr: Instruction) -> None:
        e = self.emitter
        take_a = f"sel.a.{id(instr)}"
        done = f"sel.done.{id(instr)}"
        self._load_value(instr.operands[0], _SA)
        e.emit_branch(Mnemonic.BNE, take_a, rs1=_SA, rs2=0)
        self._load_value(instr.operands[2], _SC)
        e.emit_branch(Mnemonic.JMP, done)
        e.here(take_a)
        self._load_value(instr.operands[1], _SC)
        e.here(done)
        self._store_result(instr.name, _SC)


def compile_function(func: Function) -> tuple[Program, dict[str, int]]:
    """Compile an IR function; returns (program, argument slot map)."""
    generator = CodeGenerator(func)
    program = generator.generate()
    arg_slots = {
        arg.name: generator.slots[arg.name] for arg in func.args
    }
    return program, arg_slots


def run_compiled(
    func: Function,
    args: list[int],
    fuel: int = 2_000_000,
    memory_bytes: int = 1 << 22,
):
    """Compile and execute; returns (machine RunOutcome, result value).

    The result is read from :data:`RESULT_SLOT` and sign-extended per the
    function's return type.
    """
    from repro.machine.cpu import Machine

    program, arg_slots = compile_function(func)
    machine = Machine(program, memory_bytes=memory_bytes)
    for formal, actual in zip(func.args, args):
        machine.write_word(arg_slots[formal.name], int(actual) & MASK64)
    outcome = machine.run(fuel=fuel)
    raw = machine.read_word(RESULT_SLOT)
    if func.return_type.is_int:
        value = func.return_type.wrap(raw)
    else:
        value = raw
    return outcome, value
