"""Assembly workloads for the machine emulator.

Each program leaves its result in a known memory word (``RESULT_ADDR``) so
campaigns can compare against a golden run.  The mix mirrors the IR suite:
arithmetic loop, memory-heavy sort, and a table-driven checksum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.asm import Program, assemble

#: All programs store their final result here.
RESULT_ADDR = 0x8


_SUM_LOOP = """
; sum of i*i for i in 1..n  (n in r1)
        li   r1, 200
        li   r2, 0          ; acc
        li   r3, 1          ; i
        li   r0, 0
loop:
        mul  r4, r3, r3
        add  r2, r2, r4
        addi r3, r3, 1
        addi r5, r1, 1
        blt  r3, r5, loop
        li   r6, 0x8
        st   r2, 0(r6)
        halt
"""

_BUBBLE_SORT = """
; bubble-sort 16 words at 0x100, result = weighted sum
.data 0x100 92 17 45 3 88 64 21 50 7 99 31 76 12 83 40 58
        li   r1, 0x100      ; base
        li   r2, 16         ; n
        li   r0, 0
outer:
        li   r3, 0          ; swapped flag
        li   r4, 0          ; i
        addi r5, r2, -1     ; n-1
inner:
        bge  r4, r5, check
        mul  r6, r4, r0     ; r6 = 0 (offset calc below)
        li   r6, 8
        mul  r6, r6, r4     ; byte offset of a[i]
        add  r7, r1, r6
        ld   r8, 0(r7)      ; a[i]
        ld   r9, 8(r7)      ; a[i+1]
        bge  r9, r8, noswap ; already ordered
        st   r9, 0(r7)
        st   r8, 8(r7)
        li   r3, 1
noswap:
        addi r4, r4, 1
        jmp  inner
check:
        bne  r3, r0, outer
; weighted sum: sum a[i] * (i+1)
        li   r4, 0
        li   r10, 0
sumloop:
        bge  r4, r2, done
        li   r6, 8
        mul  r6, r6, r4
        add  r7, r1, r6
        ld   r8, 0(r7)
        addi r9, r4, 1
        mul  r8, r8, r9
        add  r10, r10, r8
        addi r4, r4, 1
        jmp  sumloop
done:
        li   r6, 0x8
        st   r10, 0(r6)
        halt
"""

_CHECKSUM = """
; LCG-fill 64 words at 0x200 then xor-multiply fold
        li   r1, 0x200
        li   r2, 64
        li   r3, 88172645463325252
        li   r4, 0          ; i
        li   r0, 0
fill:
        bge  r4, r2, foldinit
        li   r5, 6364136223846793005
        mul  r3, r3, r5
        li   r5, 1442695040888963407
        add  r3, r3, r5
        li   r6, 8
        mul  r6, r6, r4
        add  r7, r1, r6
        st   r3, 0(r7)
        addi r4, r4, 1
        jmp  fill
foldinit:
        li   r4, 0
        li   r8, 0          ; acc
fold:
        bge  r4, r2, out
        li   r6, 8
        mul  r6, r6, r4
        add  r7, r1, r6
        ld   r9, 0(r7)
        xor  r8, r8, r9
        li   r10, 31
        mul  r8, r8, r10
        addi r4, r4, 1
        jmp  fold
out:
        li   r6, 0x8
        st   r8, 0(r6)
        halt
"""


@dataclass(frozen=True)
class MachineProgramSpec:
    """A registered assembly workload.

    Attributes:
        name: identifier.
        source: assembly text.
        description: one-line summary.
        memory_heavy: whether the program's state lives mainly in DRAM.
    """

    name: str
    source: str
    description: str
    memory_heavy: bool


MACHINE_PROGRAMS: dict[str, MachineProgramSpec] = {
    spec.name: spec
    for spec in [
        MachineProgramSpec(
            "sum_squares", _SUM_LOOP, "sum of squares loop", False
        ),
        MachineProgramSpec(
            "bubble_sort", _BUBBLE_SORT, "bubble sort + weighted sum", True
        ),
        MachineProgramSpec(
            "mach_checksum", _CHECKSUM, "LCG fill + xor/multiply fold", True
        ),
    ]
}


def load_program(name: str) -> Program:
    """Assemble a registered workload."""
    return assemble(MACHINE_PROGRAMS[name].source)
