"""QEMU-monitor-style command interface.

The paper "extend[s] QEMU's monitor interface, which takes user input to do
complex tasks such as mounting devices or taking snapshots of the virtual
machine, to allow QEMU's cache plugin to return addresses that are located
in cache or in memory" (sect. 4.2).  This monitor exposes the same command
surface over the emulated machine, including the cache-residency query.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.cpu import Machine
from repro.machine.gdbport import GdbPort
from repro.machine.snapshot import Snapshot, restore_snapshot, take_snapshot


class Monitor:
    """Text-command console for a machine.

    Commands::

        info registers            register dump
        info cache                hit/miss statistics
        x <addr>                  read a memory word
        setreg <r> <value>        write a register
        setmem <addr> <value>     write a memory word
        flipreg <r> <bit>         flip one register bit
        flipmem <addr> <bit>      flip one memory-word bit
        cacheq <addr> [...]       which of the addresses are cache-resident
        savevm <name>             take a snapshot
        loadvm <name>             restore a snapshot
        watchdog arm <budget>     arm a step-budget watchdog
        watchdog kick [budget]    rearm the watchdog
        watchdog disarm           remove the watchdog
        watchdog status           remaining budget and bite count
        step [n]                  single-step n instructions
        where                     current pc and instruction
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.gdb = GdbPort(machine)
        self.snapshots: dict[str, Snapshot] = {}
        self.watchdog: "MachineWatchdog | None" = None
        self._base_hook = None

    def execute(self, command: str) -> str:
        """Run one command line and return its textual output."""
        parts = command.split()
        if not parts:
            return ""
        op = parts[0]
        handler = getattr(self, f"_cmd_{op}", None)
        if handler is None:
            raise MachineError(f"unknown monitor command {op!r}")
        return handler(parts[1:])

    # -- commands ----------------------------------------------------------------

    def _cmd_info(self, args: list[str]) -> str:
        if args == ["registers"]:
            regs = self.machine.state.registers
            lines = [
                f"r{i:<2d} = {value:#018x}" for i, value in enumerate(regs)
            ]
            lines.append(f"pc  = {self.machine.state.pc}")
            return "\n".join(lines)
        if args == ["cache"]:
            cache = self.machine.cache
            if cache is None:
                return "no cache plugin attached"
            return (
                f"hits={cache.hits} misses={cache.misses} "
                f"miss_rate={cache.miss_rate:.4f}"
            )
        raise MachineError(f"unknown info topic {args!r}")

    def _cmd_x(self, args: list[str]) -> str:
        address = int(args[0], 0)
        return f"{address:#x}: {self.gdb.read_memory(address):#018x}"

    def _cmd_setreg(self, args: list[str]) -> str:
        index, value = int(args[0]), int(args[1], 0)
        self.gdb.write_register(index, value)
        return f"r{index} <- {value:#x}"

    def _cmd_setmem(self, args: list[str]) -> str:
        address, value = int(args[0], 0), int(args[1], 0)
        self.gdb.write_memory(address, value)
        return f"mem[{address:#x}] <- {value:#x}"

    def _cmd_flipreg(self, args: list[str]) -> str:
        index, bit = int(args[0]), int(args[1])
        value = self.gdb.flip_register_bit(index, bit)
        return f"r{index} bit {bit} flipped -> {value:#x}"

    def _cmd_flipmem(self, args: list[str]) -> str:
        address, bit = int(args[0], 0), int(args[1])
        value = self.gdb.flip_memory_bit(address, bit)
        return f"mem[{address:#x}] bit {bit} flipped -> {value:#x}"

    def _cmd_cacheq(self, args: list[str]) -> str:
        cache = self.machine.cache
        if cache is None:
            raise MachineError("no cache plugin attached")
        addresses = [int(a, 0) for a in args]
        resident = cache.resident_addresses(addresses)
        lines = [
            f"{a:#x}: {'cache' if a in resident else 'memory'}"
            for a in addresses
        ]
        return "\n".join(lines)

    def _cmd_savevm(self, args: list[str]) -> str:
        name = args[0]
        self.snapshots[name] = take_snapshot(self.machine)
        return f"snapshot {name!r} saved at step {self.machine.state.steps}"

    def _cmd_loadvm(self, args: list[str]) -> str:
        name = args[0]
        if name not in self.snapshots:
            raise MachineError(f"no snapshot {name!r}")
        restore_snapshot(self.machine, self.snapshots[name])
        return f"snapshot {name!r} restored (pc={self.machine.state.pc})"

    def _cmd_watchdog(self, args: list[str]) -> str:
        # Imported here: repro.recover pulls in the machine package, so a
        # module-level import would tie monitor loading to import order.
        from repro.recover.watchdog import MachineWatchdog

        if not args:
            raise MachineError("usage: watchdog arm|kick|disarm|status ...")
        op = args[0]
        if op not in ("arm", "kick", "disarm", "status"):
            raise MachineError(f"unknown watchdog subcommand {op!r}")
        if op == "arm":
            budget = int(args[1])
            self.watchdog = MachineWatchdog(budget)
            self._base_hook = self.machine.step_hook
            self.machine.step_hook = self._chain_with_watchdog()
            return f"watchdog armed: budget={budget}"
        if self.watchdog is None:
            if op == "status":
                return "watchdog: disarmed"
            raise MachineError("watchdog is not armed")
        if op == "kick":
            budget = int(args[1]) if len(args) > 1 else None
            self.watchdog.kick(budget)
            return f"watchdog kicked: budget={self.watchdog.budget}"
        if op == "disarm":
            self.machine.step_hook = self._base_hook
            self.watchdog = None
            return "watchdog disarmed"
        return (
            f"watchdog: budget={self.watchdog.budget} "
            f"remaining={self.watchdog.remaining} "
            f"bites={self.watchdog.bites}"
        )

    def _chain_with_watchdog(self):
        base, dog = self._base_hook, self.watchdog
        if base is None:
            return dog

        def chained(machine, instr, step_index):
            base(machine, instr, step_index)
            dog(machine, instr, step_index)

        return chained

    def _cmd_step(self, args: list[str]) -> str:
        count = int(args[0]) if args else 1
        for _ in range(count):
            self.machine.step()
        return f"stepped {count}; pc={self.machine.state.pc}"

    def _cmd_where(self, args: list[str]) -> str:
        pc = self.machine.state.pc
        if 0 <= pc < len(self.machine.program.instructions):
            return f"pc={pc}: {self.machine.program.instructions[pc]}"
        return f"pc={pc}: <outside program>"
