"""Instruction-level machine emulator: the library's QEMU stand-in.

The paper's fault-injection framework (sect. 4.2) pauses a QEMU system
emulation between instructions, flips register/memory bits through a GDB
stub, and uses QEMU's TCG cache plugin to decide whether a memory fault
lands in a cache-resident line or in DRAM.  This package provides the same
facilities over a small 64-bit RISC machine:

- :mod:`repro.machine.isa` / :mod:`repro.machine.asm` — the instruction set
  and a two-pass assembler;
- :mod:`repro.machine.cpu` — the stepping emulator with cycle accounting
  and per-instruction hooks;
- :mod:`repro.machine.cache` — the cache-model plugin (residency tracking,
  like QEMU's cache TCG plugin);
- :mod:`repro.machine.monitor` — a QEMU-monitor-style command interface;
- :mod:`repro.machine.gdbport` — programmatic register/memory access and
  single-stepping (the GDB stub);
- :mod:`repro.machine.snapshot` — VM snapshot/restore;
- :mod:`repro.machine.inject` — fault-injection campaigns against machine
  programs, with cache/DRAM classification;
- :mod:`repro.machine.programs` — assembly workloads.
"""

from repro.machine.isa import Mnemonic, MachInstr, N_REGISTERS
from repro.machine.asm import assemble, Program
from repro.machine.cpu import Machine, MachineState, RunOutcome
from repro.machine.cache import CachePlugin, CacheConfig
from repro.machine.monitor import Monitor
from repro.machine.gdbport import GdbPort
from repro.machine.snapshot import Snapshot, take_snapshot, restore_snapshot
from repro.machine.inject import (
    MachineCampaign, MachineCampaignResult, run_machine_campaign,
)
from repro.machine.programs import MACHINE_PROGRAMS, load_program
from repro.machine.codegen import (
    CodeGenerator, UnsupportedIRError, compile_function, run_compiled,
)

__all__ = [
    "Mnemonic", "MachInstr", "N_REGISTERS",
    "assemble", "Program",
    "Machine", "MachineState", "RunOutcome",
    "CachePlugin", "CacheConfig",
    "Monitor", "GdbPort",
    "Snapshot", "take_snapshot", "restore_snapshot",
    "MachineCampaign", "MachineCampaignResult", "run_machine_campaign",
    "MACHINE_PROGRAMS", "load_program",
    "CodeGenerator", "UnsupportedIRError", "compile_function",
    "run_compiled",
]
