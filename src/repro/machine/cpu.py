"""The stepping machine emulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    InvalidInstruction,
    MachineHalted,
    MemoryFault,
    WatchdogTimeout,
)
from repro.machine.asm import Program
from repro.machine.cache import CachePlugin
from repro.machine.isa import (
    BRANCHES,
    CYCLE_COST,
    MASK64,
    LINK_REGISTER,
    MachInstr,
    Mnemonic,
    N_REGISTERS,
    WORD_BYTES,
    to_signed,
)


class RunOutcome(enum.Enum):
    """How a machine run ended."""

    HALTED = "halted"
    TRAP = "trap"
    FUEL_EXHAUSTED = "fuel"


@dataclass
class MachineState:
    """Snapshot-able architectural state."""

    registers: list[int] = field(
        default_factory=lambda: [0] * N_REGISTERS
    )
    pc: int = 0
    memory: dict[int, int] = field(default_factory=dict)  # word addr -> word
    halted: bool = False
    steps: int = 0
    cycles: int = 0


#: Hook called before each instruction: (machine, instruction, step index).
MachStepHook = Callable[["Machine", MachInstr, int], None]


class Machine:
    """Executes an assembled program with cycle accounting and hooks.

    Attributes:
        program: the loaded program.
        state: architectural state.
        cache: optional cache plugin observing data accesses.
        pc_trace: executed pc sequence (when tracing is enabled).
    """

    def __init__(
        self,
        program: Program,
        memory_bytes: int = 1 << 20,
        cache: CachePlugin | None = None,
        record_trace: bool = False,
        step_hook: MachStepHook | None = None,
    ) -> None:
        self.program = program
        self.memory_bytes = memory_bytes
        self.cache = cache
        self.record_trace = record_trace
        self.step_hook = step_hook
        self.state = MachineState()
        self.pc_trace: list[int] = []
        self.trap_reason = ""
        for address, word in program.data.items():
            self._store(address, word, observe=False)

    # -- memory -----------------------------------------------------------------

    def _check_address(self, address: int) -> None:
        if address % WORD_BYTES:
            raise MemoryFault(f"misaligned access at {address:#x}")
        if not 0 <= address < self.memory_bytes:
            raise MemoryFault(f"access beyond memory at {address:#x}")

    def _load(self, address: int) -> int:
        self._check_address(address)
        if self.cache is not None:
            self.cache.on_access(address)
        return self.state.memory.get(address, 0)

    def _store(self, address: int, value: int, observe: bool = True) -> None:
        self._check_address(address)
        if observe and self.cache is not None:
            self.cache.on_access(address)
        self.state.memory[address] = value & MASK64

    def read_word(self, address: int) -> int:
        """Debugger-path read (does not touch the cache model)."""
        self._check_address(address)
        return self.state.memory.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        """Debugger-path write (does not touch the cache model)."""
        self._check_address(address)
        self.state.memory[address] = value & MASK64

    # -- registers --------------------------------------------------------------

    def read_register(self, index: int) -> int:
        return self.state.registers[index]

    def write_register(self, index: int, value: int) -> None:
        self.state.registers[index] = value & MASK64

    # -- execution ----------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        state = self.state
        if state.halted:
            raise MachineHalted("machine is halted")
        if not 0 <= state.pc < len(self.program.instructions):
            raise MemoryFault(f"pc {state.pc} outside program")
        instr = self.program.instructions[state.pc]
        if self.step_hook is not None:
            self.step_hook(self, instr, state.steps)
        if self.record_trace:
            self.pc_trace.append(state.pc)
        state.steps += 1
        state.cycles += CYCLE_COST[instr.mnemonic]
        self._execute(instr)

    def _execute(self, instr: MachInstr) -> None:
        state = self.state
        regs = state.registers
        m = instr.mnemonic
        next_pc = state.pc + 1

        if m is Mnemonic.HALT:
            state.halted = True
            return
        if m is Mnemonic.NOP:
            pass
        elif m is Mnemonic.LI:
            regs[instr.rd] = instr.imm & MASK64
        elif m is Mnemonic.ADDI:
            regs[instr.rd] = (regs[instr.rs1] + instr.imm) & MASK64
        elif m is Mnemonic.LD:
            address = (regs[instr.rs1] + instr.imm) & MASK64
            regs[instr.rd] = self._load(address)
        elif m is Mnemonic.ST:
            address = (regs[instr.rs1] + instr.imm) & MASK64
            self._store(address, regs[instr.rd])
        elif m in BRANCHES:
            a = to_signed(regs[instr.rs1])
            b = to_signed(regs[instr.rs2])
            taken = {
                Mnemonic.BEQ: a == b,
                Mnemonic.BNE: a != b,
                Mnemonic.BLT: a < b,
                Mnemonic.BGE: a >= b,
            }[m]
            if taken:
                next_pc = instr.imm
        elif m is Mnemonic.JMP:
            next_pc = instr.imm
        elif m is Mnemonic.JAL:
            regs[LINK_REGISTER] = next_pc & MASK64
            next_pc = instr.imm
        elif m is Mnemonic.JR:
            next_pc = regs[instr.rs1]
        else:
            regs[instr.rd] = self._alu(m, regs[instr.rs1], regs[instr.rs2])
        state.pc = next_pc

    @staticmethod
    def _alu(m: Mnemonic, a_raw: int, b_raw: int) -> int:
        a, b = to_signed(a_raw), to_signed(b_raw)
        if m is Mnemonic.ADD:
            return (a + b) & MASK64
        if m is Mnemonic.SUB:
            return (a - b) & MASK64
        if m is Mnemonic.MUL:
            return (a * b) & MASK64
        if m is Mnemonic.DIV:
            if b == 0:
                raise MemoryFault("division by zero")
            return int(a / b) & MASK64
        if m is Mnemonic.REM:
            if b == 0:
                raise MemoryFault("remainder by zero")
            return (a - int(a / b) * b) & MASK64
        if m is Mnemonic.AND:
            return (a_raw & b_raw) & MASK64
        if m is Mnemonic.OR:
            return (a_raw | b_raw) & MASK64
        if m is Mnemonic.XOR:
            return (a_raw ^ b_raw) & MASK64
        shift = b_raw & 63
        if m is Mnemonic.SHL:
            return (a_raw << shift) & MASK64
        if m is Mnemonic.SHR:
            return (a_raw & MASK64) >> shift
        if m is Mnemonic.SAR:
            return (a >> shift) & MASK64
        raise InvalidInstruction(f"unhandled mnemonic {m}")

    def run(self, fuel: int = 1_000_000) -> RunOutcome:
        """Run until halt, trap, watchdog bite, or ``fuel`` steps."""
        self.trap_reason = ""
        try:
            while not self.state.halted and self.state.steps < fuel:
                self.step()
        except WatchdogTimeout as exc:
            self.trap_reason = str(exc)
            return RunOutcome.FUEL_EXHAUSTED
        except (MemoryFault, InvalidInstruction) as exc:
            self.trap_reason = str(exc)
            return RunOutcome.TRAP
        if self.state.halted:
            return RunOutcome.HALTED
        return RunOutcome.FUEL_EXHAUSTED
