"""The emulated machine's instruction set.

A 64-bit RISC: 16 general registers, word-addressed memory operations with
base+offset addressing, compare-and-branch, and jump-and-link for
subroutines.  Arithmetic wraps modulo 2**64 (two's complement), matching
the IR's i64 semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

N_REGISTERS = 16
WORD_BYTES = 8
LINK_REGISTER = 14  # return address for JAL
MASK64 = (1 << 64) - 1


class Mnemonic(enum.Enum):
    """Every machine operation."""

    # ALU register-register.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"     # signed, trap on zero
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"     # logical
    SAR = "sar"     # arithmetic
    # Immediates.
    LI = "li"       # rd <- imm
    ADDI = "addi"   # rd <- rs + imm
    # Memory (byte addresses, 8-byte aligned).
    LD = "ld"       # rd <- mem[rs + imm]
    ST = "st"       # mem[rs + imm] <- rd
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JAL = "jal"     # r14 <- pc + 1; pc <- target
    JR = "jr"       # pc <- rs
    HALT = "halt"
    NOP = "nop"


#: Mnemonics whose third operand is a branch target label.
BRANCHES = frozenset({Mnemonic.BEQ, Mnemonic.BNE, Mnemonic.BLT, Mnemonic.BGE})
JUMPS = frozenset({Mnemonic.JMP, Mnemonic.JAL})

#: Cycle costs, same spirit as the IR cost model (A53-ish).
CYCLE_COST = {
    Mnemonic.ADD: 2, Mnemonic.SUB: 2, Mnemonic.MUL: 3,
    Mnemonic.DIV: 8, Mnemonic.REM: 8,
    Mnemonic.AND: 2, Mnemonic.OR: 2, Mnemonic.XOR: 2,
    Mnemonic.SHL: 2, Mnemonic.SHR: 2, Mnemonic.SAR: 2,
    Mnemonic.LI: 1, Mnemonic.ADDI: 2,
    Mnemonic.LD: 4, Mnemonic.ST: 1,
    Mnemonic.BEQ: 1, Mnemonic.BNE: 1, Mnemonic.BLT: 1, Mnemonic.BGE: 1,
    Mnemonic.JMP: 1, Mnemonic.JAL: 2, Mnemonic.JR: 2,
    Mnemonic.HALT: 1, Mnemonic.NOP: 1,
}


@dataclass(frozen=True)
class MachInstr:
    """One decoded machine instruction.

    Attributes:
        mnemonic: operation.
        rd: destination (or source for ST) register.
        rs1 / rs2: source registers.
        imm: immediate / memory offset / jump target (instruction index).
    """

    mnemonic: Mnemonic
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __str__(self) -> str:
        m = self.mnemonic
        if m in (Mnemonic.HALT, Mnemonic.NOP):
            return m.value
        if m is Mnemonic.LI:
            return f"li r{self.rd}, {self.imm}"
        if m is Mnemonic.ADDI:
            return f"addi r{self.rd}, r{self.rs1}, {self.imm}"
        if m is Mnemonic.LD:
            return f"ld r{self.rd}, {self.imm}(r{self.rs1})"
        if m is Mnemonic.ST:
            return f"st r{self.rd}, {self.imm}(r{self.rs1})"
        if m in BRANCHES:
            return f"{m.value} r{self.rs1}, r{self.rs2}, @{self.imm}"
        if m in JUMPS:
            return f"{m.value} @{self.imm}"
        if m is Mnemonic.JR:
            return f"jr r{self.rs1}"
        return f"{m.value} r{self.rd}, r{self.rs1}, r{self.rs2}"


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as signed."""
    value &= MASK64
    return value - (1 << 64) if value >= 1 << 63 else value
