"""Lockstep batched-trial execution: N runs advancing through shared code.

A fault-injection campaign executes the *same* program hundreds of times,
differing only in one injected bit flip per run.  The lockstep engine
exploits that: it keeps N trials ("lanes") in flight at once and advances
them superblock by superblock, grouping lanes that sit on the same basic
block so one compiled-superblock lookup serves the whole group.  Each lane
is a full :class:`~repro.ir.interp.Interpreter` with its own register
arena (SSA environment), heap, counters and step hook, so lanes interact
only through the shared read-only compiled code — the same batch-vs-loop
bitwise-equivalence discipline the detector layer proves for
``score_batch``: running a batch of lanes yields byte-identical
:class:`ExecutionResult`s to running each trial alone.

The per-lane step is :meth:`Interpreter._advance_plain` — exactly the
advance the single-trial fast path makes — so equivalence is structural,
not re-proved per opcode.  Lanes whose interpreter has ``record_trace``
set take the exact per-block path instead and accumulate ``block_trace``
for post-hoc per-trial event emission (the traced campaign contract).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import (
    DetectionTrap,
    FuelExhausted,
    InterpreterError,
    TrapError,
)
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.interp import (
    _CONTINUE,
    ExecutionResult,
    ExecutionStatus,
    Frame,
    Interpreter,
    StepHook,
    _coerce,
)
from repro.ir.module import Module


class Lane:
    """One in-flight trial: an interpreter plus its root frame.

    ``result`` is None while the lane is running and the final
    :class:`ExecutionResult` once it finished (by return, trap, detection
    or fuel exhaustion).
    """

    __slots__ = ("interp", "frame", "result")

    def __init__(self, interp: Interpreter, frame: Frame) -> None:
        self.interp = interp
        self.frame = frame
        self.result: ExecutionResult | None = None

    @property
    def done(self) -> bool:
        return self.result is not None

    def advance(self, sb=None) -> bool:
        """Advance this lane by one (super)block; True when it finished.

        ``sb`` is an optional pre-looked-up superblock for the lane's
        current block (the scheduler shares one lookup across a group);
        a stale hint is re-resolved, never trusted.  Mirrors exactly one
        iteration of the dispatch loop in ``Interpreter._run_frame``,
        including the traced per-block path when ``record_trace`` is on.
        """
        interp = self.interp
        frame = self.frame
        try:
            if interp.record_trace:
                interp.block_trace.append((frame.func.name, frame.block.name))
                step = interp._run_block(frame)
            else:
                step = interp._advance_plain(frame, sb)
        except DetectionTrap as exc:
            self._finish(ExecutionStatus.DETECTED, None, str(exc))
            return True
        except TrapError as exc:
            self._finish(ExecutionStatus.TRAP, None, str(exc))
            return True
        except FuelExhausted as exc:
            self._finish(ExecutionStatus.HANG, None, str(exc))
            return True
        if step is _CONTINUE:
            return False
        self._finish(ExecutionStatus.OK, step.value, "")
        return True

    def _finish(
        self,
        status: ExecutionStatus,
        value: int | float | None,
        reason: str,
    ) -> None:
        interp = self.interp
        interp.frames.pop()
        self.result = ExecutionResult(
            status=status,
            value=value,
            cycles=interp.cycles,
            instructions=interp.instructions,
            block_trace=interp.block_trace,
            trap_reason=reason,
        )


def start_lane(
    module: Module,
    func_name: str,
    args: Sequence[int | float],
    cost_model: CostModel = CORTEX_A53,
    fuel: int = 5_000_000,
    step_hook: StepHook | None = None,
    hook_index: int | None = None,
    code_cache: dict | None = None,
    record_trace: bool = False,
) -> Lane:
    """Set up one lane, poised at its entry block.

    Replicates the prologue of ``Interpreter.run`` + ``_call`` (argument
    count check, typed coercion into the root environment) so a lane that
    is advanced to completion produces the byte-identical
    :class:`ExecutionResult` a standalone ``run`` would.  Lanes meant to
    run in the same lockstep group must share ``module`` and
    ``code_cache`` so compiled (super)blocks are derived once.
    """
    interp = Interpreter(
        module,
        cost_model=cost_model,
        fuel=fuel,
        record_trace=record_trace,
        step_hook=step_hook,
        code_cache=code_cache,
        hook_index=hook_index,
    )
    func = module.function(func_name)
    if len(args) != len(func.args):
        raise InterpreterError(
            f"@{func.name} expects {len(func.args)} args, got {len(args)}"
        )
    env: dict[str, int | float] = {}
    for formal, actual in zip(func.args, args):
        env[formal.name] = _coerce(formal.type, actual)
    frame = Frame(func=func, env=env, block=func.entry)
    interp.frames.append(frame)
    return Lane(interp, frame)


def run_lockstep(lanes: Sequence[Lane]) -> list[ExecutionResult]:
    """Advance every lane to completion, grouped by current block.

    Per round, lanes sitting on the same basic block share a single
    superblock lookup/compilation; each then advances independently
    (control flow may diverge mid-round — a faulted branch sends its lane
    down another path, and it simply lands in a different group next
    round).  Results are returned in lane order.
    """
    active = [lane for lane in lanes if not lane.done]
    while active:
        groups: dict = {}
        for lane in active:
            groups.setdefault(lane.frame.block, []).append(lane)
        survivors: list[Lane] = []
        for block, group in groups.items():
            lead = group[0].interp
            sb = lead._supers.get(block)
            if sb is None:
                sb = lead._compile_super(block)
            for lane in group:
                if not lane.advance(sb):
                    survivors.append(lane)
        active = survivors
    return [lane.result for lane in lanes]  # type: ignore[misc]
