"""Reference IR interpreter: the original per-instruction dispatch loop.

:class:`repro.ir.interp.Interpreter` lowers blocks to compiled step
closures for speed.  This module keeps the pre-optimization dispatch loop
— opcode tests, cost-model lookups and operand resolution done per dynamic
instruction — under the same public contract, for two purposes:

* **differential oracle**: ``tests/ir/test_fastpath.py`` checks that the
  compiled interpreter produces identical values, cycles, instruction
  counts and traces on every workload, with and without fault injection;
* **perf baseline**: ``benchmarks/bench_perf.py`` measures the fast path's
  speedup against this loop and records it in ``BENCH_perf.json``.

Keep semantics in lockstep with :mod:`repro.ir.interp`; shared helpers
(``magnitude``, arithmetic, coercion) are imported from there so only the
dispatch structure is duplicated.
"""

from __future__ import annotations

from repro.errors import DetectionTrap, FuelExhausted, InterpreterError, TrapError
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.interp import (
    _CONTINUE,
    _FLOAT_ARITH,
    _INT_ARITH,
    _coerce,
    _compare,
    _float_arith,
    _int_arith,
    ExecutionResult,
    ExecutionStatus,
    Frame,
    StepHook,
    magnitude,
)
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Argument, Constant, Value

import math


class ReferenceInterpreter:
    """Executes IR modules with per-instruction dispatch (no compilation)."""

    MAX_HEAP_CELLS = 1 << 20

    def __init__(
        self,
        module: Module,
        cost_model: CostModel = CORTEX_A53,
        fuel: int = 5_000_000,
        record_trace: bool = False,
        step_hook: StepHook | None = None,
    ) -> None:
        self.module = module
        self.cost_model = cost_model
        self.fuel = fuel
        self.record_trace = record_trace
        self.step_hook = step_hook
        self.heap: list[int | float] = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace: list[tuple[str, str]] = []
        self.frames: list[Frame] = []

    # -- public API -----------------------------------------------------------

    def run(self, func_name: str, args: list[int | float]) -> ExecutionResult:
        """Execute ``func_name`` with ``args`` and classify the outcome."""
        self.heap = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace = []
        self.frames = []
        func = self.module.function(func_name)
        try:
            value = self._call(func, args)
            status, reason = ExecutionStatus.OK, ""
        except DetectionTrap as exc:
            value, status, reason = None, ExecutionStatus.DETECTED, str(exc)
        except TrapError as exc:
            value, status, reason = None, ExecutionStatus.TRAP, str(exc)
        except FuelExhausted as exc:
            value, status, reason = None, ExecutionStatus.HANG, str(exc)
        return ExecutionResult(
            status=status,
            value=value,
            cycles=self.cycles,
            instructions=self.instructions,
            block_trace=self.block_trace,
            trap_reason=reason,
        )

    def alloc_cells(self, count: int) -> int:
        """Allocate ``count`` zeroed heap cells; returns base address."""
        if count < 0:
            raise TrapError(f"negative allocation of {count} cells")
        if len(self.heap) + count > self.MAX_HEAP_CELLS:
            raise TrapError(
                f"allocation of {count} cells exceeds the heap limit"
            )
        base = len(self.heap)
        self.heap.extend([0] * count)
        return base

    # -- execution core --------------------------------------------------------

    def _call(self, func: Function, args: list[int | float]) -> int | float | None:
        if len(args) != len(func.args):
            raise InterpreterError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        env: dict[str, int | float] = {}
        for formal, actual in zip(func.args, args):
            env[formal.name] = _coerce(formal.type, actual)
        frame = Frame(func=func, env=env, block=func.entry)
        self.frames.append(frame)
        try:
            return self._run_frame(frame)
        finally:
            self.frames.pop()

    def _run_frame(self, frame: Frame) -> int | float | None:
        while True:
            if self.record_trace:
                self.block_trace.append((frame.func.name, frame.block.name))
            result = self._run_block(frame)
            if result is not _CONTINUE:
                return result

    def _run_block(self, frame: Frame) -> object:
        # Phi nodes evaluate in parallel against the edge just taken.
        phis = frame.block.phis
        if phis:
            staged: dict[str, int | float] = {}
            for phi in phis:
                staged[phi.name] = self._phi_value(frame, phi)
                self._account(phi)
            frame.env.update(staged)

        for instr in frame.block.body:
            if self.step_hook is not None:
                self.step_hook(self, frame, instr, self.instructions)
            self._account(instr)
            op = instr.opcode
            if op is Opcode.RET:
                if instr.operands:
                    return self._value(frame, instr.operands[0])
                return None
            if op is Opcode.TRAP:
                raise DetectionTrap(
                    f"protection trap in @{frame.func.name}:"
                    f"^{frame.block.name}"
                )
            if op is Opcode.JMP:
                self._jump(frame, instr.block_targets[0])
                return _CONTINUE
            if op is Opcode.BR:
                cond = self._value(frame, instr.operands[0])
                target = instr.block_targets[0 if cond else 1]
                self._jump(frame, target)
                return _CONTINUE
            value = self._evaluate(frame, instr)
            if instr.defines_value:
                frame.env[instr.name] = value
        raise InterpreterError(
            f"@{frame.func.name}:^{frame.block.name} fell off the end"
        )  # pragma: no cover - verifier guarantees terminators

    def _jump(self, frame: Frame, target) -> None:
        frame.prev_block = frame.block
        frame.block = target

    def _account(self, instr: Instruction) -> None:
        self.instructions += 1
        self.cycles += self.cost_model.cost(instr)
        if self.instructions > self.fuel:
            raise FuelExhausted(
                f"instruction budget of {self.fuel} exhausted"
            )

    def _phi_value(self, frame: Frame, phi: Instruction) -> int | float:
        if frame.prev_block is None:
            raise InterpreterError(
                f"phi {phi.ref()} reached without a predecessor edge"
            )
        for value, block in phi.phi_incoming():
            if block is frame.prev_block:
                return self._value(frame, value)
        raise TrapError(
            f"phi {phi.ref()}: no incoming entry for edge from "
            f"^{frame.prev_block.name} (control-flow corruption?)"
        )

    def _value(self, frame: Frame, value: Value) -> int | float:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, (Argument, Instruction)):
            try:
                return frame.env[value.name]
            except KeyError:
                raise TrapError(
                    f"read of undefined value {value.ref()}"
                ) from None
        raise InterpreterError(f"unknown value kind {value!r}")

    # -- per-opcode evaluation ---------------------------------------------------

    def _evaluate(self, frame: Frame, instr: Instruction) -> int | float:
        op = instr.opcode
        get = lambda i: self._value(frame, instr.operands[i])  # noqa: E731

        if op in _INT_ARITH:
            return _int_arith(op, instr.type, int(get(0)), int(get(1)))
        if op in _FLOAT_ARITH:
            return _float_arith(op, float(get(0)), float(get(1)))
        if op is Opcode.ICMP:
            assert instr.predicate is not None
            return int(_compare(instr.predicate, int(get(0)), int(get(1))))
        if op is Opcode.FCMP:
            assert instr.predicate is not None
            a, b = float(get(0)), float(get(1))
            if math.isnan(a) or math.isnan(b):
                return int(instr.predicate is Predicate.NE)
            return int(_compare(instr.predicate, a, b))
        if op is Opcode.SITOFP:
            return float(int(get(0)))
        if op is Opcode.FPTOSI:
            value = float(get(0))
            if math.isnan(value) or math.isinf(value):
                raise TrapError(f"fptosi of non-finite value {value}")
            return instr.type.wrap(int(value))
        if op is Opcode.ZEXT:
            raw = int(get(0)) & ((1 << instr.operands[0].type.bits) - 1)
            return instr.type.wrap(raw)
        if op is Opcode.TRUNC:
            return instr.type.wrap(int(get(0)))
        if op is Opcode.ALLOC:
            return self.alloc_cells(int(get(0)))
        if op is Opcode.LOAD:
            return self._load(int(get(0)), instr.type)
        if op is Opcode.STORE:
            self._store(int(get(1)), get(0))
            return 0
        if op is Opcode.GEP:
            return int(get(0)) + int(get(1))
        if op is Opcode.SELECT:
            return get(1) if get(0) else get(2)
        if op is Opcode.MAG:
            return magnitude(float(get(0)), instr.imm or 0)
        if op is Opcode.SIGN:
            return int(math.copysign(1.0, float(get(0))) < 0)
        if op is Opcode.CALL:
            assert instr.callee is not None
            callee = self.module.function(instr.callee)
            args = [self._value(frame, a) for a in instr.operands]
            result = self._call(callee, args)
            return 0 if result is None else result
        raise InterpreterError(f"unhandled opcode {op}")  # pragma: no cover

    def _load(self, address: int, type_: Type) -> int | float:
        if not 0 <= address < len(self.heap):
            raise TrapError(f"load from invalid address {address}")
        raw = self.heap[address]
        if type_.is_float:
            return float(raw)
        return type_.wrap(int(raw))

    def _store(self, address: int, value: int | float) -> None:
        if not 0 <= address < len(self.heap):
            raise TrapError(f"store to invalid address {address}")
        self.heap[address] = value
