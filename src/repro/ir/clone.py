"""Deep-cloning of IR functions and modules.

Instrumentation passes (tunable DMR, quantized checking) never mutate the
caller's module: they clone it first and transform the clone, so the
unprotected baseline remains available for overhead comparisons.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Value


def clone_function(func: Function) -> Function:
    """Structure-preserving deep copy of ``func`` (same names throughout)."""
    new_func = Function(
        func.name,
        [(a.name, a.type) for a in func.args],
        func.return_type,
    )
    new_func._name_counter = func._name_counter

    block_map: dict[str, BasicBlock] = {}
    for block in func.blocks:
        block_map[block.name] = new_func.add_block(block.name)

    value_map: dict[int, Value] = {
        id(old): new for old, new in zip(func.args, new_func.args)
    }

    # First pass: create instruction shells so forward references (phi
    # incoming values defined later) can be patched in the second pass.
    instr_map: dict[int, Instruction] = {}
    for block in func.blocks:
        for instr in block.instructions:
            copy = Instruction(
                instr.opcode,
                instr.type,
                [],
                name=instr.name,
                predicate=instr.predicate,
                callee=instr.callee,
                imm=instr.imm,
            )
            instr_map[id(instr)] = copy
            value_map[id(instr)] = copy
            block_map[block.name].append(copy)

    def map_value(value: Value) -> Value:
        if isinstance(value, Constant):
            return value
        if isinstance(value, (Argument, Instruction)):
            return value_map[id(value)]
        raise AssertionError(f"unmappable value {value!r}")  # pragma: no cover

    for block in func.blocks:
        for instr in block.instructions:
            copy = instr_map[id(instr)]
            copy.operands = [map_value(v) for v in instr.operands]
            copy.block_targets = [
                block_map[b.name] for b in instr.block_targets
            ]
    return new_func


def clone_module(module: Module, name: str | None = None) -> Module:
    """Deep copy of every function in ``module``."""
    new_module = Module(name or module.name)
    for func in module:
        new_module.add_function(clone_function(func))
    return new_module
