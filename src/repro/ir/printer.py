"""Textual IR printer.

The format round-trips through :mod:`repro.ir.parser`; see that module for
the grammar.  Example::

    func @abs_diff(%a: i64, %b: i64) -> i64 {
    ^entry:
      %c1 = icmp lt i64 %a, %b
      br %c1, ^lt, ^ge
    ^lt:
      %d1 = sub i64 %b, %a
      ret i64 %d1
    ^ge:
      %d2 = sub i64 %a, %b
      ret i64 %d2
    }
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BINOPS,
    CASTS,
    Instruction,
    Opcode,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Value


def _operand(value: Value) -> str:
    if isinstance(value, Constant):
        return value.ref()
    return value.ref()


def print_instruction(instr: Instruction) -> str:
    """Render one instruction (no indentation, no trailing newline)."""
    op = instr.opcode
    lhs = f"{instr.ref()} = " if instr.defines_value else ""
    ops = instr.operands

    if op in BINOPS:
        return f"{lhs}{op.value} {instr.type} {_operand(ops[0])}, {_operand(ops[1])}"
    if op in (Opcode.ICMP, Opcode.FCMP):
        assert instr.predicate is not None
        return (
            f"{lhs}{op.value} {instr.predicate.value} {ops[0].type} "
            f"{_operand(ops[0])}, {_operand(ops[1])}"
        )
    if op in CASTS:
        return f"{lhs}{op.value} {instr.type} {_operand(ops[0])}"
    if op is Opcode.ALLOC:
        return f"{lhs}alloc {ops[0].type} {_operand(ops[0])}"
    if op is Opcode.LOAD:
        return f"{lhs}load {instr.type} {_operand(ops[0])}"
    if op is Opcode.STORE:
        return f"store {ops[0].type} {_operand(ops[0])}, {_operand(ops[1])}"
    if op is Opcode.GEP:
        return f"{lhs}gep {_operand(ops[0])}, {ops[1].type} {_operand(ops[1])}"
    if op is Opcode.BR:
        then_b, else_b = instr.block_targets
        return f"br {_operand(ops[0])}, {then_b.ref()}, {else_b.ref()}"
    if op is Opcode.JMP:
        return f"jmp {instr.block_targets[0].ref()}"
    if op is Opcode.RET:
        if not ops:
            return "ret"
        return f"ret {ops[0].type} {_operand(ops[0])}"
    if op is Opcode.TRAP:
        return "trap"
    if op is Opcode.MAG:
        return f"{lhs}mag {instr.imm or 0} {_operand(ops[0])}"
    if op is Opcode.SIGN:
        return f"{lhs}sign {_operand(ops[0])}"
    if op is Opcode.PHI:
        pairs = ", ".join(
            f"[{_operand(v)}, {b.ref()}]" for v, b in instr.phi_incoming()
        )
        return f"{lhs}phi {instr.type} {pairs}"
    if op is Opcode.SELECT:
        return (
            f"{lhs}select {instr.type} {_operand(ops[0])}, "
            f"{_operand(ops[1])}, {_operand(ops[2])}"
        )
    if op is Opcode.CALL:
        args = ", ".join(f"{a.type} {_operand(a)}" for a in ops)
        return f"{lhs}call {instr.type} @{instr.callee}({args})"
    raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.ref()}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def print_function(func: Function) -> str:
    params = ", ".join(f"{a.ref()}: {a.type}" for a in func.args)
    header = f"func @{func.name}({params}) -> {func.return_type} {{"
    parts = [header]
    parts.extend(print_block(b) for b in func.blocks)
    parts.append("}")
    return "\n".join(parts)


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module) + "\n"
