"""IR values: constants, function arguments, and instruction results.

Everything an instruction can consume is a :class:`Value`.  Instructions are
themselves values (their result); see :mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from repro.errors import IRTypeError
from repro.ir.types import Type, TypeKind


class Value:
    """Base class for anything usable as an instruction operand.

    Attributes:
        type: the IR type of the value.
        name: SSA name without the leading ``%`` (may be empty for
            constants).
    """

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """An immediate constant of integer, float or pointer type."""

    def __init__(self, type_: Type, value: int | float) -> None:
        super().__init__(type_, "")
        if type_.kind is TypeKind.INT:
            self.value: int | float = type_.wrap(int(value))
        elif type_.kind is TypeKind.FLOAT:
            self.value = float(value)
        elif type_.kind is TypeKind.POINTER:
            self.value = int(value)
        else:
            raise IRTypeError(f"cannot build a constant of type {type_}")

    def ref(self) -> str:
        if self.type.is_float:
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index
