"""Use-def and def-use chains, and backward slicing.

The paper's tunable-DMR pass extracts "the set of instructions that determine
[branch-governing] values by traversing the use-def tree in reverse order"
(sect. 4.1).  :func:`backward_slice` is exactly that traversal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Argument, Constant, Value


class UseDefInfo:
    """Def-use and use-def chains for one function.

    ``users(v)`` answers "which instructions consume v"; ``defs(i)`` answers
    "which values does instruction i consume".  Constants are excluded from
    chains (they cannot be corrupted before program start and carry no
    defining instruction).
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self._users: dict[Value, list[Instruction]] = defaultdict(list)
        for instr in func.instructions():
            for operand in instr.operands:
                if not isinstance(operand, Constant):
                    self._users[operand].append(instr)

    def users(self, value: Value) -> list[Instruction]:
        """Instructions using ``value`` as an operand."""
        return list(self._users.get(value, []))

    @staticmethod
    def operands_of(instr: Instruction) -> list[Value]:
        """Non-constant operands of ``instr``."""
        return [op for op in instr.operands if not isinstance(op, Constant)]

    def is_dead(self, instr: Instruction) -> bool:
        """True if ``instr`` defines a value nobody uses (and is removable)."""
        return instr.defines_value and not self._users.get(instr)


def backward_slice(
    roots: Iterable[Value],
    *,
    stop_at_calls: bool = False,
    boundaries: list[Instruction] | None = None,
) -> list[Instruction]:
    """All instructions transitively feeding the ``roots`` values.

    Traverses use-def edges in reverse from each root.  Arguments and
    constants terminate the walk.  The result is deduplicated and returned
    in a deterministic order (by discovery), with the defining instructions
    of the roots included when the roots are instruction results.

    With ``stop_at_calls`` the walk also terminates at ``call``
    instructions: the call itself is kept in the slice (its result is part
    of the dependence chain) but its operands are not traversed — the
    callee's computation cannot be replicated from the caller, so pulling
    the call's arguments into the slice would only replicate values whose
    replicas feed nothing.  Every call so encountered is appended to
    ``boundaries`` (when given), in discovery order, so clients can report
    the coverage hole instead of silently absorbing it.
    """
    seen: set[int] = set()
    ordered: list[Instruction] = []
    stack: list[Value] = list(roots)
    while stack:
        value = stack.pop()
        if isinstance(value, (Constant, Argument)):
            continue
        if not isinstance(value, Instruction):
            continue
        if id(value) in seen:
            continue
        seen.add(id(value))
        ordered.append(value)
        if stop_at_calls and value.opcode is Opcode.CALL:
            if boundaries is not None:
                boundaries.append(value)
            continue
        stack.extend(value.operands)
    ordered.reverse()
    return ordered


def slice_fraction(func: Function, roots: Iterable[Value]) -> float:
    """Fraction of the function's instructions inside the backward slice.

    This is the quantity the paper's argument hinges on: the critical subset
    is "a subset of all values in the program", so replicating only the
    slice is cheaper than full DMR.
    """
    total = len(func)
    if total == 0:
        return 0.0
    return len(backward_slice(roots)) / total
