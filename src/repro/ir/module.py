"""IR modules: the compilation unit holding a set of functions."""

from __future__ import annotations

from typing import Iterator

from repro.errors import IRError
from repro.ir.function import Function


class Module:
    """A named collection of functions (the IR compilation unit)."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: dict[str, Function] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self._functions:
            raise IRError(f"duplicate function @{func.name} in module {self.name}")
        func.parent = self
        self._functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name}") from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def remove_function(self, name: str) -> None:
        if name not in self._functions:
            raise IRError(f"no function @{name} in module {self.name}")
        del self._functions[name]

    @property
    def functions(self) -> list[Function]:
        return list(self._functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self)} functions)>"
