"""IR functions: named collections of basic blocks with typed arguments."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import Argument

if TYPE_CHECKING:
    from repro.ir.module import Module


class Function:
    """A function with SSA body.

    Attributes:
        name: global symbol name.
        args: formal parameters in order.
        return_type: the type ``ret`` instructions must produce.
        blocks: basic blocks; the first one is the entry block.
    """

    def __init__(
        self,
        name: str,
        arg_types: list[tuple[str, Type]],
        return_type: Type,
    ) -> None:
        self.name = name
        self.args: list[Argument] = [
            Argument(t, n, i) for i, (n, t) in enumerate(arg_types)
        ]
        self.return_type = return_type
        self.blocks: list[BasicBlock] = []
        self.parent: Module | None = None
        self._name_counter = 0

    # -- block management ---------------------------------------------------

    def add_block(self, name: str | None = None) -> BasicBlock:
        """Create and append a new basic block with a unique label."""
        if name is None:
            name = f"bb{len(self.blocks)}"
        if any(b.name == name for b in self.blocks):
            raise IRError(f"duplicate block name ^{name} in @{self.name}")
        block = BasicBlock(name)
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"no block ^{name} in @{self.name}")

    # -- value naming --------------------------------------------------------

    def fresh_name(self, hint: str = "v") -> str:
        """Return a value name unused so far in this function."""
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    # -- iteration -----------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __len__(self) -> int:
        """Total instruction count."""
        return sum(len(b) for b in self.blocks)

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"
