"""Strongly connected components of the CFG.

The paper proposes verifying control-flow transitions only *between* SCCs as
the cheapest integrity level (sect. 4.1): within a loop (an SCC) transitions
are unchecked, and only entering/leaving the loop is validated.
"""

from __future__ import annotations

import networkx as nx

from repro.ir.block import BasicBlock
from repro.ir.cfg import cfg_graph
from repro.ir.function import Function


def strongly_connected_components(func: Function) -> list[list[BasicBlock]]:
    """SCCs of the function's CFG, in topological order of the condensation.

    Each component is a list of blocks; singleton components without a
    self-loop correspond to straight-line regions, larger components to
    loops.
    """
    graph = cfg_graph(func)
    condensed = nx.condensation(graph)
    ordered: list[list[BasicBlock]] = []
    for scc_id in nx.topological_sort(condensed):
        members = condensed.nodes[scc_id]["members"]
        ordered.append([func.block(name) for name in sorted(members)])
    return ordered


def condensation(func: Function) -> tuple["nx.DiGraph", dict[str, int]]:
    """The SCC condensation DAG and a block-name -> SCC-id map."""
    graph = cfg_graph(func)
    condensed = nx.condensation(graph)
    membership: dict[str, int] = {}
    for scc_id, data in condensed.nodes(data=True):
        for name in data["members"]:
            membership[name] = scc_id
    return condensed, membership


def scc_of(func: Function) -> dict[str, int]:
    """Convenience wrapper: block name -> SCC id."""
    _, membership = condensation(func)
    return membership


def is_loop_component(func: Function, component: list[BasicBlock]) -> bool:
    """Whether an SCC represents a loop (multi-node or self-looping)."""
    if len(component) > 1:
        return True
    graph = cfg_graph(func)
    name = component[0].name
    return graph.has_edge(name, name)
