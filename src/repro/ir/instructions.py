"""IR instructions.

A single generic :class:`Instruction` class covers all opcodes; the opcode
enum carries the semantic classification (arithmetic vs. comparison vs.
control flow) that the DMR instrumentation and risk-analysis passes key on.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Sequence

from repro.errors import IRError
from repro.ir.types import Type, VOID, bit_class, injectable_width
from repro.ir.values import Value

if TYPE_CHECKING:
    from repro.ir.block import BasicBlock


class Opcode(enum.Enum):
    """Every operation the IR supports."""

    # Integer arithmetic (two's complement, wrapping).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # Floating point arithmetic.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Comparisons; the predicate lives in Instruction.predicate.
    ICMP = "icmp"
    FCMP = "fcmp"
    # Conversions.
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    ZEXT = "zext"
    TRUNC = "trunc"
    # Memory.
    ALLOC = "alloc"
    LOAD = "load"
    STORE = "store"
    GEP = "gep"  # pointer + element offset
    # Control flow.
    BR = "br"       # conditional branch: (cond, then_block, else_block)
    JMP = "jmp"     # unconditional branch
    RET = "ret"
    TRAP = "trap"   # detection trap inserted by protection passes
    # Misc.
    PHI = "phi"
    SELECT = "select"
    CALL = "call"
    #: Order-of-magnitude extraction: i64 result = floor(2**imm * log2|x|)
    #: of an f64 operand.  Costs 1 cycle on the A53 model (sect. 4.1).
    MAG = "mag"
    #: Sign-bit extraction of an f64 operand as i1 (1 = negative).  A bit
    #: test in hardware: 1 cycle.
    SIGN = "sign"


INT_BINOPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
})
FLOAT_BINOPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
BINOPS = INT_BINOPS | FLOAT_BINOPS
COMPARISONS = frozenset({Opcode.ICMP, Opcode.FCMP})
CASTS = frozenset({Opcode.SITOFP, Opcode.FPTOSI, Opcode.ZEXT, Opcode.TRUNC})
MEMORY_OPS = frozenset({Opcode.ALLOC, Opcode.LOAD, Opcode.STORE, Opcode.GEP})
TERMINATORS = frozenset({Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.TRAP})


class Predicate(enum.Enum):
    """Comparison predicates shared by ``icmp`` and ``fcmp``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class Instruction(Value):
    """A single IR instruction; also the SSA value it defines.

    Attributes:
        opcode: the operation performed.
        operands: value operands, in positional order.
        block_targets: successor blocks for terminators (``br``: [then,
            else]; ``jmp``: [target]) and incoming blocks for ``phi`` nodes
            (parallel to ``operands``).
        predicate: comparison predicate for ``icmp``/``fcmp``.
        callee: function name for ``call``.
        imm: immediate attribute (``mag``: number of protected mantissa
            bits; ``trap``: unused).
        parent: the basic block containing this instruction.
    """

    def __init__(
        self,
        opcode: Opcode,
        type_: Type,
        operands: Sequence[Value] = (),
        name: str = "",
        block_targets: Sequence["BasicBlock"] = (),
        predicate: Predicate | None = None,
        callee: str | None = None,
        imm: int | None = None,
    ) -> None:
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: list[Value] = list(operands)
        self.block_targets: list[BasicBlock] = list(block_targets)
        self.predicate = predicate
        self.callee = callee
        self.imm = imm
        self.parent: BasicBlock | None = None

    # -- classification ---------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_binop(self) -> bool:
        return self.opcode in BINOPS

    @property
    def is_comparison(self) -> bool:
        return self.opcode in COMPARISONS

    @property
    def is_phi(self) -> bool:
        return self.opcode is Opcode.PHI

    @property
    def defines_value(self) -> bool:
        """Whether this instruction produces an SSA result."""
        return self.type is not VOID and not self.type.is_void

    # -- bit-class metadata -------------------------------------------------

    @property
    def injection_width(self) -> int:
        """Bit positions an SEU can flip in this instruction's result.

        Mirrors the register injector's width rule (floats and pointers
        fill a 64-bit register; integers expose ``type.bits``), so the
        masking analysis and pre-resolved trial plans index bits exactly
        as live injection does.
        """
        if not self.defines_value:
            raise IRError(f"{self.ref()} defines no value to inject into")
        return injectable_width(self.type)

    def bit_class(self, bit: int) -> str:
        """Semantic class (sign/exponent/mantissa/…) of result bit ``bit``."""
        if not self.defines_value:
            raise IRError(f"{self.ref()} defines no value to classify")
        return bit_class(self.type, bit)

    # -- mutation ----------------------------------------------------------

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every use of ``old`` in this instruction; returns count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    # -- phi helpers --------------------------------------------------------

    def phi_incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        """(value, predecessor-block) pairs of a phi node."""
        if not self.is_phi:
            raise IRError(f"{self.ref()} is not a phi node")
        return list(zip(self.operands, self.block_targets))

    def add_phi_incoming(self, value: Value, block: "BasicBlock") -> None:
        if not self.is_phi:
            raise IRError(f"{self.ref()} is not a phi node")
        self.operands.append(value)
        self.block_targets.append(block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self.opcode.value} {self.ref()}>"
