"""Per-instruction cycle cost models.

The paper's quantized data-flow argument (sect. 4.1) rests on the ARM
Cortex-A53 cost asymmetry: "integer operations take up to just 2 cycles,
while floating-point ones will need up to 7 cycles.  Orders of magnitude can
be calculated in just 1 cycle."  :data:`CORTEX_A53` encodes exactly those
numbers; the interpreter charges them per executed instruction so that
instrumentation overhead is measured in cycles rather than Python wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    COMPARISONS,
    FLOAT_BINOPS,
    INT_BINOPS,
    Instruction,
    Opcode,
)


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per instruction class.

    Attributes:
        int_alu: simple integer ALU op (add/sub/logic/shift) and icmp.
        int_div: integer divide/remainder.
        fp_alu: floating point add/sub/mul/div and fcmp.
        magnitude: integer order-of-magnitude op used by the quantized
            checker (exponent extraction/addition).
        load: memory load.
        store: memory store.
        branch: taken control transfer.
        call_overhead: call + return bookkeeping.
    """

    name: str
    int_alu: int = 2
    int_div: int = 8
    fp_alu: int = 7
    magnitude: int = 1
    load: int = 4
    store: int = 1
    branch: int = 1
    call_overhead: int = 6
    overrides: dict[Opcode, int] = field(default_factory=dict)

    def cost(self, instr: Instruction) -> int:
        """Cycle cost of one dynamic execution of ``instr``."""
        op = instr.opcode
        if op in self.overrides:
            return self.overrides[op]
        if op in (Opcode.SDIV, Opcode.SREM):
            return self.int_div
        if op in INT_BINOPS:
            return self.int_alu
        if op in FLOAT_BINOPS:
            return self.fp_alu
        if op in COMPARISONS:
            return self.fp_alu if op is Opcode.FCMP else self.int_alu
        if op in (Opcode.SITOFP, Opcode.FPTOSI):
            return self.fp_alu
        if op in (Opcode.ZEXT, Opcode.TRUNC, Opcode.SELECT, Opcode.GEP,
                  Opcode.PHI):
            return self.int_alu
        if op in (Opcode.MAG, Opcode.SIGN):
            return self.magnitude
        if op is Opcode.LOAD:
            return self.load
        if op in (Opcode.STORE, Opcode.ALLOC):
            return self.store
        if op in (Opcode.BR, Opcode.JMP, Opcode.RET, Opcode.TRAP):
            return self.branch
        if op is Opcode.CALL:
            return self.call_overhead
        raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover


#: Cortex-A53-calibrated model: the numbers quoted in sect. 4.1.
CORTEX_A53 = CostModel(name="cortex-a53")

#: A "hardened flight computer" model: same relative costs, but the clock is
#: so much lower (216 MHz vs 2.5 GHz, Table 1) that the mission simulator
#: multiplies wall time accordingly.
ENDUROSAT_OBC = CostModel(name="endurosat-obc", int_alu=2, fp_alu=14,
                          int_div=16, magnitude=1, load=6)
