"""SSA intermediate representation: the library's LLVM stand-in.

The paper's tunable-DMR instrumentation (sect. 4.1) and risk-analysis pass
(sect. 4.2) are described as LLVM compiler passes.  This package provides the
facilities those passes need: a typed SSA IR with basic blocks and phi nodes,
a builder, a verifier, a textual printer/parser, CFG analyses (dominators,
strongly connected components), use-def chains, and an interpreter with a
Cortex-A53-style cycle cost model.
"""

from repro.ir.types import Type, INT1, INT32, INT64, F64, PTR
from repro.ir.values import Value, Constant, Argument
from repro.ir.instructions import Opcode, Instruction
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_module, verify_function
from repro.ir.printer import print_module, print_function
from repro.ir.parser import parse_module
from repro.ir.cfg import successors, predecessors, reverse_postorder
from repro.ir.dominators import DominatorTree
from repro.ir.scc import strongly_connected_components, condensation
from repro.ir.usedef import UseDefInfo, backward_slice
from repro.ir.interp import (
    Interpreter, ExecutionResult, ExecutionStatus, magnitude,
)
from repro.ir.costmodel import CostModel, CORTEX_A53
from repro.ir.clone import clone_function, clone_module

__all__ = [
    "Type", "INT1", "INT32", "INT64", "F64", "PTR",
    "Value", "Constant", "Argument",
    "Opcode", "Instruction",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "verify_module", "verify_function",
    "print_module", "print_function", "parse_module",
    "successors", "predecessors", "reverse_postorder",
    "DominatorTree", "strongly_connected_components", "condensation",
    "UseDefInfo", "backward_slice",
    "Interpreter", "ExecutionResult", "ExecutionStatus", "magnitude",
    "CostModel", "CORTEX_A53",
    "clone_function", "clone_module",
]
