"""IR value types.

The IR is deliberately small: three integer widths (1, 32 and 64 bits), one
floating-point type (IEEE-754 double), and a pointer type addressing the
interpreter's flat heap.  Integer arithmetic wraps modulo 2**bits with
two's-complement signedness, matching what the machine emulator executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IRTypeError


class TypeKind(enum.Enum):
    """Classification of an IR type."""

    INT = "int"
    FLOAT = "float"
    POINTER = "ptr"
    VOID = "void"


@dataclass(frozen=True)
class Type:
    """A first-class IR type.

    Attributes:
        kind: broad classification (integer, float, pointer, void).
        bits: bit width of the representation.  Pointers are 64-bit.
    """

    kind: TypeKind
    bits: int

    def __str__(self) -> str:
        if self.kind is TypeKind.INT:
            return f"i{self.bits}"
        if self.kind is TypeKind.FLOAT:
            return f"f{self.bits}"
        if self.kind is TypeKind.POINTER:
            return "ptr"
        return "void"

    @property
    def is_int(self) -> bool:
        return self.kind is TypeKind.INT

    @property
    def is_float(self) -> bool:
        return self.kind is TypeKind.FLOAT

    @property
    def is_pointer(self) -> bool:
        return self.kind is TypeKind.POINTER

    @property
    def is_void(self) -> bool:
        return self.kind is TypeKind.VOID

    @property
    def signed_min(self) -> int:
        if not self.is_int:
            raise IRTypeError(f"{self} has no integer range")
        return -(1 << (self.bits - 1))

    @property
    def signed_max(self) -> int:
        if not self.is_int:
            raise IRTypeError(f"{self} has no integer range")
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this integer type's two's-complement range."""
        if not self.is_int:
            raise IRTypeError(f"cannot wrap into non-integer type {self}")
        mask = (1 << self.bits) - 1
        value &= mask
        if value > self.signed_max:
            value -= 1 << self.bits
        return value


INT1 = Type(TypeKind.INT, 1)
INT32 = Type(TypeKind.INT, 32)
INT64 = Type(TypeKind.INT, 64)
F64 = Type(TypeKind.FLOAT, 64)
PTR = Type(TypeKind.POINTER, 64)
VOID = Type(TypeKind.VOID, 0)

_BY_NAME = {str(t): t for t in (INT1, INT32, INT64, F64, PTR, VOID)}


def type_from_name(name: str) -> Type:
    """Look up a type by its textual spelling (``i64``, ``f64``, ``ptr``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise IRTypeError(f"unknown IR type {name!r}") from None


def injectable_width(type_: Type) -> int:
    """Number of bit positions an SEU can flip in a value of ``type_``.

    Floats and pointers occupy a full 64-bit register regardless of
    their logical width; integers expose exactly ``bits`` positions.
    This is the single definition the injectors, the trial planner and
    the masking analysis all draw bit indices from — they must agree or
    pre-resolved trial plans would diverge from live injection.
    """
    if type_.is_float or type_.is_pointer:
        return 64
    if type_.is_void:
        raise IRTypeError("void values hold no injectable bits")
    return type_.bits


def bit_class(type_: Type, bit: int) -> str:
    """Semantic class of bit ``bit`` within a value of ``type_``.

    Floats follow IEEE-754 double layout (``sign`` / ``exponent`` /
    ``mantissa``); pointers are uniform ``address`` bits; integers split
    into the two's-complement ``sign`` bit and ``magnitude`` bits.  The
    masking analysis reports PROVEN_BENIGN fractions per class and the
    fault model uses the same partition for error attribution.
    """
    width = injectable_width(type_)
    if not 0 <= bit < width:
        raise IRTypeError(f"bit {bit} outside {type_} ({width} bits)")
    if type_.is_float:
        if bit == 63:
            return "sign"
        if bit >= 52:
            return "exponent"
        return "mantissa"
    if type_.is_pointer:
        return "address"
    return "sign" if bit == width - 1 else "magnitude"
