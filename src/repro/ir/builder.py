"""Convenience builder for constructing IR, with eager type checking.

The builder keeps an insertion point (a basic block) and exposes one method
per opcode.  Workload programs (:mod:`repro.workloads.irprograms`) and the
DMR instrumentation pass are written against this API.
"""

from __future__ import annotations

from repro.errors import IRTypeError
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.types import F64, INT1, INT32, INT64, PTR, VOID, Type  # noqa: F401
from repro.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions into a function at a movable insertion point."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.block: BasicBlock | None = None

    # -- positioning --------------------------------------------------------

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def new_block(self, name: str | None = None) -> BasicBlock:
        """Create a block in the function without moving the insertion point."""
        return self.func.add_block(name)

    def _emit(self, instr: Instruction, name_hint: str) -> Instruction:
        if self.block is None:
            raise IRTypeError("builder has no insertion block; call set_block()")
        if instr.defines_value and not instr.name:
            instr.name = self.func.fresh_name(name_hint)
        self.block.append(instr)
        return instr

    # -- constants ------------------------------------------------------------

    @staticmethod
    def const(type_: Type, value: int | float) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def i64(value: int) -> Constant:
        return Constant(INT64, value)

    @staticmethod
    def i32(value: int) -> Constant:
        return Constant(INT32, value)

    @staticmethod
    def i1(value: bool | int) -> Constant:
        return Constant(INT1, int(bool(value)))

    @staticmethod
    def f64(value: float) -> Constant:
        return Constant(F64, value)

    # -- arithmetic -------------------------------------------------------------

    def _binop(self, opcode: Opcode, a: Value, b: Value, float_op: bool,
               name: str = "") -> Instruction:
        if a.type != b.type:
            raise IRTypeError(
                f"{opcode.value} operand types differ: {a.type} vs {b.type}"
            )
        if float_op and not a.type.is_float:
            raise IRTypeError(f"{opcode.value} requires float operands, got {a.type}")
        if not float_op and not a.type.is_int:
            raise IRTypeError(f"{opcode.value} requires int operands, got {a.type}")
        instr = Instruction(opcode, a.type, [a, b], name=name)
        return self._emit(instr, opcode.value)

    def add(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.ADD, a, b, False, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.SUB, a, b, False, name)

    def mul(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.MUL, a, b, False, name)

    def sdiv(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.SDIV, a, b, False, name)

    def srem(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.SREM, a, b, False, name)

    def and_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.AND, a, b, False, name)

    def or_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.OR, a, b, False, name)

    def xor(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.XOR, a, b, False, name)

    def shl(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.SHL, a, b, False, name)

    def lshr(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.LSHR, a, b, False, name)

    def ashr(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.ASHR, a, b, False, name)

    def fadd(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.FADD, a, b, True, name)

    def fsub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.FSUB, a, b, True, name)

    def fmul(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.FMUL, a, b, True, name)

    def fdiv(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self._binop(Opcode.FDIV, a, b, True, name)

    # -- comparisons -------------------------------------------------------------

    def icmp(self, pred: Predicate, a: Value, b: Value, name: str = "") -> Instruction:
        if a.type != b.type or not a.type.is_int:
            raise IRTypeError(f"icmp needs matching int operands: {a.type}, {b.type}")
        instr = Instruction(Opcode.ICMP, INT1, [a, b], name=name, predicate=pred)
        return self._emit(instr, "cmp")

    def fcmp(self, pred: Predicate, a: Value, b: Value, name: str = "") -> Instruction:
        if a.type != b.type or not a.type.is_float:
            raise IRTypeError(f"fcmp needs matching float operands: {a.type}, {b.type}")
        instr = Instruction(Opcode.FCMP, INT1, [a, b], name=name, predicate=pred)
        return self._emit(instr, "fcmp")

    # -- conversions ----------------------------------------------------------------

    def sitofp(self, a: Value, name: str = "") -> Instruction:
        if not a.type.is_int:
            raise IRTypeError(f"sitofp operand must be int, got {a.type}")
        return self._emit(Instruction(Opcode.SITOFP, F64, [a], name=name), "fp")

    def fptosi(self, a: Value, to: Type = INT64, name: str = "") -> Instruction:
        if not a.type.is_float or not to.is_int:
            raise IRTypeError(f"fptosi {a.type} -> {to} is invalid")
        return self._emit(Instruction(Opcode.FPTOSI, to, [a], name=name), "si")

    def zext(self, a: Value, to: Type = INT64, name: str = "") -> Instruction:
        if not a.type.is_int or not to.is_int or to.bits < a.type.bits:
            raise IRTypeError(f"zext {a.type} -> {to} is invalid")
        return self._emit(Instruction(Opcode.ZEXT, to, [a], name=name), "zext")

    def trunc(self, a: Value, to: Type, name: str = "") -> Instruction:
        if not a.type.is_int or not to.is_int or to.bits > a.type.bits:
            raise IRTypeError(f"trunc {a.type} -> {to} is invalid")
        return self._emit(Instruction(Opcode.TRUNC, to, [a], name=name), "trunc")

    # -- memory ------------------------------------------------------------------------

    def alloc(self, count: Value, name: str = "") -> Instruction:
        """Allocate ``count`` 8-byte cells on the interpreter heap."""
        if not count.type.is_int:
            raise IRTypeError(f"alloc count must be int, got {count.type}")
        return self._emit(Instruction(Opcode.ALLOC, PTR, [count], name=name), "ptr")

    def load(self, ptr: Value, type_: Type, name: str = "") -> Instruction:
        if not ptr.type.is_pointer:
            raise IRTypeError(f"load address must be ptr, got {ptr.type}")
        return self._emit(Instruction(Opcode.LOAD, type_, [ptr], name=name), "ld")

    def store(self, value: Value, ptr: Value) -> Instruction:
        if not ptr.type.is_pointer:
            raise IRTypeError(f"store address must be ptr, got {ptr.type}")
        return self._emit(Instruction(Opcode.STORE, VOID, [value, ptr]), "st")

    def gep(self, ptr: Value, offset: Value, name: str = "") -> Instruction:
        """Pointer arithmetic: ``ptr + offset`` in 8-byte cells."""
        if not ptr.type.is_pointer or not offset.type.is_int:
            raise IRTypeError(f"gep needs (ptr, int), got ({ptr.type}, {offset.type})")
        return self._emit(Instruction(Opcode.GEP, PTR, [ptr, offset], name=name), "gep")

    # -- control flow --------------------------------------------------------------------

    def br(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Instruction:
        if cond.type != INT1:
            raise IRTypeError(f"br condition must be i1, got {cond.type}")
        instr = Instruction(
            Opcode.BR, VOID, [cond], block_targets=[then_block, else_block]
        )
        return self._emit(instr, "br")

    def jmp(self, target: BasicBlock) -> Instruction:
        instr = Instruction(Opcode.JMP, VOID, [], block_targets=[target])
        return self._emit(instr, "jmp")

    def ret(self, value: Value | None = None) -> Instruction:
        operands = [] if value is None else [value]
        return self._emit(Instruction(Opcode.RET, VOID, operands), "ret")

    def trap(self) -> Instruction:
        """Emit a detection trap (terminates the block)."""
        return self._emit(Instruction(Opcode.TRAP, VOID, []), "trap")

    def mag(self, value: Value, k: int = 0, name: str = "") -> Instruction:
        """Order-of-magnitude of a float: ``floor(2**k * log2|x|)`` as i64."""
        if not value.type.is_float:
            raise IRTypeError(f"mag operand must be float, got {value.type}")
        if k < 0 or k > 52:
            raise IRTypeError(f"mag protected-bit count must be in [0, 52], got {k}")
        return self._emit(
            Instruction(Opcode.MAG, INT64, [value], name=name, imm=k), "mag"
        )

    # -- misc ------------------------------------------------------------------------------

    def phi(self, type_: Type, name: str = "") -> Instruction:
        """Create an (initially empty) phi node at the top of the block."""
        if self.block is None:
            raise IRTypeError("builder has no insertion block; call set_block()")
        instr = Instruction(Opcode.PHI, type_, [], name=name)
        if not instr.name:
            instr.name = self.func.fresh_name("phi")
        self.block.insert(len(self.block.phis), instr)
        return instr

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Instruction:
        if cond.type != INT1:
            raise IRTypeError(f"select condition must be i1, got {cond.type}")
        if a.type != b.type:
            raise IRTypeError(f"select arms differ: {a.type} vs {b.type}")
        return self._emit(
            Instruction(Opcode.SELECT, a.type, [cond, a, b], name=name), "sel"
        )

    def call(self, callee: str, args: list[Value], return_type: Type,
             name: str = "") -> Instruction:
        instr = Instruction(
            Opcode.CALL, return_type, args, name=name, callee=callee
        )
        return self._emit(instr, "call")
