"""IR interpreter with cycle accounting, tracing and fault hooks.

This is the execution substrate for the SEU experiments: programs run under
an instruction budget (hang detection), every dynamic instruction is charged
cycles from a :class:`~repro.ir.costmodel.CostModel`, the executed-block
trace can be recorded (consumed by the DMR control-flow monitor), and a
``step_hook`` fires between instructions so fault injectors can corrupt live
register state at a precise dynamic instruction index — the same granularity
the paper's QEMU framework provides (sect. 4.2).

Execution uses a compiled fast path: the first time a basic block runs, its
instructions are lowered to per-instruction step closures with operand
accessors, cycle costs, and branch targets resolved once, so the per-step
loop does no opcode dispatch, no cost-model lookups, and no isinstance
chains.  Compiled blocks can be shared across interpreter instances via the
``code_cache`` argument (one cache per module + cost model), which is how
fault-injection campaigns amortize compilation across hundreds of trials.

On top of per-block compilation sit two further tiers:

* **batched block execution** — when no step hook, trace hook or trace
  recording is active for a block, its steps run in a bare loop with the
  instruction/cycle counters and the fuel check hoisted out (one fuel
  precheck per block, counters added in bulk).  Exactness is preserved:
  a mid-block trap re-charges exactly the instructions executed up to and
  including the trapping one (prefix-summed cycle tables), and a block
  that could cross the fuel ceiling falls back to the per-step loop so
  HANG trips at the identical dynamic instruction.
* **superblock compilation** — chains of blocks linked by unconditional
  jumps into single-predecessor, phi-free successors are fused into one
  flat step sequence, so straight-line regions spanning several blocks
  pay one dispatch, one fuel precheck and one counter update.  Formation
  rules: the chain extends from a head block across ``jmp`` terminators
  only, each appended block must have exactly one predecessor, no phis,
  not be the function entry, not already be in the chain, and contain no
  calls (calls re-enter the interpreter and must see exact counters).

Fault-injection trials keep the batched tiers almost everywhere via the
``hook_index`` contract: a ``step_hook`` whose observable effects are
confined to dynamic indices ``>= hook_index`` until its ``fired`` property
turns True (both SEU injectors satisfy this) lets the interpreter skip
hook dispatch for every (super)block that ends before the window opens
and for everything after the hook has fired — the hook is called for
every instruction inside the live window, exactly like the reference
semantics.  :class:`repro.ir.refinterp.ReferenceInterpreter` keeps the
original dispatch loop as a differential oracle and perf baseline, and
:mod:`repro.ir.lockstep` advances many faulted trials through these same
compiled superblocks in lockstep.
"""

from __future__ import annotations

import enum
import math
import operator
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DetectionTrap, FuelExhausted, InterpreterError, TrapError
from repro.ir.block import BasicBlock
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Argument, Constant, Value


class ExecutionStatus(enum.Enum):
    """How a program run ended."""

    OK = "ok"
    TRAP = "trap"          # division by zero, bad memory access, ...
    HANG = "hang"          # instruction budget exhausted
    DETECTED = "detected"  # a protection pass's trap fired


@dataclass
class ExecutionResult:
    """Outcome of one program execution.

    Attributes:
        status: how the run ended.
        value: return value of the entry function (None on trap/hang).
        cycles: total cycles charged by the cost model.
        instructions: dynamic instruction count.
        block_trace: (function, block) names in execution order, when
            tracing was enabled.
        trap_reason: human-readable trap description.
    """

    status: ExecutionStatus
    value: int | float | None
    cycles: int
    instructions: int
    block_trace: list[tuple[str, str]] = field(default_factory=list)
    trap_reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.OK


@dataclass
class Frame:
    """One activation record: SSA environment of a function invocation."""

    func: Function
    env: dict[str, int | float]
    block: BasicBlock
    prev_block: BasicBlock | None = None


#: Called before each instruction: (interpreter, frame, instruction, dynamic
#: index).  May mutate frame.env / interpreter.heap to model an SEU.
StepHook = Callable[["Interpreter", Frame, Instruction, int], None]


class _Return:
    """Control-flow marker: the frame returned ``value``."""

    __slots__ = ("value",)

    def __init__(self, value: int | float | None) -> None:
        self.value = value


#: A compiled step: ``(interp, frame) -> None | _CONTINUE | _Return``.
#: ``None`` falls through to the next step; ``_CONTINUE`` means a branch was
#: taken (re-enter the block loop); ``_Return`` carries the frame's result.
_Step = Callable[["Interpreter", Frame], object]


class _BlockCode:
    """Compiled form of one basic block.

    Attributes:
        phis: ``(phi, cost, incoming)`` per leading phi, where ``incoming``
            maps predecessor block (by identity) to an operand accessor.
        steps: ``(instr, cost, step)`` per body instruction.  The original
            :class:`Instruction` rides along for step hooks.
        has_call: whether any body instruction is a call.  Calls re-enter
            the interpreter, which must observe exact counters, so blocks
            with calls never run in batched mode.
    """

    __slots__ = ("phis", "steps", "has_call")

    def __init__(
        self,
        phis: list[tuple[Instruction, int, dict[BasicBlock, Callable]]],
        steps: tuple[tuple[Instruction, int, _Step], ...],
        has_call: bool,
    ) -> None:
        self.phis = phis
        self.steps = steps
        self.has_call = has_call


class _SuperCode:
    """Compiled form of one superblock: a fused chain of basic blocks.

    The chain starts at ``head`` and extends across unconditional jumps
    into phi-free single-predecessor successors.  ``body`` is the flat
    bare-step sequence of every chain member (intermediate ``jmp``
    terminators included — they keep ``frame.block``/``prev_block``
    honest and cost cycles like any instruction); ``term`` is the final
    block's terminator step.

    Exact accounting data for batched execution:

    * ``phi_prefix[j]`` — cycles of the head's first ``j`` phis;
    * ``body_prefix[k]`` — cycles of the first ``k`` body steps;
    * ``weight`` — total dynamic instructions (phis + body + terminator);
    * ``total_cycles`` — total cycles of a full pass through the chain;
    * ``fast_ok`` — False when the head block contains a call (the chain
      never *extends* into call blocks, but a call in the head itself
      means this superblock must always run on the per-step path).
    """

    __slots__ = (
        "head", "blocks", "phis", "n_phis", "phi_prefix", "body",
        "body_prefix", "term", "weight", "total_cycles", "fast_ok",
    )

    def __init__(
        self,
        head: BasicBlock,
        blocks: tuple[BasicBlock, ...],
        phis: list[tuple[Instruction, int, dict[BasicBlock, Callable]]],
        body: tuple[_Step, ...],
        body_prefix: tuple[int, ...],
        term: _Step,
        term_cost: int,
        fast_ok: bool,
    ) -> None:
        self.head = head
        self.blocks = blocks
        self.phis = phis
        self.n_phis = len(phis)
        prefix = [0]
        for _phi, cost, _incoming in phis:
            prefix.append(prefix[-1] + cost)
        self.phi_prefix = tuple(prefix)
        self.body = body
        self.body_prefix = body_prefix
        self.term = term
        self.weight = self.n_phis + len(body) + 1
        self.total_cycles = (
            self.phi_prefix[-1] + body_prefix[-1] + term_cost
        )
        self.fast_ok = fast_ok


class Interpreter:
    """Executes IR modules.

    Attributes:
        module: the module under execution.
        cost_model: per-instruction cycle charges.
        heap: flat list of 8-byte cells shared by all frames.
        fuel: maximum dynamic instructions before declaring a hang.

    Args:
        code_cache: optional dict reused across interpreter instances to
            share compiled blocks.  Callers must only share a cache between
            interpreters with the same module (not mutated in between) and
            the same cost model — fault-injection campaigns satisfy both.
        trace_hook: optional ``(func_name, block_name)`` callback fired on
            every block entry (the observability layer's block-transition
            tracing).  Costs one attribute read per block when None, so
            the compiled fast path is preserved in disabled mode.
        hook_index: quiescence contract for ``step_hook``: the hook is a
            pure no-op for every dynamic instruction index below
            ``hook_index`` and, once its ``fired`` property is True, for
            every index after.  With this promise the interpreter skips
            hook dispatch outside the live window and runs batched
            (super)blocks there; inside the window the hook is called for
            every instruction, exactly like the reference loop.  Leave
            None for hooks without the contract (checkpoints, watchdogs)
            — they are then called on every instruction.
    """

    def __init__(
        self,
        module: Module,
        cost_model: CostModel = CORTEX_A53,
        fuel: int = 5_000_000,
        record_trace: bool = False,
        step_hook: StepHook | None = None,
        code_cache: dict[BasicBlock, _BlockCode] | None = None,
        trace_hook: Callable[[str, str], None] | None = None,
        hook_index: int | None = None,
    ) -> None:
        self.module = module
        self.cost_model = cost_model
        self.fuel = fuel
        self.record_trace = record_trace
        self.step_hook = step_hook
        self.trace_hook = trace_hook
        self.hook_index = hook_index
        self.heap: list[int | float] = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace: list[tuple[str, str]] = []
        self.frames: list[Frame] = []
        self._code: dict = (
            code_cache if code_cache is not None else {}
        )
        # Superblocks and predecessor counts live in nested maps under
        # reserved string keys so a shared ``code_cache`` carries all
        # three compilation tiers (block lookups stay keyed by the
        # BasicBlock itself, with no per-dispatch tuple allocation).
        supers = self._code.get("__supers__")
        if supers is None:
            supers = self._code["__supers__"] = {}
        self._supers: dict[BasicBlock, _SuperCode] = supers
        preds = self._code.get("__preds__")
        if preds is None:
            preds = self._code["__preds__"] = {}
        self._preds: dict[Function, dict[BasicBlock, int]] = preds

    # -- public API -----------------------------------------------------------

    def run(self, func_name: str, args: list[int | float]) -> ExecutionResult:
        """Execute ``func_name`` with ``args`` and classify the outcome."""
        self.heap = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace = []
        self.frames = []
        func = self.module.function(func_name)
        try:
            value = self._call(func, args)
            status, reason = ExecutionStatus.OK, ""
        except DetectionTrap as exc:
            value, status, reason = None, ExecutionStatus.DETECTED, str(exc)
        except TrapError as exc:
            value, status, reason = None, ExecutionStatus.TRAP, str(exc)
        except FuelExhausted as exc:
            value, status, reason = None, ExecutionStatus.HANG, str(exc)
        return ExecutionResult(
            status=status,
            value=value,
            cycles=self.cycles,
            instructions=self.instructions,
            block_trace=self.block_trace,
            trap_reason=reason,
        )

    def resume(
        self,
        func_name: str,
        block_name: str,
        env: dict[str, int | float],
        heap: list[int | float],
        cycles: int = 0,
        instructions: int = 0,
    ) -> ExecutionResult:
        """Resume execution from a single-frame checkpoint.

        The checkpoint must have been taken at a *safe point*: the start
        of a block's body, after the block's phis were applied to ``env``
        (this is where :class:`repro.recover.checkpoint.CheckpointHook`
        fires).  Phi evaluation of the resumed block is therefore skipped —
        re-running phis against a post-phi environment is not idempotent
        (e.g. a loop-carried swap).  Cycle and instruction counters pick up
        from the checkpointed values so overhead accounting stays honest.
        """
        self.heap = list(heap)
        self.cycles = cycles
        self.instructions = instructions
        self.block_trace = []
        self.frames = []
        func = self.module.function(func_name)
        frame = Frame(func=func, env=dict(env), block=func.block(block_name))
        self.frames.append(frame)
        try:
            try:
                value = self._run_frame(frame, skip_phis_once=True)
            finally:
                self.frames.pop()
            status, reason = ExecutionStatus.OK, ""
        except DetectionTrap as exc:
            value, status, reason = None, ExecutionStatus.DETECTED, str(exc)
        except TrapError as exc:
            value, status, reason = None, ExecutionStatus.TRAP, str(exc)
        except FuelExhausted as exc:
            value, status, reason = None, ExecutionStatus.HANG, str(exc)
        return ExecutionResult(
            status=status,
            value=value,
            cycles=self.cycles,
            instructions=self.instructions,
            block_trace=self.block_trace,
            trap_reason=reason,
        )

    #: Heap ceiling in cells (8 MiB-equivalent).  A corrupted allocation
    #: size (e.g. a flipped high bit of an alloc count) must trap like an
    #: out-of-memory kill, not exhaust the host.
    MAX_HEAP_CELLS = 1 << 20

    def alloc_cells(self, count: int) -> int:
        """Allocate ``count`` zeroed heap cells; returns base address."""
        if count < 0:
            raise TrapError(f"negative allocation of {count} cells")
        if len(self.heap) + count > self.MAX_HEAP_CELLS:
            raise TrapError(
                f"allocation of {count} cells exceeds the heap limit"
            )
        base = len(self.heap)
        self.heap.extend([0] * count)
        return base

    # -- execution core --------------------------------------------------------

    def _call(self, func: Function, args: list[int | float]) -> int | float | None:
        if len(args) != len(func.args):
            raise InterpreterError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        env: dict[str, int | float] = {}
        for formal, actual in zip(func.args, args):
            env[formal.name] = _coerce(formal.type, actual)
        frame = Frame(func=func, env=env, block=func.entry)
        self.frames.append(frame)
        try:
            return self._run_frame(frame)
        finally:
            self.frames.pop()

    def _run_frame(
        self, frame: Frame, skip_phis_once: bool = False
    ) -> int | float | None:
        trace_hook = self.trace_hook
        plain = not self.record_trace and trace_hook is None
        if plain and not skip_phis_once:
            # Hot path: no per-block observability, so whole superblocks
            # can run batched (counter updates and fuel checks hoisted).
            if self.step_hook is None:
                # Hottest path (golden runs): dispatch inlined, no hook
                # checks at all.
                supers = self._supers
                fuel = self.fuel
                run_super = self._run_super
                run_block = self._run_block
                while True:
                    sb = supers.get(frame.block)
                    if sb is None:
                        sb = self._compile_super(frame.block)
                    if sb.fast_ok and self.instructions + sb.weight <= fuel:
                        result = run_super(frame, sb)
                    else:
                        result = run_block(frame)
                    if result is _CONTINUE:
                        continue
                    return result.value  # type: ignore[union-attr]
            advance = self._advance_plain
            while True:
                result = advance(frame)
                if result is _CONTINUE:
                    continue
                return result.value  # type: ignore[union-attr]
        while True:
            if self.record_trace:
                self.block_trace.append((frame.func.name, frame.block.name))
            if trace_hook is not None:
                trace_hook(frame.func.name, frame.block.name)
            result = self._run_block(frame, skip_phis=skip_phis_once)
            skip_phis_once = False
            if result is _CONTINUE:
                continue
            return result.value  # type: ignore[union-attr]

    def _advance_plain(self, frame: Frame, sb: _SuperCode | None = None):
        """Execute one superblock (or one exact block) of ``frame``.

        Returns ``_CONTINUE`` or a ``_Return`` like the step closures.
        Chooses the batched superblock runner when the fuel ceiling
        cannot be crossed and the step hook is provably quiescent for
        the superblock's whole span; otherwise runs one block on the
        exact per-step path.  Callers must guarantee that per-block
        tracing is disabled (``record_trace`` off, no ``trace_hook``).
        """
        if sb is None or sb.head is not frame.block:
            block = frame.block
            sb = self._supers.get(block)
            if sb is None:
                sb = self._compile_super(block)
        if sb.fast_ok and self.instructions + sb.weight <= self.fuel:
            hook = self.step_hook
            if hook is None or (
                self.hook_index is not None
                and (hook.fired
                     or self.instructions + sb.weight <= self.hook_index)
            ):
                return self._run_super(frame, sb)
        return self._run_block(frame)

    def _run_super(self, frame: Frame, sb: _SuperCode) -> object:
        """Batched execution of one superblock (no hooks, fuel prefits).

        Counters are charged in bulk after the chain completes; a step
        that traps is re-charged exactly: the reference loop increments
        counters *before* executing a step (so a trapping instruction is
        counted) but evaluates a phi's incoming operand before counting
        it (so a trapping phi read is not).
        """
        env = frame.env
        phis = sb.phis
        if phis:
            prev = frame.prev_block
            if sb.n_phis == 1:
                # One phi needs no parallel staging; a trapping incoming
                # read charges nothing, same as j == 0 below.
                phi, _cost, incoming = phis[0]
                if prev is None:
                    raise InterpreterError(
                        f"phi {phi.ref()} reached without a "
                        f"predecessor edge"
                    )
                get = incoming.get(prev)
                if get is None:
                    raise TrapError(
                        f"phi {phi.ref()}: no incoming entry for edge "
                        f"from ^{prev.name} (control-flow corruption?)"
                    )
                env[phi.name] = get(env)
                return self._run_super_body(frame, sb)
            staged: dict[str, int | float] = {}
            j = 0
            try:
                for phi, _cost, incoming in phis:
                    if prev is None:
                        raise InterpreterError(
                            f"phi {phi.ref()} reached without a "
                            f"predecessor edge"
                        )
                    get = incoming.get(prev)
                    if get is None:
                        raise TrapError(
                            f"phi {phi.ref()}: no incoming entry for edge "
                            f"from ^{prev.name} (control-flow corruption?)"
                        )
                    staged[phi.name] = get(env)
                    j += 1
            except BaseException:
                self.instructions += j
                self.cycles += sb.phi_prefix[j]
                raise
            env.update(staged)
        return self._run_super_body(frame, sb)

    def _run_super_body(self, frame: Frame, sb: _SuperCode) -> object:
        """Run a superblock's flat body + terminator, phis already applied."""
        i = 0
        try:
            for step in sb.body:
                step(self, frame)
                i += 1
        except BaseException:
            self.instructions += sb.n_phis + i + 1
            self.cycles += sb.phi_prefix[-1] + sb.body_prefix[i + 1]
            raise
        self.instructions += sb.weight
        self.cycles += sb.total_cycles
        return sb.term(self, frame)

    def _run_block(self, frame: Frame, skip_phis: bool = False) -> object:
        block = frame.block
        code = self._code.get(block)
        if code is None:
            code = self._compile_block(block)

        # Phi nodes evaluate in parallel against the edge just taken.
        if code.phis and not skip_phis:
            prev = frame.prev_block
            staged: dict[str, int | float] = {}
            fuel = self.fuel
            for phi, cost, incoming in code.phis:
                if prev is None:
                    raise InterpreterError(
                        f"phi {phi.ref()} reached without a predecessor edge"
                    )
                get = incoming.get(prev)
                if get is None:
                    raise TrapError(
                        f"phi {phi.ref()}: no incoming entry for edge from "
                        f"^{prev.name} (control-flow corruption?)"
                    )
                staged[phi.name] = get(frame.env)
                self.instructions += 1
                self.cycles += cost
                if self.instructions > fuel:
                    raise FuelExhausted(
                        f"instruction budget of {fuel} exhausted"
                    )
            frame.env.update(staged)

        hook = self.step_hook
        fuel = self.fuel
        for instr, cost, step in code.steps:
            if hook is not None:
                hook(self, frame, instr, self.instructions)
            self.instructions += 1
            self.cycles += cost
            if self.instructions > fuel:
                raise FuelExhausted(
                    f"instruction budget of {fuel} exhausted"
                )
            result = step(self, frame)
            if result is not None:
                return result
        raise InterpreterError(
            f"@{frame.func.name}:^{frame.block.name} fell off the end"
        )  # pragma: no cover - verifier guarantees terminators

    # -- block compilation -----------------------------------------------------

    def _compile_block(self, block: BasicBlock) -> _BlockCode:
        cost = self.cost_model.cost
        phis: list[tuple[Instruction, int, dict[BasicBlock, Callable]]] = []
        for phi in block.phis:
            incoming: dict[BasicBlock, Callable] = {}
            for value, pred in zip(phi.operands, phi.block_targets):
                # First entry wins, matching the reference lookup order.
                if pred not in incoming:
                    incoming[pred] = _operand_getter(value)
            phis.append((phi, cost(phi), incoming))
        steps = tuple(
            (instr, cost(instr), self._compile_step(block, instr))
            for instr in block.body
        )
        has_call = any(
            instr.opcode is Opcode.CALL for instr in block.body
        )
        code = _BlockCode(phis, steps, has_call)
        self._code[block] = code
        return code

    # -- superblock formation --------------------------------------------------

    def _pred_counts(self, func: Function) -> dict[BasicBlock, int]:
        """Predecessor-edge counts per block, cached per function."""
        counts = self._preds.get(func)
        if counts is None:
            counts = {block: 0 for block in func.blocks}
            for block in func.blocks:
                if block.is_terminated:
                    for target in block.terminator.block_targets:
                        counts[target] = counts.get(target, 0) + 1
            self._preds[func] = counts
        return counts

    def _compile_super(self, head: BasicBlock) -> _SuperCode:
        """Fuse the jmp-chain starting at ``head`` into one superblock.

        Formation rules (see module docstring): extend across ``jmp``
        terminators into successors that have exactly one predecessor,
        no phis, no calls, are not the function entry and are not
        already part of the chain.
        """
        func = head.parent
        assert func is not None
        preds = self._pred_counts(func)
        chain = [head]
        seen = {head}
        current = head
        while True:
            code = self._code.get(current)
            if code is None:
                code = self._compile_block(current)
            term = current.terminator
            if term.opcode is not Opcode.JMP:
                break
            target = term.block_targets[0]
            if (
                target in seen
                or target is func.entry
                or preds.get(target, 0) != 1
                or target.phis
            ):
                break
            target_code = self._code.get(target)
            if target_code is None:
                target_code = self._compile_block(target)
            if target_code.has_call:
                break
            chain.append(target)
            seen.add(target)
            current = target

        head_code = self._code[head]
        body: list[_Step] = []
        prefix = [0]
        for block in chain:
            code = self._code[block]
            # All but the final block contribute every step (their jmp
            # terminators included); the final block keeps its terminator
            # out of the flat body so its result is returned.
            last = code.steps[:-1] if block is chain[-1] else code.steps
            for _instr, cost, step in last:
                body.append(step)
                prefix.append(prefix[-1] + cost)
        _term_instr, term_cost, term_step = self._code[chain[-1]].steps[-1]
        sb = _SuperCode(
            head=head,
            blocks=tuple(chain),
            phis=head_code.phis,
            body=tuple(body),
            body_prefix=tuple(prefix),
            term=term_step,
            term_cost=term_cost,
            fast_ok=not head_code.has_call,
        )
        self._supers[head] = sb
        return sb

    def _compile_step(self, block: BasicBlock, instr: Instruction) -> _Step:
        op = instr.opcode
        ops = instr.operands
        name = instr.name
        type_ = instr.type

        if op is Opcode.RET:
            if ops:
                get = _operand_getter(ops[0])

                def step_ret(interp: Interpreter, frame: Frame) -> object:
                    return _Return(get(frame.env))

                return step_ret
            return lambda interp, frame: _RETURN_NONE

        if op is Opcode.TRAP:
            func_name = block.parent.name if block.parent else "?"
            message = f"protection trap in @{func_name}:^{block.name}"

            def step_trap(interp: Interpreter, frame: Frame) -> object:
                raise DetectionTrap(message)

            return step_trap

        if op is Opcode.JMP:
            target = instr.block_targets[0]

            def step_jmp(interp: Interpreter, frame: Frame) -> object:
                frame.prev_block = frame.block
                frame.block = target
                return _CONTINUE

            return step_jmp

        if op is Opcode.BR:
            cond = _operand_getter(ops[0])
            then_block, else_block = instr.block_targets

            def step_br(interp: Interpreter, frame: Frame) -> object:
                target = then_block if cond(frame.env) else else_block
                frame.prev_block = frame.block
                frame.block = target
                return _CONTINUE

            return step_br

        if op in _INT_ARITH:
            a, b = _operand_getter(ops[0]), _operand_getter(ops[1])
            # Wrapping is inlined with the type's mask/max/span captured
            # at compile time: ``Type.wrap`` re-derives them through
            # property lookups on every call, which dominates the hot
            # loop.  Semantics are identical (two's-complement reduce).
            mask, smax, span = _wrap_params(type_)
            if op is Opcode.ADD:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) + int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            elif op is Opcode.SUB:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) - int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            elif op is Opcode.MUL:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) * int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            elif op is Opcode.AND:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) & int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            elif op is Opcode.OR:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) | int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            elif op is Opcode.XOR:
                def step(interp, frame):
                    env = frame.env
                    v = (int(a(env)) ^ int(b(env))) & mask
                    env[name] = v - span if v > smax else v
            else:
                # Divisions and shifts share the reference helper: they are
                # rare in the workloads and carry trap/masking subtleties.
                def step(interp, frame, op=op, type_=type_):
                    env = frame.env
                    env[name] = _int_arith(
                        op, type_, int(a(env)), int(b(env))
                    )
            return step

        if op in _FLOAT_ARITH:
            a, b = _operand_getter(ops[0]), _operand_getter(ops[1])
            if op is Opcode.FADD:
                def step(interp, frame):
                    env = frame.env
                    env[name] = float(a(env)) + float(b(env))
            elif op is Opcode.FSUB:
                def step(interp, frame):
                    env = frame.env
                    env[name] = float(a(env)) - float(b(env))
            elif op is Opcode.FMUL:
                def step(interp, frame):
                    env = frame.env
                    env[name] = float(a(env)) * float(b(env))
            else:
                def step(interp, frame):
                    env = frame.env
                    env[name] = _float_arith(
                        Opcode.FDIV, float(a(env)), float(b(env))
                    )
            return step

        if op is Opcode.ICMP:
            assert instr.predicate is not None
            cmp = _PREDICATE_OPS[instr.predicate]
            a, b = _operand_getter(ops[0]), _operand_getter(ops[1])

            def step_icmp(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = int(cmp(int(a(env)), int(b(env))))

            return step_icmp

        if op is Opcode.FCMP:
            assert instr.predicate is not None
            cmp = _PREDICATE_OPS[instr.predicate]
            nan_result = int(instr.predicate is Predicate.NE)
            a, b = _operand_getter(ops[0]), _operand_getter(ops[1])
            isnan = math.isnan

            def step_fcmp(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                av, bv = float(a(env)), float(b(env))
                if isnan(av) or isnan(bv):
                    env[name] = nan_result
                else:
                    env[name] = int(cmp(av, bv))

            return step_fcmp

        if op is Opcode.SITOFP:
            a = _operand_getter(ops[0])

            def step_sitofp(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = float(int(a(env)))

            return step_sitofp

        if op is Opcode.FPTOSI:
            a = _operand_getter(ops[0])
            mask, smax, span = _wrap_params(type_)

            def step_fptosi(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                value = float(a(env))
                if math.isnan(value) or math.isinf(value):
                    raise TrapError(f"fptosi of non-finite value {value}")
                v = int(value) & mask
                env[name] = v - span if v > smax else v

            return step_fptosi

        if op is Opcode.ZEXT:
            a = _operand_getter(ops[0])
            src_mask = (1 << ops[0].type.bits) - 1
            mask, smax, span = _wrap_params(type_)

            def step_zext(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                v = int(a(env)) & src_mask & mask
                env[name] = v - span if v > smax else v

            return step_zext

        if op is Opcode.TRUNC:
            a = _operand_getter(ops[0])
            mask, smax, span = _wrap_params(type_)

            def step_trunc(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                v = int(a(env)) & mask
                env[name] = v - span if v > smax else v

            return step_trunc

        if op is Opcode.ALLOC:
            a = _operand_getter(ops[0])

            def step_alloc(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = interp.alloc_cells(int(a(env)))

            return step_alloc

        if op is Opcode.LOAD:
            a = _operand_getter(ops[0])
            if type_.is_float:
                def step_load(interp: Interpreter, frame: Frame) -> object:
                    env = frame.env
                    address = int(a(env))
                    heap = interp.heap
                    if not 0 <= address < len(heap):
                        raise TrapError(
                            f"load from invalid address {address}"
                        )
                    env[name] = float(heap[address])
            else:
                mask, smax, span = _wrap_params(type_)

                def step_load(interp: Interpreter, frame: Frame) -> object:
                    env = frame.env
                    address = int(a(env))
                    heap = interp.heap
                    if not 0 <= address < len(heap):
                        raise TrapError(
                            f"load from invalid address {address}"
                        )
                    v = int(heap[address]) & mask
                    env[name] = v - span if v > smax else v
            return step_load

        if op is Opcode.STORE:
            value_get = _operand_getter(ops[0])
            addr_get = _operand_getter(ops[1])

            def step_store(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                # Address before value: the reference path reads them in
                # this order, which fixes which trap fires first.
                address = int(addr_get(env))
                value = value_get(env)
                heap = interp.heap
                if not 0 <= address < len(heap):
                    raise TrapError(f"store to invalid address {address}")
                heap[address] = value

            return step_store

        if op is Opcode.GEP:
            a, b = _operand_getter(ops[0]), _operand_getter(ops[1])

            def step_gep(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = int(a(env)) + int(b(env))

            return step_gep

        if op is Opcode.SELECT:
            cond = _operand_getter(ops[0])
            a, b = _operand_getter(ops[1]), _operand_getter(ops[2])

            def step_select(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = a(env) if cond(env) else b(env)

            return step_select

        if op is Opcode.MAG:
            a = _operand_getter(ops[0])
            k = instr.imm or 0

            def step_mag(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = magnitude(float(a(env)), k)

            return step_mag

        if op is Opcode.SIGN:
            a = _operand_getter(ops[0])
            copysign = math.copysign

            def step_sign(interp: Interpreter, frame: Frame) -> object:
                env = frame.env
                env[name] = int(copysign(1.0, float(a(env))) < 0)

            return step_sign

        if op is Opcode.CALL:
            assert instr.callee is not None
            callee = self.module.function(instr.callee)
            getters = [_operand_getter(a) for a in ops]
            if instr.defines_value:
                def step_call(interp: Interpreter, frame: Frame) -> object:
                    env = frame.env
                    result = interp._call(callee, [g(env) for g in getters])
                    env[name] = 0 if result is None else result
            else:
                def step_call(interp: Interpreter, frame: Frame) -> object:
                    env = frame.env
                    interp._call(callee, [g(env) for g in getters])
            return step_call

        raise InterpreterError(f"unhandled opcode {op}")  # pragma: no cover


def _wrap_params(type_: Type) -> tuple[int, int, int]:
    """``(mask, signed_max, span)`` for inlined two's-complement wrapping."""
    bits = type_.bits
    return (1 << bits) - 1, (1 << (bits - 1)) - 1, 1 << bits


def _operand_getter(value: Value) -> Callable[[dict], int | float]:
    """Compile one operand to an environment accessor."""
    if isinstance(value, Constant):
        constant = value.value

        def get_const(env: dict) -> int | float:
            return constant

        return get_const
    if isinstance(value, (Argument, Instruction)):
        name = value.name
        ref = value.ref()

        def get_named(env: dict) -> int | float:
            try:
                return env[name]
            except KeyError:
                raise TrapError(f"read of undefined value {ref}") from None

        return get_named
    raise InterpreterError(f"unknown value kind {value!r}")


#: Magnitude of zero: below the smallest subnormal exponent (2**-1074).
MAG_ZERO = -1_100
#: Magnitude sentinel for infinities: above the largest finite exponent.
MAG_INF = 1_100
#: Magnitude sentinel for NaN: distinct from every finite/inf magnitude.
MAG_NAN = 2_200


def magnitude(x: float, k: int = 0) -> int:
    """Integer order of magnitude: ``floor(2**k * log2|x|)``.

    With ``k = 0`` this is the binary exponent (the paper's base scheme,
    protecting exponent and sign via a separate sign check); larger ``k``
    folds the top ``k`` mantissa bits into the magnitude, tightening the
    detectable relative error to ~2**-k.  Zero, infinity and NaN map to
    sentinels outside the finite exponent range so that flips producing
    non-finite values are always caught.
    """
    if math.isnan(x):
        return MAG_NAN << k
    if math.isinf(x):
        return MAG_INF << k
    if x == 0.0:
        return MAG_ZERO << k
    mantissa, exponent = math.frexp(abs(x))  # mantissa in [0.5, 1)
    # log2|x| = exponent + log2(mantissa), with log2(mantissa) in [-1, 0).
    return math.floor((exponent + math.log2(mantissa)) * (1 << k))


_CONTINUE = object()
_RETURN_NONE = _Return(None)

_INT_ARITH = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
})
_FLOAT_ARITH = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})

_PREDICATE_OPS = {
    Predicate.EQ: operator.eq,
    Predicate.NE: operator.ne,
    Predicate.LT: operator.lt,
    Predicate.LE: operator.le,
    Predicate.GT: operator.gt,
    Predicate.GE: operator.ge,
}


def _coerce(type_: Type, value: int | float) -> int | float:
    if type_.is_float:
        return float(value)
    if type_.is_pointer:
        return int(value)
    return type_.wrap(int(value))


def _int_arith(op: Opcode, type_: Type, a: int, b: int) -> int:
    bits = type_.bits
    if op is Opcode.ADD:
        return type_.wrap(a + b)
    if op is Opcode.SUB:
        return type_.wrap(a - b)
    if op is Opcode.MUL:
        return type_.wrap(a * b)
    if op is Opcode.SDIV:
        if b == 0:
            raise TrapError("integer division by zero")
        return type_.wrap(int(a / b))  # trunc-toward-zero, like hardware
    if op is Opcode.SREM:
        if b == 0:
            raise TrapError("integer remainder by zero")
        return type_.wrap(a - int(a / b) * b)
    if op is Opcode.AND:
        return type_.wrap(a & b)
    if op is Opcode.OR:
        return type_.wrap(a | b)
    if op is Opcode.XOR:
        return type_.wrap(a ^ b)
    shift = b & (bits - 1) if bits > 1 else 0
    unsigned = a & ((1 << bits) - 1)
    if op is Opcode.SHL:
        return type_.wrap(unsigned << shift)
    if op is Opcode.LSHR:
        return type_.wrap(unsigned >> shift)
    if op is Opcode.ASHR:
        return type_.wrap(a >> shift)
    raise AssertionError(op)  # pragma: no cover


def _float_arith(op: Opcode, a: float, b: float) -> float:
    if op is Opcode.FADD:
        return a + b
    if op is Opcode.FSUB:
        return a - b
    if op is Opcode.FMUL:
        return a * b
    if op is Opcode.FDIV:
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return math.nan
            sign = math.copysign(1.0, a) * math.copysign(1.0, b)
            return math.inf * sign
        return a / b
    raise AssertionError(op)  # pragma: no cover


def _compare(pred: Predicate, a: int | float, b: int | float) -> bool:
    if pred is Predicate.EQ:
        return a == b
    if pred is Predicate.NE:
        return a != b
    if pred is Predicate.LT:
        return a < b
    if pred is Predicate.LE:
        return a <= b
    if pred is Predicate.GT:
        return a > b
    return a >= b
