"""IR interpreter with cycle accounting, tracing and fault hooks.

This is the execution substrate for the SEU experiments: programs run under
an instruction budget (hang detection), every dynamic instruction is charged
cycles from a :class:`~repro.ir.costmodel.CostModel`, the executed-block
trace can be recorded (consumed by the DMR control-flow monitor), and a
``step_hook`` fires between instructions so fault injectors can corrupt live
register state at a precise dynamic instruction index — the same granularity
the paper's QEMU framework provides (sect. 4.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DetectionTrap, FuelExhausted, InterpreterError, TrapError
from repro.ir.block import BasicBlock
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.module import Module
from repro.ir.types import Type
from repro.ir.values import Argument, Constant, Value


class ExecutionStatus(enum.Enum):
    """How a program run ended."""

    OK = "ok"
    TRAP = "trap"          # division by zero, bad memory access, ...
    HANG = "hang"          # instruction budget exhausted
    DETECTED = "detected"  # a protection pass's trap fired


@dataclass
class ExecutionResult:
    """Outcome of one program execution.

    Attributes:
        status: how the run ended.
        value: return value of the entry function (None on trap/hang).
        cycles: total cycles charged by the cost model.
        instructions: dynamic instruction count.
        block_trace: (function, block) names in execution order, when
            tracing was enabled.
        trap_reason: human-readable trap description.
    """

    status: ExecutionStatus
    value: int | float | None
    cycles: int
    instructions: int
    block_trace: list[tuple[str, str]] = field(default_factory=list)
    trap_reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.OK


@dataclass
class Frame:
    """One activation record: SSA environment of a function invocation."""

    func: Function
    env: dict[str, int | float]
    block: BasicBlock
    prev_block: BasicBlock | None = None


#: Called before each instruction: (interpreter, frame, instruction, dynamic
#: index).  May mutate frame.env / interpreter.heap to model an SEU.
StepHook = Callable[["Interpreter", Frame, Instruction, int], None]


class Interpreter:
    """Executes IR modules.

    Attributes:
        module: the module under execution.
        cost_model: per-instruction cycle charges.
        heap: flat list of 8-byte cells shared by all frames.
        fuel: maximum dynamic instructions before declaring a hang.
    """

    def __init__(
        self,
        module: Module,
        cost_model: CostModel = CORTEX_A53,
        fuel: int = 5_000_000,
        record_trace: bool = False,
        step_hook: StepHook | None = None,
    ) -> None:
        self.module = module
        self.cost_model = cost_model
        self.fuel = fuel
        self.record_trace = record_trace
        self.step_hook = step_hook
        self.heap: list[int | float] = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace: list[tuple[str, str]] = []
        self.frames: list[Frame] = []

    # -- public API -----------------------------------------------------------

    def run(self, func_name: str, args: list[int | float]) -> ExecutionResult:
        """Execute ``func_name`` with ``args`` and classify the outcome."""
        self.heap = []
        self.cycles = 0
        self.instructions = 0
        self.block_trace = []
        self.frames = []
        func = self.module.function(func_name)
        try:
            value = self._call(func, args)
            status, reason = ExecutionStatus.OK, ""
        except DetectionTrap as exc:
            value, status, reason = None, ExecutionStatus.DETECTED, str(exc)
        except TrapError as exc:
            value, status, reason = None, ExecutionStatus.TRAP, str(exc)
        except FuelExhausted as exc:
            value, status, reason = None, ExecutionStatus.HANG, str(exc)
        return ExecutionResult(
            status=status,
            value=value,
            cycles=self.cycles,
            instructions=self.instructions,
            block_trace=self.block_trace,
            trap_reason=reason,
        )

    def resume(
        self,
        func_name: str,
        block_name: str,
        env: dict[str, int | float],
        heap: list[int | float],
        cycles: int = 0,
        instructions: int = 0,
    ) -> ExecutionResult:
        """Resume execution from a single-frame checkpoint.

        The checkpoint must have been taken at a *safe point*: the start
        of a block's body, after the block's phis were applied to ``env``
        (this is where :class:`repro.recover.checkpoint.CheckpointHook`
        fires).  Phi evaluation of the resumed block is therefore skipped —
        re-running phis against a post-phi environment is not idempotent
        (e.g. a loop-carried swap).  Cycle and instruction counters pick up
        from the checkpointed values so overhead accounting stays honest.
        """
        self.heap = list(heap)
        self.cycles = cycles
        self.instructions = instructions
        self.block_trace = []
        self.frames = []
        func = self.module.function(func_name)
        frame = Frame(func=func, env=dict(env), block=func.block(block_name))
        self.frames.append(frame)
        try:
            try:
                value = self._run_frame(frame, skip_phis_once=True)
            finally:
                self.frames.pop()
            status, reason = ExecutionStatus.OK, ""
        except DetectionTrap as exc:
            value, status, reason = None, ExecutionStatus.DETECTED, str(exc)
        except TrapError as exc:
            value, status, reason = None, ExecutionStatus.TRAP, str(exc)
        except FuelExhausted as exc:
            value, status, reason = None, ExecutionStatus.HANG, str(exc)
        return ExecutionResult(
            status=status,
            value=value,
            cycles=self.cycles,
            instructions=self.instructions,
            block_trace=self.block_trace,
            trap_reason=reason,
        )

    #: Heap ceiling in cells (8 MiB-equivalent).  A corrupted allocation
    #: size (e.g. a flipped high bit of an alloc count) must trap like an
    #: out-of-memory kill, not exhaust the host.
    MAX_HEAP_CELLS = 1 << 20

    def alloc_cells(self, count: int) -> int:
        """Allocate ``count`` zeroed heap cells; returns base address."""
        if count < 0:
            raise TrapError(f"negative allocation of {count} cells")
        if len(self.heap) + count > self.MAX_HEAP_CELLS:
            raise TrapError(
                f"allocation of {count} cells exceeds the heap limit"
            )
        base = len(self.heap)
        self.heap.extend([0] * count)
        return base

    # -- execution core --------------------------------------------------------

    def _call(self, func: Function, args: list[int | float]) -> int | float | None:
        if len(args) != len(func.args):
            raise InterpreterError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        env: dict[str, int | float] = {}
        for formal, actual in zip(func.args, args):
            env[formal.name] = _coerce(formal.type, actual)
        frame = Frame(func=func, env=env, block=func.entry)
        self.frames.append(frame)
        try:
            return self._run_frame(frame)
        finally:
            self.frames.pop()

    def _run_frame(
        self, frame: Frame, skip_phis_once: bool = False
    ) -> int | float | None:
        while True:
            if self.record_trace:
                self.block_trace.append((frame.func.name, frame.block.name))
            result = self._run_block(frame, skip_phis=skip_phis_once)
            skip_phis_once = False
            if result is not _CONTINUE:
                return result

    def _run_block(self, frame: Frame, skip_phis: bool = False) -> object:
        # Phi nodes evaluate in parallel against the edge just taken.
        phis = [] if skip_phis else frame.block.phis
        if phis:
            staged: dict[str, int | float] = {}
            for phi in phis:
                staged[phi.name] = self._phi_value(frame, phi)
                self._account(phi)
            frame.env.update(staged)

        for instr in frame.block.body:
            if self.step_hook is not None:
                self.step_hook(self, frame, instr, self.instructions)
            self._account(instr)
            op = instr.opcode
            if op is Opcode.RET:
                if instr.operands:
                    return self._value(frame, instr.operands[0])
                return None
            if op is Opcode.TRAP:
                raise DetectionTrap(
                    f"protection trap in @{frame.func.name}:"
                    f"^{frame.block.name}"
                )
            if op is Opcode.JMP:
                self._jump(frame, instr.block_targets[0])
                return _CONTINUE
            if op is Opcode.BR:
                cond = self._value(frame, instr.operands[0])
                target = instr.block_targets[0 if cond else 1]
                self._jump(frame, target)
                return _CONTINUE
            value = self._evaluate(frame, instr)
            if instr.defines_value:
                frame.env[instr.name] = value
        raise InterpreterError(
            f"@{frame.func.name}:^{frame.block.name} fell off the end"
        )  # pragma: no cover - verifier guarantees terminators

    def _jump(self, frame: Frame, target: BasicBlock) -> None:
        frame.prev_block = frame.block
        frame.block = target

    def _account(self, instr: Instruction) -> None:
        self.instructions += 1
        self.cycles += self.cost_model.cost(instr)
        if self.instructions > self.fuel:
            raise FuelExhausted(
                f"instruction budget of {self.fuel} exhausted"
            )

    def _phi_value(self, frame: Frame, phi: Instruction) -> int | float:
        if frame.prev_block is None:
            raise InterpreterError(
                f"phi {phi.ref()} reached without a predecessor edge"
            )
        for value, block in phi.phi_incoming():
            if block is frame.prev_block:
                return self._value(frame, value)
        raise TrapError(
            f"phi {phi.ref()}: no incoming entry for edge from "
            f"^{frame.prev_block.name} (control-flow corruption?)"
        )

    def _value(self, frame: Frame, value: Value) -> int | float:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, (Argument, Instruction)):
            try:
                return frame.env[value.name]
            except KeyError:
                raise TrapError(
                    f"read of undefined value {value.ref()}"
                ) from None
        raise InterpreterError(f"unknown value kind {value!r}")

    # -- per-opcode evaluation ---------------------------------------------------

    def _evaluate(self, frame: Frame, instr: Instruction) -> int | float:
        op = instr.opcode
        get = lambda i: self._value(frame, instr.operands[i])  # noqa: E731

        if op in _INT_ARITH:
            return _int_arith(op, instr.type, int(get(0)), int(get(1)))
        if op in _FLOAT_ARITH:
            return _float_arith(op, float(get(0)), float(get(1)))
        if op is Opcode.ICMP:
            assert instr.predicate is not None
            return int(_compare(instr.predicate, int(get(0)), int(get(1))))
        if op is Opcode.FCMP:
            assert instr.predicate is not None
            a, b = float(get(0)), float(get(1))
            if math.isnan(a) or math.isnan(b):
                return int(instr.predicate is Predicate.NE)
            return int(_compare(instr.predicate, a, b))
        if op is Opcode.SITOFP:
            return float(int(get(0)))
        if op is Opcode.FPTOSI:
            value = float(get(0))
            if math.isnan(value) or math.isinf(value):
                raise TrapError(f"fptosi of non-finite value {value}")
            return instr.type.wrap(int(value))
        if op is Opcode.ZEXT:
            raw = int(get(0)) & ((1 << instr.operands[0].type.bits) - 1)
            return instr.type.wrap(raw)
        if op is Opcode.TRUNC:
            return instr.type.wrap(int(get(0)))
        if op is Opcode.ALLOC:
            return self.alloc_cells(int(get(0)))
        if op is Opcode.LOAD:
            return self._load(int(get(0)), instr.type)
        if op is Opcode.STORE:
            self._store(int(get(1)), get(0))
            return 0
        if op is Opcode.GEP:
            return int(get(0)) + int(get(1))
        if op is Opcode.SELECT:
            return get(1) if get(0) else get(2)
        if op is Opcode.MAG:
            return magnitude(float(get(0)), instr.imm or 0)
        if op is Opcode.SIGN:
            return int(math.copysign(1.0, float(get(0))) < 0)
        if op is Opcode.CALL:
            assert instr.callee is not None
            callee = self.module.function(instr.callee)
            args = [self._value(frame, a) for a in instr.operands]
            result = self._call(callee, args)
            return 0 if result is None else result
        raise InterpreterError(f"unhandled opcode {op}")  # pragma: no cover

    def _load(self, address: int, type_: Type) -> int | float:
        if not 0 <= address < len(self.heap):
            raise TrapError(f"load from invalid address {address}")
        raw = self.heap[address]
        if type_.is_float:
            return float(raw)
        return type_.wrap(int(raw))

    def _store(self, address: int, value: int | float) -> None:
        if not 0 <= address < len(self.heap):
            raise TrapError(f"store to invalid address {address}")
        self.heap[address] = value


#: Magnitude of zero: below the smallest subnormal exponent (2**-1074).
MAG_ZERO = -1_100
#: Magnitude sentinel for infinities: above the largest finite exponent.
MAG_INF = 1_100
#: Magnitude sentinel for NaN: distinct from every finite/inf magnitude.
MAG_NAN = 2_200


def magnitude(x: float, k: int = 0) -> int:
    """Integer order of magnitude: ``floor(2**k * log2|x|)``.

    With ``k = 0`` this is the binary exponent (the paper's base scheme,
    protecting exponent and sign via a separate sign check); larger ``k``
    folds the top ``k`` mantissa bits into the magnitude, tightening the
    detectable relative error to ~2**-k.  Zero, infinity and NaN map to
    sentinels outside the finite exponent range so that flips producing
    non-finite values are always caught.
    """
    if math.isnan(x):
        return MAG_NAN << k
    if math.isinf(x):
        return MAG_INF << k
    if x == 0.0:
        return MAG_ZERO << k
    mantissa, exponent = math.frexp(abs(x))  # mantissa in [0.5, 1)
    # log2|x| = exponent + log2(mantissa), with log2(mantissa) in [-1, 0).
    return math.floor((exponent + math.log2(mantissa)) * (1 << k))


_CONTINUE = object()

_INT_ARITH = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
})
_FLOAT_ARITH = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})


def _coerce(type_: Type, value: int | float) -> int | float:
    if type_.is_float:
        return float(value)
    if type_.is_pointer:
        return int(value)
    return type_.wrap(int(value))


def _int_arith(op: Opcode, type_: Type, a: int, b: int) -> int:
    bits = type_.bits
    if op is Opcode.ADD:
        return type_.wrap(a + b)
    if op is Opcode.SUB:
        return type_.wrap(a - b)
    if op is Opcode.MUL:
        return type_.wrap(a * b)
    if op is Opcode.SDIV:
        if b == 0:
            raise TrapError("integer division by zero")
        return type_.wrap(int(a / b))  # trunc-toward-zero, like hardware
    if op is Opcode.SREM:
        if b == 0:
            raise TrapError("integer remainder by zero")
        return type_.wrap(a - int(a / b) * b)
    if op is Opcode.AND:
        return type_.wrap(a & b)
    if op is Opcode.OR:
        return type_.wrap(a | b)
    if op is Opcode.XOR:
        return type_.wrap(a ^ b)
    shift = b & (bits - 1) if bits > 1 else 0
    unsigned = a & ((1 << bits) - 1)
    if op is Opcode.SHL:
        return type_.wrap(unsigned << shift)
    if op is Opcode.LSHR:
        return type_.wrap(unsigned >> shift)
    if op is Opcode.ASHR:
        return type_.wrap(a >> shift)
    raise AssertionError(op)  # pragma: no cover


def _float_arith(op: Opcode, a: float, b: float) -> float:
    if op is Opcode.FADD:
        return a + b
    if op is Opcode.FSUB:
        return a - b
    if op is Opcode.FMUL:
        return a * b
    if op is Opcode.FDIV:
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return math.nan
            sign = math.copysign(1.0, a) * math.copysign(1.0, b)
            return math.inf * sign
        return a / b
    raise AssertionError(op)  # pragma: no cover


def _compare(pred: Predicate, a: int | float, b: int | float) -> bool:
    if pred is Predicate.EQ:
        return a == b
    if pred is Predicate.NE:
        return a != b
    if pred is Predicate.LT:
        return a < b
    if pred is Predicate.LE:
        return a <= b
    if pred is Predicate.GT:
        return a > b
    return a >= b
