"""Control-flow graph queries over IR functions.

The tunable-DMR pass walks the CFG to find the branch-governing values
(sect. 4.1 of the paper); the risk-analysis pass uses reverse postorder for
its dataflow propagation.
"""

from __future__ import annotations

import networkx as nx

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Opcode


def successors(block: BasicBlock) -> list[BasicBlock]:
    """Successor blocks of ``block`` (empty for ``ret``)."""
    term = block.terminator
    if term.opcode is Opcode.RET:
        return []
    return list(term.block_targets)


def predecessors(func: Function, block: BasicBlock) -> list[BasicBlock]:
    """Predecessor blocks of ``block`` within ``func``."""
    return [b for b in func.blocks if block in successors(b)]


def cfg_graph(func: Function) -> "nx.DiGraph":
    """The function's CFG as a :class:`networkx.DiGraph` over block names."""
    graph = nx.DiGraph()
    for block in func.blocks:
        graph.add_node(block.name)
    for block in func.blocks:
        for succ in successors(block):
            graph.add_edge(block.name, succ.name)
    return graph


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (forward dataflow order).

    Unreachable blocks are appended at the end in declaration order so that
    analyses still see every block.
    """
    seen: set[str] = set()
    postorder: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to avoid recursion limits on long CFG chains.
        stack: list[tuple[BasicBlock, int]] = [(block, 0)]
        seen.add(block.name)
        while stack:
            current, idx = stack.pop()
            succs = successors(current)
            if idx < len(succs):
                stack.append((current, idx + 1))
                nxt = succs[idx]
                if nxt.name not in seen:
                    seen.add(nxt.name)
                    stack.append((nxt, 0))
            else:
                postorder.append(current)

    visit(func.entry)
    order = list(reversed(postorder))
    order.extend(b for b in func.blocks if b.name not in seen)
    return order


def reachable_blocks(func: Function) -> set[str]:
    """Names of blocks reachable from the entry."""
    graph = cfg_graph(func)
    return {func.entry.name} | set(
        nx.descendants(graph, func.entry.name)
    )


def back_edges(func: Function) -> list[tuple[BasicBlock, BasicBlock]]:
    """CFG edges (src, dst) where dst dominates src — i.e. loop back edges."""
    from repro.ir.dominators import DominatorTree

    domtree = DominatorTree(func)
    edges = []
    for block in func.blocks:
        for succ in successors(block):
            if domtree.dominates(succ, block):
                edges.append((block, succ))
    return edges
