"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

Dominance is needed by the IR verifier (SSA defs must dominate uses) and by
the loop/back-edge detection used for SCC-level control-flow integrity.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.cfg import predecessors, reachable_blocks, reverse_postorder
from repro.ir.function import Function


class DominatorTree:
    """Immediate-dominator map for the reachable CFG of a function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self._reachable = reachable_blocks(func)
        order = [b for b in reverse_postorder(func) if b.name in self._reachable]
        self._rpo_index = {b.name: i for i, b in enumerate(order)}
        self._idom: dict[str, str] = {}
        self._compute(order)

    def _compute(self, order: list[BasicBlock]) -> None:
        entry = self.func.entry
        idom: dict[str, str | None] = {b.name: None for b in order}
        idom[entry.name] = entry.name

        preds_of = {
            b.name: [
                p for p in predecessors(self.func, b) if p.name in self._reachable
            ]
            for b in order
        }

        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry:
                    continue
                preds = [p for p in preds_of[block.name] if idom[p.name] is not None]
                if not preds:
                    continue
                new_idom = preds[0].name
                for pred in preds[1:]:
                    new_idom = self._intersect(new_idom, pred.name, idom)
                if idom[block.name] != new_idom:
                    idom[block.name] = new_idom
                    changed = True

        self._idom = {k: v for k, v in idom.items() if v is not None}

    def _intersect(
        self, a: str, b: str, idom: dict[str, str | None]
    ) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    # -- queries --------------------------------------------------------------

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        """The immediate dominator of ``block`` (None for entry/unreachable)."""
        name = self._idom.get(block.name)
        if name is None or name == block.name:
            return None
        return self.func.block(name)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from entry to ``b`` passes through ``a``."""
        if b.name not in self._idom:
            raise IRError(f"block ^{b.name} is unreachable")
        current: str | None = b.name
        while current is not None:
            if current == a.name:
                return True
            parent = self._idom.get(current)
            if parent == current:
                return False
            current = parent
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, block: BasicBlock) -> list[BasicBlock]:
        """All blocks dominating ``block``, from itself up to the entry."""
        result = []
        current: str | None = block.name
        while current is not None:
            result.append(self.func.block(current))
            parent = self._idom.get(current)
            if parent == current:
                break
            current = parent
        return result
