"""Structural verification of IR modules.

Checks the invariants every pass may rely on: blocks end in exactly one
terminator, phi nodes agree with CFG predecessors, SSA definitions dominate
their uses, operand/result types are consistent, and calls match callee
signatures.  Passes run the verifier after transforming a module; tests use
it as the oracle for hypothesis-generated programs.
"""

from __future__ import annotations

from repro.errors import IRVerificationError
from repro.ir.block import BasicBlock
from repro.ir.cfg import predecessors, reachable_blocks
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BINOPS,
    CASTS,
    FLOAT_BINOPS,
    INT_BINOPS,
    Instruction,
    Opcode,
)
from repro.ir.module import Module
from repro.ir.types import INT1
from repro.ir.values import Argument, Constant, Value


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raises IRVerificationError."""
    for func in module:
        verify_function(func, module)


def verify_function(func: Function, module: Module | None = None) -> None:
    """Verify a single function (against ``module`` for call signatures)."""
    if not func.blocks:
        raise IRVerificationError(f"@{func.name}: function has no blocks")
    _check_blocks(func)
    _check_ssa_names(func)
    _check_types(func, module)
    _check_phis(func)
    _check_dominance(func)


def _check_blocks(func: Function) -> None:
    seen: set[str] = set()
    for block in func.blocks:
        if block.name in seen:
            raise IRVerificationError(f"@{func.name}: duplicate block ^{block.name}")
        seen.add(block.name)
        if not block.is_terminated:
            raise IRVerificationError(
                f"@{func.name}:^{block.name}: block lacks a terminator"
            )
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise IRVerificationError(
                    f"@{func.name}:^{block.name}: terminator "
                    f"{instr.opcode.value} in mid-block"
                )
        in_phi_prefix = True
        for instr in block.instructions:
            if instr.is_phi and not in_phi_prefix:
                raise IRVerificationError(
                    f"@{func.name}:^{block.name}: phi {instr.ref()} not at "
                    "block head"
                )
            if not instr.is_phi:
                in_phi_prefix = False
        for instr in block.instructions:
            term = block.terminator
            for target in term.block_targets:
                if target not in func.blocks:
                    raise IRVerificationError(
                        f"@{func.name}:^{block.name}: branch to foreign block "
                        f"^{target.name}"
                    )


def _check_ssa_names(func: Function) -> None:
    names: set[str] = {arg.name for arg in func.args}
    if len(names) != len(func.args):
        raise IRVerificationError(f"@{func.name}: duplicate argument names")
    for instr in func.instructions():
        if not instr.defines_value:
            continue
        if not instr.name:
            raise IRVerificationError(
                f"@{func.name}: unnamed value-producing {instr.opcode.value}"
            )
        if instr.name in names:
            raise IRVerificationError(
                f"@{func.name}: SSA name %{instr.name} defined twice"
            )
        names.add(instr.name)


def _check_types(func: Function, module: Module | None) -> None:
    for block in func.blocks:
        for instr in block.instructions:
            _check_instruction_types(func, block, instr, module)


def _check_instruction_types(
    func: Function, block: BasicBlock, instr: Instruction, module: Module | None
) -> None:
    where = f"@{func.name}:^{block.name}:{instr.ref() or instr.opcode.value}"
    op = instr.opcode

    if op in BINOPS:
        a, b = instr.operands
        if a.type != b.type or a.type != instr.type:
            raise IRVerificationError(f"{where}: binop type mismatch")
        if op in INT_BINOPS and not instr.type.is_int:
            raise IRVerificationError(f"{where}: int binop on {instr.type}")
        if op in FLOAT_BINOPS and not instr.type.is_float:
            raise IRVerificationError(f"{where}: float binop on {instr.type}")
    elif op in (Opcode.ICMP, Opcode.FCMP):
        a, b = instr.operands
        if a.type != b.type:
            raise IRVerificationError(f"{where}: comparison operand mismatch")
        if instr.type != INT1:
            raise IRVerificationError(f"{where}: comparison must produce i1")
        if instr.predicate is None:
            raise IRVerificationError(f"{where}: comparison lacks predicate")
    elif op in CASTS:
        (a,) = instr.operands
        if op is Opcode.SITOFP and not (a.type.is_int and instr.type.is_float):
            raise IRVerificationError(f"{where}: sitofp {a.type}->{instr.type}")
        if op is Opcode.FPTOSI and not (a.type.is_float and instr.type.is_int):
            raise IRVerificationError(f"{where}: fptosi {a.type}->{instr.type}")
        if op is Opcode.ZEXT and not (
            a.type.is_int and instr.type.is_int and instr.type.bits >= a.type.bits
        ):
            raise IRVerificationError(f"{where}: zext {a.type}->{instr.type}")
        if op is Opcode.TRUNC and not (
            a.type.is_int and instr.type.is_int and instr.type.bits <= a.type.bits
        ):
            raise IRVerificationError(f"{where}: trunc {a.type}->{instr.type}")
    elif op is Opcode.ALLOC:
        (count,) = instr.operands
        if not count.type.is_int or not instr.type.is_pointer:
            raise IRVerificationError(f"{where}: alloc signature invalid")
    elif op is Opcode.LOAD:
        (ptr,) = instr.operands
        if not ptr.type.is_pointer or instr.type.is_void:
            raise IRVerificationError(f"{where}: load signature invalid")
    elif op is Opcode.STORE:
        value, ptr = instr.operands
        if not ptr.type.is_pointer or value.type.is_void:
            raise IRVerificationError(f"{where}: store signature invalid")
    elif op is Opcode.GEP:
        ptr, offset = instr.operands
        if not ptr.type.is_pointer or not offset.type.is_int:
            raise IRVerificationError(f"{where}: gep signature invalid")
    elif op is Opcode.BR:
        (cond,) = instr.operands
        if cond.type != INT1 or len(instr.block_targets) != 2:
            raise IRVerificationError(f"{where}: br signature invalid")
    elif op is Opcode.JMP:
        if instr.operands or len(instr.block_targets) != 1:
            raise IRVerificationError(f"{where}: jmp signature invalid")
    elif op is Opcode.RET:
        if func.return_type.is_void:
            if instr.operands:
                raise IRVerificationError(f"{where}: ret with value in void fn")
        else:
            if len(instr.operands) != 1:
                raise IRVerificationError(f"{where}: ret must carry one value")
            if instr.operands[0].type != func.return_type:
                raise IRVerificationError(
                    f"{where}: ret type {instr.operands[0].type} != "
                    f"{func.return_type}"
                )
    elif op is Opcode.TRAP:
        if instr.operands or instr.block_targets:
            raise IRVerificationError(f"{where}: trap takes no operands")
    elif op is Opcode.MAG:
        (a,) = instr.operands
        if not a.type.is_float or not instr.type.is_int:
            raise IRVerificationError(f"{where}: mag signature invalid")
        if instr.imm is None or not 0 <= instr.imm <= 52:
            raise IRVerificationError(f"{where}: mag immediate out of range")
    elif op is Opcode.SIGN:
        (a,) = instr.operands
        if not a.type.is_float or instr.type != INT1:
            raise IRVerificationError(f"{where}: sign signature invalid")
    elif op is Opcode.SELECT:
        cond, a, b = instr.operands
        if cond.type != INT1 or a.type != b.type or a.type != instr.type:
            raise IRVerificationError(f"{where}: select types invalid")
    elif op is Opcode.PHI:
        for value in instr.operands:
            if value.type != instr.type:
                raise IRVerificationError(
                    f"{where}: phi incoming {value.type} != {instr.type}"
                )
    elif op is Opcode.CALL:
        if instr.callee is None:
            raise IRVerificationError(f"{where}: call lacks a callee")
        if module is not None and module.has_function(instr.callee):
            callee = module.function(instr.callee)
            if len(callee.args) != len(instr.operands):
                raise IRVerificationError(
                    f"{where}: call passes {len(instr.operands)} args; "
                    f"@{callee.name} takes {len(callee.args)}"
                )
            for arg, param in zip(instr.operands, callee.args):
                if arg.type != param.type:
                    raise IRVerificationError(
                        f"{where}: call arg type {arg.type} != {param.type}"
                    )
            if callee.return_type != instr.type:
                raise IRVerificationError(
                    f"{where}: call result {instr.type} != {callee.return_type}"
                )
    else:  # pragma: no cover - every opcode is handled above
        raise IRVerificationError(f"{where}: unhandled opcode {op}")


def _check_phis(func: Function) -> None:
    reachable = reachable_blocks(func)
    for block in func.blocks:
        for phi in block.phis:
            where = f"@{func.name}:^{block.name}: phi {phi.ref()}"
            # Structural invariants hold everywhere, unreachable blocks
            # included — a malformed phi there corrupts printing, cloning
            # and any analysis that walks all blocks.
            if len(phi.operands) != len(phi.block_targets):
                raise IRVerificationError(
                    f"{where} has {len(phi.operands)} values for "
                    f"{len(phi.block_targets)} incoming blocks"
                )
            names = [b.name for b in phi.block_targets]
            duplicates = {n for n in names if names.count(n) > 1}
            if duplicates:
                raise IRVerificationError(
                    f"{where} lists predecessor(s) "
                    f"{sorted(duplicates)} more than once"
                )
        if block.name not in reachable:
            continue
        preds = {
            p.name for p in predecessors(func, block) if p.name in reachable
        }
        for phi in block.phis:
            incoming = {b.name for b in phi.block_targets}
            if incoming != preds:
                raise IRVerificationError(
                    f"@{func.name}:^{block.name}: phi {phi.ref()} incoming "
                    f"{sorted(incoming)} != predecessors {sorted(preds)}"
                )


def _check_dominance(func: Function) -> None:
    reachable = reachable_blocks(func)
    domtree = DominatorTree(func)
    positions: dict[int, tuple[BasicBlock, int]] = {}
    for block in func.blocks:
        for i, instr in enumerate(block.instructions):
            positions[id(instr)] = (block, i)

    def def_dominates_use(
        value: Value, use_block: BasicBlock, use_index: int
    ) -> bool:
        if isinstance(value, (Constant, Argument)):
            return True
        assert isinstance(value, Instruction)
        def_block, def_index = positions.get(id(value), (None, -1))
        if def_block is None:
            return False
        if def_block is use_block:
            return def_index < use_index
        return domtree.dominates(def_block, use_block)

    for block in func.blocks:
        if block.name not in reachable:
            continue
        for i, instr in enumerate(block.instructions):
            if instr.is_phi:
                for value, pred in instr.phi_incoming():
                    if pred.name not in reachable:
                        continue
                    term_idx = len(pred.instructions)
                    if not def_dominates_use(value, pred, term_idx):
                        raise IRVerificationError(
                            f"@{func.name}:^{block.name}: phi incoming "
                            f"{value.ref()} does not dominate edge from "
                            f"^{pred.name}"
                        )
                continue
            for value in instr.operands:
                if not def_dominates_use(value, block, i):
                    raise IRVerificationError(
                        f"@{func.name}:^{block.name}: use of {value.ref()} "
                        f"in {instr.opcode.value} not dominated by its def"
                    )
