"""Textual IR parser (inverse of :mod:`repro.ir.printer`).

Supports forward references (phi incoming values defined later, branches to
later blocks) via a two-phase resolve.  Lines starting with ``;`` are
comments.  After parsing, the module is verified unless ``verify=False``.
"""

from __future__ import annotations

import re

from repro.errors import IRParseError
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BINOPS,
    CASTS,
    Instruction,
    Opcode,
    Predicate,
)
from repro.ir.module import Module
from repro.ir.types import F64, INT1, INT64, PTR, VOID, Type, type_from_name
from repro.ir.values import Constant, Value
from repro.ir.verifier import verify_module

_FUNC_RE = re.compile(
    r"^func\s+@(?P<name>[\w.]+)\((?P<params>[^)]*)\)\s*->\s*(?P<ret>\w+)\s*\{$"
)
_PARAM_RE = re.compile(r"^%(?P<name>[\w.]+)\s*:\s*(?P<type>\w+)$")
_LABEL_RE = re.compile(r"^\^(?P<name>[\w.]+):$")
_PHI_ARM_RE = re.compile(r"\[\s*(?P<val>[^,\]]+)\s*,\s*\^(?P<block>[\w.]+)\s*\]")
_CALL_RE = re.compile(
    r"^call\s+(?P<type>\w+)\s+@(?P<callee>[\w.]+)\((?P<args>.*)\)$"
)

_OPCODES_BY_NAME = {op.value: op for op in Opcode}
_PREDICATES_BY_NAME = {p.value: p for p in Predicate}


class _Placeholder(Value):
    """Stand-in for a named value not yet defined (forward reference)."""

    def __init__(self, name: str) -> None:
        super().__init__(VOID, name)


class _FunctionParser:
    def __init__(self, name: str, params: str, ret: str) -> None:
        arg_types: list[tuple[str, Type]] = []
        params = params.strip()
        if params:
            for chunk in params.split(","):
                m = _PARAM_RE.match(chunk.strip())
                if not m:
                    raise IRParseError(f"bad parameter {chunk!r} in @{name}")
                arg_types.append((m.group("name"), type_from_name(m.group("type"))))
        self.func = Function(name, arg_types, type_from_name(ret))
        self.symbols: dict[str, Value] = {a.name: a for a in self.func.args}
        self.placeholders: list[tuple[Instruction, int, str]] = []
        self.block: BasicBlock | None = None
        self._pending_labels: dict[str, BasicBlock] = {}

    # -- block and value resolution ------------------------------------------

    def block_ref(self, name: str) -> BasicBlock:
        """Get-or-create a block by label (forward references allowed)."""
        for existing in self.func.blocks:
            if existing.name == name:
                return existing
        if name not in self._pending_labels:
            self._pending_labels[name] = BasicBlock(name)
        return self._pending_labels[name]

    def start_block(self, name: str) -> None:
        if name in self._pending_labels:
            block = self._pending_labels.pop(name)
            block.parent = self.func
            self.func.blocks.append(block)
        else:
            block = self.func.add_block(name)
        self.block = block

    def operand(self, token: str, context_type: Type | None) -> Value:
        """Resolve an operand token: %name, integer or float literal."""
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            value = self.symbols.get(name)
            if value is not None:
                return value
            return _Placeholder(name)
        if context_type is None:
            context_type = F64 if _looks_float(token) else INT64
        try:
            if context_type.is_float:
                return Constant(context_type, float(token))
            if context_type.is_pointer:
                return Constant(PTR, int(token))
            return Constant(context_type, int(token))
        except ValueError:
            raise IRParseError(f"bad literal {token!r}") from None

    def finish_instruction(self, instr: Instruction) -> None:
        if self.block is None:
            raise IRParseError("instruction outside any block")
        for i, op in enumerate(instr.operands):
            if isinstance(op, _Placeholder):
                self.placeholders.append((instr, i, op.name))
        self.block.append(instr)
        if instr.defines_value:
            if instr.name in self.symbols:
                raise IRParseError(f"redefinition of %{instr.name}")
            self.symbols[instr.name] = instr

    def resolve(self) -> Function:
        if self._pending_labels:
            missing = ", ".join(sorted(self._pending_labels))
            raise IRParseError(f"@{self.func.name}: undefined labels: {missing}")
        for instr, index, name in self.placeholders:
            value = self.symbols.get(name)
            if value is None:
                raise IRParseError(
                    f"@{self.func.name}: undefined value %{name}"
                )
            instr.operands[index] = value
        return self.func


def _looks_float(token: str) -> bool:
    return any(c in token for c in ".eE") and not token.lstrip("-").isdigit()


def _split_commas(text: str) -> list[str]:
    """Split on top-level commas (commas inside [...] belong to phi arms)."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_instruction(fp: _FunctionParser, line: str) -> None:
    result_name = ""
    if line.startswith("%"):
        lhs, _, rhs = line.partition("=")
        result_name = lhs.strip()[1:]
        line = rhs.strip()

    head, _, rest = line.partition(" ")
    rest = rest.strip()
    opcode = _OPCODES_BY_NAME.get(head)
    if opcode is None:
        raise IRParseError(f"unknown opcode {head!r} in line {line!r}")

    if opcode in BINOPS:
        type_name, _, operands = rest.partition(" ")
        type_ = type_from_name(type_name)
        a, b = _split_commas(operands)
        instr = Instruction(
            opcode, type_,
            [fp.operand(a, type_), fp.operand(b, type_)], name=result_name,
        )
    elif opcode in (Opcode.ICMP, Opcode.FCMP):
        pred_name, _, rest2 = rest.partition(" ")
        pred = _PREDICATES_BY_NAME.get(pred_name)
        if pred is None:
            raise IRParseError(f"unknown predicate {pred_name!r}")
        type_name, _, operands = rest2.strip().partition(" ")
        type_ = type_from_name(type_name)
        a, b = _split_commas(operands)
        instr = Instruction(
            opcode, INT1,
            [fp.operand(a, type_), fp.operand(b, type_)],
            name=result_name, predicate=pred,
        )
    elif opcode in CASTS:
        type_name, _, operand = rest.partition(" ")
        instr = Instruction(
            opcode, type_from_name(type_name),
            [fp.operand(operand, None)], name=result_name,
        )
    elif opcode is Opcode.ALLOC:
        type_name, _, operand = rest.partition(" ")
        count_type = type_from_name(type_name)
        instr = Instruction(
            Opcode.ALLOC, PTR, [fp.operand(operand, count_type)],
            name=result_name,
        )
    elif opcode is Opcode.LOAD:
        type_name, _, operand = rest.partition(" ")
        instr = Instruction(
            Opcode.LOAD, type_from_name(type_name),
            [fp.operand(operand, PTR)], name=result_name,
        )
    elif opcode is Opcode.STORE:
        type_name, _, operands = rest.partition(" ")
        value_type = type_from_name(type_name)
        value_tok, ptr_tok = _split_commas(operands)
        instr = Instruction(
            Opcode.STORE, VOID,
            [fp.operand(value_tok, value_type), fp.operand(ptr_tok, PTR)],
        )
    elif opcode is Opcode.GEP:
        base_tok, offset_part = _split_commas(rest)
        off_type_name, _, off_tok = offset_part.partition(" ")
        off_type = type_from_name(off_type_name)
        instr = Instruction(
            Opcode.GEP, PTR,
            [fp.operand(base_tok, PTR), fp.operand(off_tok, off_type)],
            name=result_name,
        )
    elif opcode is Opcode.BR:
        cond_tok, then_tok, else_tok = _split_commas(rest)
        instr = Instruction(
            Opcode.BR, VOID, [fp.operand(cond_tok, INT1)],
            block_targets=[
                fp.block_ref(then_tok.lstrip("^")),
                fp.block_ref(else_tok.lstrip("^")),
            ],
        )
    elif opcode is Opcode.JMP:
        instr = Instruction(
            Opcode.JMP, VOID, [],
            block_targets=[fp.block_ref(rest.lstrip("^"))],
        )
    elif opcode is Opcode.RET:
        if rest:
            type_name, _, operand = rest.partition(" ")
            type_ = type_from_name(type_name)
            instr = Instruction(Opcode.RET, VOID, [fp.operand(operand, type_)])
        else:
            instr = Instruction(Opcode.RET, VOID, [])
    elif opcode is Opcode.TRAP:
        instr = Instruction(Opcode.TRAP, VOID, [])
    elif opcode is Opcode.SIGN:
        instr = Instruction(
            Opcode.SIGN, INT1, [fp.operand(rest, F64)], name=result_name
        )
    elif opcode is Opcode.MAG:
        k_text, _, operand = rest.partition(" ")
        try:
            k = int(k_text)
        except ValueError:
            raise IRParseError(f"bad mag immediate {k_text!r}") from None
        instr = Instruction(
            Opcode.MAG, INT64, [fp.operand(operand, F64)],
            name=result_name, imm=k,
        )
    elif opcode is Opcode.PHI:
        type_name, _, arms = rest.partition(" ")
        type_ = type_from_name(type_name)
        operands: list[Value] = []
        targets: list[BasicBlock] = []
        for m in _PHI_ARM_RE.finditer(arms):
            operands.append(fp.operand(m.group("val"), type_))
            targets.append(fp.block_ref(m.group("block")))
        instr = Instruction(
            Opcode.PHI, type_, operands, name=result_name,
            block_targets=targets,
        )
    elif opcode is Opcode.SELECT:
        type_name, _, operands_text = rest.partition(" ")
        type_ = type_from_name(type_name)
        cond_tok, a_tok, b_tok = _split_commas(operands_text)
        instr = Instruction(
            Opcode.SELECT, type_,
            [
                fp.operand(cond_tok, INT1),
                fp.operand(a_tok, type_),
                fp.operand(b_tok, type_),
            ],
            name=result_name,
        )
    elif opcode is Opcode.CALL:
        m = _CALL_RE.match(line)
        if not m:
            raise IRParseError(f"malformed call: {line!r}")
        args: list[Value] = []
        args_text = m.group("args").strip()
        if args_text:
            for chunk in _split_commas(args_text):
                arg_type_name, _, arg_tok = chunk.partition(" ")
                args.append(fp.operand(arg_tok, type_from_name(arg_type_name)))
        instr = Instruction(
            Opcode.CALL, type_from_name(m.group("type")), args,
            name=result_name, callee=m.group("callee"),
        )
    else:  # pragma: no cover - all opcodes handled
        raise IRParseError(f"unsupported opcode {head!r}")

    fp.finish_instruction(instr)


def parse_module(text: str, name: str = "module", verify: bool = True) -> Module:
    """Parse textual IR into a :class:`Module`."""
    module = Module(name)
    fp: _FunctionParser | None = None
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("func "):
            if fp is not None:
                raise IRParseError("nested function definition")
            m = _FUNC_RE.match(line)
            if not m:
                raise IRParseError(f"malformed function header: {line!r}")
            fp = _FunctionParser(m.group("name"), m.group("params"), m.group("ret"))
            continue
        if line == "}":
            if fp is None:
                raise IRParseError("unmatched '}'")
            module.add_function(fp.resolve())
            fp = None
            continue
        m = _LABEL_RE.match(line)
        if m:
            if fp is None:
                raise IRParseError(f"label {line!r} outside function")
            fp.start_block(m.group("name"))
            continue
        if fp is None:
            raise IRParseError(f"instruction outside function: {line!r}")
        _parse_instruction(fp, line)
    if fp is not None:
        raise IRParseError(f"unterminated function @{fp.func.name}")
    if verify:
        verify_module(module)
    return module
