"""Shared CFG transformation utilities for instrumentation passes."""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import VOID


def split_block(func: Function, block: BasicBlock, index: int) -> BasicBlock:
    """Move ``block.instructions[index:]`` into a fresh continuation block.

    Successor phis that named ``block`` as an incoming edge are rewired to
    the continuation, preserving SSA form.  The caller must re-terminate
    ``block`` (it is left unterminated).
    """
    cont = func.add_block(func.fresh_name(f"{block.name}.cont"))
    moved = block.instructions[index:]
    del block.instructions[index:]
    for instr in moved:
        instr.parent = cont
        cont.instructions.append(instr)
    if moved and moved[-1].is_terminator:
        for succ in moved[-1].block_targets:
            for phi in succ.phis:
                phi.block_targets = [
                    cont if b is block else b for b in phi.block_targets
                ]
    return cont


def get_or_create_trap_block(func: Function, name: str) -> BasicBlock:
    """Get-or-create a block holding a single ``trap`` instruction."""
    for block in func.blocks:
        if block.name == name:
            return block
    block = func.add_block(name)
    block.append(Instruction(Opcode.TRAP, VOID, []))
    return block


def insert_after(block: BasicBlock, anchor: Instruction,
                 new_instr: Instruction) -> None:
    """Insert ``new_instr`` immediately after ``anchor`` within ``block``."""
    for i, instr in enumerate(block.instructions):
        if instr is anchor:
            block.insert(i + 1, new_instr)
            return
    raise ValueError(f"anchor {anchor!r} not found in ^{block.name}")
