"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import IRError
from repro.ir.instructions import Instruction

if TYPE_CHECKING:
    from repro.ir.function import Function


class BasicBlock:
    """A labelled sequence of instructions with a single terminator.

    Attributes:
        name: block label without the leading ``^``.
        instructions: the instructions in program order.
        parent: owning function.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.parent: Function | None = None

    def append(self, instr: Instruction) -> Instruction:
        """Append ``instr``; raises if the block is already terminated."""
        if self.is_terminated:
            raise IRError(
                f"block ^{self.name} already has terminator "
                f"{self.terminator.opcode.value}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        """Insert ``instr`` at ``index`` (used by instrumentation passes)."""
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    @property
    def terminator(self) -> Instruction:
        if not self.is_terminated:
            raise IRError(f"block ^{self.name} has no terminator")
        return self.instructions[-1]

    @property
    def phis(self) -> list[Instruction]:
        """The leading phi nodes of this block."""
        result = []
        for instr in self.instructions:
            if not instr.is_phi:
                break
            result.append(instr)
        return result

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding leading phis."""
        return self.instructions[len(self.phis):]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def ref(self) -> str:
        return f"^{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock ^{self.name} ({len(self.instructions)} instrs)>"
