"""INA219-class current sensor model.

The SEL testbed (sect. 3.2) reads board current over I2C from a cheap
monitor chip.  Real parts quantize (the INA219's current LSB is
programmable, ~0.1-1 mA), add measurement noise, and sample at a bounded
rate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.rng import make_rng


class CurrentSensor:
    """Quantizing, noisy current sensor.

    Attributes:
        lsb_a: quantization step (amperes per count).
        noise_sigma_a: RMS measurement noise.
        max_a: full-scale range (readings clip here).
        sample_rate_hz: maximum sampling rate.
    """

    def __init__(
        self,
        lsb_a: float = 0.001,
        noise_sigma_a: float = 0.0015,
        max_a: float = 6.0,
        sample_rate_hz: float = 100.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if lsb_a <= 0 or max_a <= 0 or sample_rate_hz <= 0:
            raise ConfigError("sensor parameters must be positive")
        self.lsb_a = lsb_a
        self.noise_sigma_a = noise_sigma_a
        self.max_a = max_a
        self.sample_rate_hz = sample_rate_hz
        self.rng = make_rng(seed)
        self._dropouts: list[tuple[float, float]] = []

    def fail_between(self, t_start: float, t_end: float) -> None:
        """Schedule a dropout: reads in [t_start, t_end) return NaN.

        Models an I2C bus hang or a rad-induced sensor upset — the chip
        stops answering, the driver times out and reports no reading.
        """
        if t_end <= t_start:
            raise ConfigError("dropout interval must have positive length")
        self._dropouts.append((t_start, t_end))

    def is_failed(self, t: float) -> bool:
        """Whether a scheduled dropout covers time ``t``."""
        return any(t0 <= t < t1 for t0, t1 in self._dropouts)

    def read(self, true_current_a: float, t: float | None = None) -> float:
        """One sensor reading of ``true_current_a``.

        ``t`` gates scheduled dropouts; callers that never schedule any
        can omit it.  The noise draw happens before the dropout check so
        the RNG stream — and every reading outside the dropout — is
        identical with and without a scheduled failure.
        """
        noisy = true_current_a + float(self.rng.normal(0.0, self.noise_sigma_a))
        if t is not None and self.is_failed(t):
            return float("nan")
        clipped = min(max(noisy, 0.0), self.max_a)
        return round(clipped / self.lsb_a) * self.lsb_a
