"""Utilization-driven current model.

The paper's key SEL observation (sect. 3.1): on a Raspberry Pi, "the
correlation between CPU usage and current draw was 99.9%", while natural
current variation (DVFS power-state cycling, transient spikes) dwarfs the
few-mA signature of a latch-up.  The model reproduces both: current is a
near-deterministic function of software-visible load, plus small noise and
occasional power-state transition spikes that a naive threshold detector
confuses with latch-ups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng


@dataclass(frozen=True)
class PowerModelParams:
    """Coefficients of the load -> current mapping.

    Attributes:
        idle_a: board current with all cores idle.
        per_core_a: added current per fully busy core.
        mem_bw_a: added current at full memory bandwidth.
        mem_cap_a: added current at full memory occupancy (refresh, row
            activity).
        noise_sigma_a: Gaussian sensor-independent supply noise.
        spike_a: magnitude of a DVFS/power-state transition spike.
        spike_rate_hz: expected spikes per second.
        spike_duration_s: spike length.
    """

    idle_a: float = 0.58
    per_core_a: float = 0.19
    mem_bw_a: float = 0.05
    mem_cap_a: float = 0.015
    noise_sigma_a: float = 0.003
    spike_a: float = 0.22
    spike_rate_hz: float = 0.04
    spike_duration_s: float = 0.35


#: Raspberry Pi 4 calibration: idle ~0.58 A, all-cores stress ~1.4 A,
#: matching Figure 1's current axis.
RPI4_POWER = PowerModelParams()


class PowerModel:
    """Stateful current-draw model (owns the spike process)."""

    def __init__(
        self,
        params: PowerModelParams = RPI4_POWER,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.params = params
        self.rng = make_rng(seed)
        self._spike_until = -1.0
        self._last_t = 0.0

    def current(
        self,
        t: float,
        core_utils: list[float],
        mem_bandwidth: float,
        mem_fraction: float,
        extra_a: float = 0.0,
    ) -> float:
        """Instantaneous supply current at time ``t``.

        ``extra_a`` carries latch-up current injected by the fault layer.
        """
        p = self.params
        dt = max(0.0, t - self._last_t)
        self._last_t = t
        # Poisson spike arrivals.
        if t >= self._spike_until and dt > 0:
            if self.rng.random() < 1.0 - np.exp(-p.spike_rate_hz * dt):
                self._spike_until = t + p.spike_duration_s
        spike = p.spike_a if t < self._spike_until else 0.0
        load = (
            p.idle_a
            + p.per_core_a * float(np.sum(core_utils))
            + p.mem_bw_a * mem_bandwidth
            + p.mem_cap_a * mem_fraction
        )
        noise = float(self.rng.normal(0.0, p.noise_sigma_a))
        return max(0.0, load + spike + noise + extra_a)

    @property
    def in_spike(self) -> bool:
        """Whether a power-state spike is currently active."""
        return self._last_t < self._spike_until
