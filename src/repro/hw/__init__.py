"""Hardware models: the simulated flight computer.

Everything the paper measured on physical hardware is modelled here:

- :mod:`repro.hw.specs` — SoC spec sheets (Table 1's EnduroSat OBC and
  Snapdragon 801, plus the Raspberry Pi used in sect. 3's testbed).
- :mod:`repro.hw.power` — utilization-driven current model reproducing the
  Figure 1 relationship (CPU usage vs current correlation ~99.9%).
- :mod:`repro.hw.sensor` — INA219-class current sensor with quantization
  and noise (the testbed's I2C current monitor).
- :mod:`repro.hw.thermal` — lumped thermal state and latch-up damage clock.
- :mod:`repro.hw.board` — the assembled board: load in, telemetry out,
  power-cycle control, destruction on unhandled latch-ups.
- :mod:`repro.hw.coprocessor` — the idle DSP that hosts the memory
  scrubber.
"""

from repro.hw.specs import (
    SocSpec, SNAPDRAGON_801, ENDUROSAT_OBC_SPEC, RASPBERRY_PI_4, ALL_SPECS,
    comparison_table,
)
from repro.hw.power import PowerModel, PowerModelParams, RPI4_POWER
from repro.hw.sensor import CurrentSensor
from repro.hw.thermal import ThermalModel
from repro.hw.board import Board, TelemetrySample
from repro.hw.coprocessor import DspCoprocessor

__all__ = [
    "SocSpec", "SNAPDRAGON_801", "ENDUROSAT_OBC_SPEC", "RASPBERRY_PI_4",
    "ALL_SPECS", "comparison_table",
    "PowerModel", "PowerModelParams", "RPI4_POWER",
    "CurrentSensor", "ThermalModel", "Board", "TelemetrySample",
    "DspCoprocessor",
]
