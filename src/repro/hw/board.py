"""The assembled flight-computer board.

Ties the SoC spec, power model, current sensor, thermal node and latch-up
state together: feed it a load (a stress schedule or mission workload), and
it produces telemetry samples; inject latch-ups, and it either gets
power-cycled in time or is destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceDestroyed
from repro.faults.sel import LatchupEvent
from repro.hw.power import PowerModel
from repro.hw.sensor import CurrentSensor
from repro.hw.specs import RASPBERRY_PI_4, SocSpec
from repro.hw.thermal import ThermalModel
from repro.rng import make_rng


@dataclass(frozen=True)
class TelemetrySample:
    """One sample of software-extractable metrics plus measured current.

    These are exactly the signals the paper's detector consumes: per-core
    utilization, memory capacity and bandwidth usage, cache-miss rate and
    temperature from the OS side; current from the monitoring chip.
    """

    t: float
    core_utils: tuple[float, ...]
    cpu_util: float
    mem_fraction: float
    mem_bandwidth: float
    cache_miss_rate: float
    temperature_c: float
    current_a: float

    def features(self) -> np.ndarray:
        """The software-only feature vector (everything except current).

        The aggregate cpu_util is deliberately excluded: it is an exact
        linear function of the per-core utilizations and would make the
        joint covariance singular.
        """
        return np.array(
            [
                *self.core_utils,
                self.mem_fraction,
                self.mem_bandwidth,
                self.cache_miss_rate,
            ]
        )


@dataclass
class _LatchupState:
    event: LatchupEvent
    cleared_at: float | None = None


class Board:
    """A commodity flight computer under simulation.

    Attributes:
        spec: the SoC spec sheet.
        destroyed: set permanently once a latch-up outlives its deadline.
        power_cycles: count of reboots commanded so far.
    """

    def __init__(
        self,
        spec: SocSpec = RASPBERRY_PI_4,
        power_model: PowerModel | None = None,
        sensor: CurrentSensor | None = None,
        thermal: ThermalModel | None = None,
        seed: int | np.random.Generator | None = None,
        reboot_downtime_s: float = 8.0,
    ) -> None:
        rng = make_rng(seed)
        self.spec = spec
        self.power_model = power_model or PowerModel(seed=rng.spawn(1)[0])
        self.sensor = sensor or CurrentSensor(seed=rng.spawn(1)[0])
        self.thermal = thermal or ThermalModel()
        self.rng = rng
        self.reboot_downtime_s = reboot_downtime_s
        self.destroyed = False
        self.power_cycles = 0
        self._latchups: list[_LatchupState] = []
        self._down_until = -1.0
        self._last_t = 0.0

    # -- fault interface -------------------------------------------------------

    def inject_latchup(self, event: LatchupEvent) -> None:
        """Register a latch-up that begins at ``event.onset_s``."""
        self._latchups.append(_LatchupState(event=event))

    def power_cycle(self, t: float) -> None:
        """Reboot the board: clears all active latch-ups, costs downtime."""
        if self.destroyed:
            raise DeviceDestroyed(
                f"{self.spec.name} was destroyed; power cycling cannot help"
            )
        for state in self._latchups:
            if state.cleared_at is None:
                state.cleared_at = t
        self.power_cycles += 1
        self._down_until = t + self.reboot_downtime_s

    def is_down(self, t: float) -> bool:
        """Whether the board is mid-reboot at time ``t``."""
        return t < self._down_until

    @property
    def active_latchups(self) -> list[LatchupEvent]:
        return [
            s.event
            for s in self._latchups
            if s.cleared_at is None and s.event.onset_s <= self._last_t
        ]

    # -- stepping ----------------------------------------------------------------

    def _latchup_current(self, t: float) -> float:
        total = 0.0
        for state in self._latchups:
            total += state.event.current_at(t, state.cleared_at)
        return total

    def _check_destruction(self, t: float) -> None:
        for state in self._latchups:
            deadline = state.event.destruction_time_s
            cleared_too_late = (
                state.cleared_at is not None and state.cleared_at > deadline
            )
            still_latched_past_deadline = state.cleared_at is None and t > deadline
            if cleared_too_late or still_latched_past_deadline:
                self.destroyed = True

    def sample(
        self,
        t: float,
        core_utils: list[float],
        mem_fraction: float,
        mem_bandwidth: float,
    ) -> TelemetrySample:
        """Advance to time ``t`` under the given load and read telemetry."""
        if self.destroyed:
            raise DeviceDestroyed(f"{self.spec.name} is destroyed")
        dt = max(0.0, t - self._last_t)
        self._last_t = t
        self._check_destruction(t)
        if self.destroyed:
            raise DeviceDestroyed(
                f"{self.spec.name}: latch-up exceeded its damage deadline"
            )
        if self.is_down(t):
            core_utils = [0.0] * self.spec.n_cores
            mem_fraction, mem_bandwidth = 0.02, 0.0

        extra = self._latchup_current(t)
        true_current = self.power_model.current(
            t, core_utils, mem_bandwidth, mem_fraction, extra_a=extra
        )
        self.thermal.step(dt, true_current)
        # OS-visible utilization is an interval estimate, not the true
        # instantaneous value: add sampling jitter as /proc/stat would show.
        core_utils = [
            float(np.clip(u + self.rng.normal(0.0, 0.015), 0.0, 1.0))
            for u in core_utils
        ]
        mem_fraction = float(
            np.clip(mem_fraction + self.rng.normal(0.0, 0.004), 0.0, 1.0)
        )
        mem_bandwidth = float(
            np.clip(mem_bandwidth + self.rng.normal(0.0, 0.01), 0.0, 1.0)
        )
        cpu_util = float(np.mean(core_utils)) if core_utils else 0.0
        # Cache miss rate rises with memory bandwidth pressure; small
        # baseline from ordinary execution.
        miss = 0.02 + 0.6 * mem_bandwidth + float(self.rng.normal(0, 0.01))
        return TelemetrySample(
            t=t,
            core_utils=tuple(core_utils),
            cpu_util=cpu_util,
            mem_fraction=mem_fraction,
            mem_bandwidth=mem_bandwidth,
            cache_miss_rate=max(0.0, min(1.0, miss)),
            temperature_c=self.thermal.temperature_c,
            current_a=self.sensor.read(true_current, t=t),
        )
