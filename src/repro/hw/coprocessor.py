"""The idle DSP coprocessor hosting the memory scrubber.

"Many of these general-purpose SoCs provide hardware accelerators ... but
they are often left unused in spacecraft" (sect. 4.1).  The model exposes a
cycle budget per unit time; the scrubber scheduler converts page-verify
requests into cycles via the codec cost model and consumes the budget.
"""

from __future__ import annotations

from repro.ecc.cost import CODEC_COSTS
from repro.errors import ConfigError


class DspCoprocessor:
    """A Hexagon-class vector DSP with a per-second cycle budget.

    Attributes:
        clock_hz: DSP clock.
        busy_cycles: cycles consumed so far (total).
    """

    def __init__(self, clock_hz: float = 600e6) -> None:
        if clock_hz <= 0:
            raise ConfigError(f"DSP clock must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self.busy_cycles = 0.0
        self._window_budget = 0.0

    def begin_interval(self, dt: float) -> None:
        """Open a scheduling interval of ``dt`` seconds of DSP time."""
        if dt < 0:
            raise ConfigError(f"negative interval {dt}")
        self._window_budget = dt * self.clock_hz

    def verify_cost_cycles(self, n_bytes: int, codec: str) -> float:
        """DSP cycles to verify ``n_bytes`` with ``codec``."""
        if codec not in CODEC_COSTS:
            raise ConfigError(f"unknown codec {codec!r}")
        return CODEC_COSTS[codec].dsp_cycles(n_bytes)

    def try_schedule(self, n_bytes: int, codec: str) -> bool:
        """Consume budget for one verification; False when out of budget."""
        cost = self.verify_cost_cycles(n_bytes, codec)
        if cost > self._window_budget:
            return False
        self._window_budget -= cost
        self.busy_cycles += cost
        return True

    def pages_per_interval(self, dt: float, page_size: int, codec: str) -> int:
        """How many pages fit in an interval (for budget planning)."""
        per_page = self.verify_cost_cycles(page_size, codec)
        if per_page <= 0:
            return 0
        return int(dt * self.clock_hz / per_page)
