"""Lumped thermal model of the flight computer.

In vacuum there is no convection; heat leaves only by conduction to the
structure and radiation, so sustained latch-up current concentrates heat at
a few gates and destroys them within minutes (sect. 3).  The board-level
model here provides a temperature telemetry channel (one of the
software-extractable features) and tracks the latch-up damage clock.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ThermalModel:
    """First-order RC thermal node.

    dT/dt = (P * R_th - (T - T_env)) / tau
    """

    def __init__(
        self,
        t_env_c: float = 10.0,
        r_th_c_per_w: float = 8.0,
        tau_s: float = 120.0,
        supply_v: float = 5.0,
    ) -> None:
        if tau_s <= 0 or r_th_c_per_w <= 0 or supply_v <= 0:
            raise ConfigError("thermal parameters must be positive")
        self.t_env_c = t_env_c
        self.r_th_c_per_w = r_th_c_per_w
        self.tau_s = tau_s
        self.supply_v = supply_v
        self.temperature_c = t_env_c

    def step(self, dt: float, current_a: float) -> float:
        """Advance the node by ``dt`` seconds at the given supply current."""
        if dt < 0:
            raise ConfigError(f"negative time step {dt}")
        power_w = current_a * self.supply_v
        equilibrium = self.t_env_c + power_w * self.r_th_c_per_w
        alpha = 1.0 - pow(2.718281828459045, -dt / self.tau_s)
        self.temperature_c += (equilibrium - self.temperature_c) * alpha
        return self.temperature_c
