"""SoC specification sheets (Table 1 of the paper).

================  ==================  =================
Specification     EnduroSat OBC       Snapdragon 801
================  ==================  =================
Rad-hardened      Yes                 No
ISA               ARMv7E-M            ARMv7-A
Clock             216 MHz             2.5 GHz
RAM               64 MB ECC           2 GB non-ECC
Storage           256 MB flash        32 GB flash
Cost              $10,000             $750
================  ==================  =================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ghz, gib, mhz, mib


@dataclass(frozen=True)
class SocSpec:
    """A flight-computer spec sheet.

    Attributes:
        name: marketing name.
        isa: instruction-set architecture.
        rad_hard: whether the part is radiation hardened.
        n_cores: CPU core count.
        clock_hz: per-core clock.
        ram_bytes: main-memory capacity.
        ram_ecc: whether RAM has hardware ECC.
        storage_bytes: flash capacity.
        cost_usd: unit cost.
        has_dsp: whether an idle vector DSP coprocessor is available.
        dsp_clock_hz: DSP clock (0 when absent).
    """

    name: str
    isa: str
    rad_hard: bool
    n_cores: int
    clock_hz: float
    ram_bytes: int
    ram_ecc: bool
    storage_bytes: int
    cost_usd: float
    has_dsp: bool = False
    dsp_clock_hz: float = 0.0

    @property
    def compute_score(self) -> float:
        """Crude aggregate throughput proxy: cores x clock."""
        return self.n_cores * self.clock_hz

    @property
    def perf_per_dollar(self) -> float:
        return self.compute_score / self.cost_usd


ENDUROSAT_OBC_SPEC = SocSpec(
    name="EnduroSat OBC",
    isa="ARMv7E-M",
    rad_hard=True,
    n_cores=1,
    clock_hz=mhz(216),
    ram_bytes=mib(64),
    ram_ecc=True,
    storage_bytes=mib(256),
    cost_usd=10_000.0,
)

SNAPDRAGON_801 = SocSpec(
    name="Snapdragon 801",
    isa="ARMv7-A",
    rad_hard=False,
    n_cores=4,
    clock_hz=ghz(2.5),
    ram_bytes=gib(2),
    ram_ecc=False,
    storage_bytes=gib(32),
    cost_usd=750.0,
    has_dsp=True,
    dsp_clock_hz=mhz(600),  # Hexagon QDSP6 class
)

RASPBERRY_PI_4 = SocSpec(
    name="Raspberry Pi 4",
    isa="ARMv8-A",
    rad_hard=False,
    n_cores=4,
    clock_hz=ghz(1.5),
    ram_bytes=gib(4),
    ram_ecc=False,
    storage_bytes=gib(32),
    cost_usd=75.0,
    has_dsp=False,
)

ALL_SPECS = [ENDUROSAT_OBC_SPEC, SNAPDRAGON_801, RASPBERRY_PI_4]


def comparison_table(specs: list[SocSpec] | None = None) -> str:
    """Render the Table 1 comparison as aligned text."""
    specs = specs or [ENDUROSAT_OBC_SPEC, SNAPDRAGON_801]
    rows = [
        ("Specification", [s.name for s in specs]),
        ("Radiation-hardened", ["Yes" if s.rad_hard else "No" for s in specs]),
        ("ISA", [s.isa for s in specs]),
        ("Clock Speed", [_fmt_hz(s.clock_hz) for s in specs]),
        ("RAM", [
            f"{_fmt_bytes(s.ram_bytes)} {'ECC' if s.ram_ecc else 'non-ECC'}"
            for s in specs
        ]),
        ("Storage", [f"{_fmt_bytes(s.storage_bytes)} Flash" for s in specs]),
        ("Cost", [f"${s.cost_usd:,.0f}" for s in specs]),
        ("Compute (cores x Hz)", [f"{s.compute_score:.2e}" for s in specs]),
        ("Perf per dollar", [f"{s.perf_per_dollar:.2e}" for s in specs]),
    ]
    label_width = max(len(r[0]) for r in rows)
    col_width = max(
        max(len(cell) for cell in cells) for _, cells in rows
    )
    lines = []
    for label, cells in rows:
        padded = "  ".join(c.ljust(col_width) for c in cells)
        lines.append(f"{label.ljust(label_width)}  {padded}")
    return "\n".join(lines)


def _fmt_hz(hz: float) -> str:
    if hz >= 1e9:
        return f"{hz / 1e9:g}GHz"
    return f"{hz / 1e6:g}MHz"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):g}GB"
    return f"{n / (1 << 20):g}MB"
