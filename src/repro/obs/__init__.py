"""Structured observability: events, flight recorder, metrics, reports.

The paper's premise is that commodity computers survive space only when
software can *see* faults as they happen.  This package is the seeing:

- :mod:`repro.obs.events` — a low-overhead event bus.  Typed events
  (trial start/end, injection site+bit, checkpoint taken, watchdog fire,
  ladder rung climbed, detector decision, golden-cache hit/miss) flow
  through a :class:`Tracer` into pluggable sinks: in-memory, JSONL file,
  and the flight recorder.
- :mod:`repro.obs.recorder` — a bounded :class:`FlightRecorder` ring
  buffer that survives simulated power cycles and snapshots a post-mortem
  dump when a trial ends in CRASH or HANG.
- :mod:`repro.obs.metrics` — a registry of counters / gauges /
  histograms, either updated directly or derived from the event stream
  via :class:`MetricsSink`.
- :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  renders campaign timelines, outcome breakdowns by injection site, and
  detector decision summaries from a JSONL trace.
- :mod:`repro.obs.spans` — deterministic causal spans
  (campaign → trial → attempt, fleet → tick → power-cycle) with
  clock-free ids derived from (parent, name, index), plus the
  engine-stage profiler.
- :mod:`repro.obs.aggregate` — streaming windowed rollups over exact
  fixed-bucket histograms; per-shard aggregates merge *exactly* equal to
  global aggregation.
- :mod:`repro.obs.query` — ``python -m repro.obs.query trace.jsonl``:
  indexed filters, span-tree reconstruction and latency percentiles
  over a JSONL trace.
- :mod:`repro.obs.export` — ``python -m repro.obs.export``: Prometheus
  text exposition and versioned JSON snapshots of any registry.

The contract every instrumentation point obeys: **zero overhead when
disabled** (a single ``tracer is None`` test on the non-hot path, one
attribute read per basic block on the interpreter's hot path) and
**determinism when enabled** — campaign results stay byte-identical to
the untraced engine, serial or parallel, because events only observe;
they never touch an RNG or mutate engine state.
"""

from repro.obs.events import (
    BlockTransition,
    CampaignEnd,
    CampaignStart,
    CheckpointTaken,
    DetectorDecision,
    Event,
    FleetDecision,
    GoldenCacheLookup,
    InMemorySink,
    Injection,
    JsonlSink,
    LadderAttemptEvent,
    MissionDay,
    MissionSel,
    PhaseTransition,
    RecoveryDone,
    Tracer,
    TrialEnd,
    TrialStart,
    WatchdogFire,
    WorkloadRestored,
    WorkloadShed,
    event_from_dict,
)
from repro.obs.aggregate import (
    BoardHealth,
    Rollup,
    StreamAggregator,
    aggregate_events,
    fleet_board_health,
    merge_aggregates,
)
from repro.obs.export import (
    export_snapshot,
    load_snapshot,
    snapshot_section,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    ENGINE_METRICS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
)
from repro.obs.recorder import FlightRecorder, PostMortemDump
from repro.obs.spans import (
    SpanEnd,
    SpanScope,
    SpanStart,
    StageProfiler,
    campaign_root,
    fleet_root,
    profile_stage,
    set_profiling_tracer,
    span_id,
)

__all__ = [
    "BlockTransition",
    "BoardHealth",
    "CampaignEnd",
    "CampaignStart",
    "CheckpointTaken",
    "Counter",
    "DetectorDecision",
    "ENGINE_METRICS",
    "Event",
    "FleetDecision",
    "FlightRecorder",
    "Gauge",
    "GoldenCacheLookup",
    "Histogram",
    "InMemorySink",
    "Injection",
    "JsonlSink",
    "LadderAttemptEvent",
    "MetricsRegistry",
    "MetricsSink",
    "MissionDay",
    "MissionSel",
    "PhaseTransition",
    "PostMortemDump",
    "RecoveryDone",
    "Rollup",
    "SpanEnd",
    "SpanScope",
    "SpanStart",
    "StageProfiler",
    "StreamAggregator",
    "Tracer",
    "TrialEnd",
    "TrialStart",
    "WatchdogFire",
    "WorkloadRestored",
    "WorkloadShed",
    "aggregate_events",
    "campaign_root",
    "event_from_dict",
    "export_snapshot",
    "fleet_board_health",
    "fleet_root",
    "load_snapshot",
    "merge_aggregates",
    "profile_stage",
    "set_profiling_tracer",
    "snapshot_section",
    "span_id",
    "to_prometheus",
]
