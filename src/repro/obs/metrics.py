"""Counters, gauges and histograms for the campaign engine.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
snapshotted per campaign into a plain dict (JSON-ready, the same shape
``BENCH_perf.json`` uses).  Two ways to populate it:

- instrumentation sites update instruments directly (e.g. the perf
  benchmark sets ``interp.minstr_per_s``);
- a :class:`MetricsSink` attached to a :class:`~repro.obs.events.Tracer`
  derives the standard engine metrics from the event stream — trial
  outcomes, recovery latency, ladder-rung distribution, golden-cache hit
  rate, checkpoint and watchdog activity — so the aggregate numbers are
  *provably* reconstructible from the per-event evidence (the same
  property the report CLI checks against ``OutcomeCounts``).

Histograms come in two modes:

- **reservoir** (default): raw observations are stored up to a bound and
  percentiles are exact; past the bound every value still contributes to
  count/sum but the percentile reservoir is subsampled deterministically
  (every k-th observation), so memory stays bounded on million-trial
  campaigns without a stochastic sampler breaking reproducibility.  The
  degradation is *explicit*: ``summary()`` carries a ``truncated`` flag.
- **fixed-bucket** (``buckets=``): observations land in predeclared
  buckets.  Counts are integers and the running sum is kept as an exact
  rational, so two histograms over disjoint shards of a stream
  :meth:`~Histogram.merge` into *exactly* the histogram of the combined
  stream — the property :mod:`repro.obs.aggregate` builds its
  shard-mergeable rollups on.  Percentiles resolve to bucket upper
  bounds (clamped to the observed min/max), never degrading with volume.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from fractions import Fraction
from math import isfinite
from typing import Sequence

from repro.errors import ConfigError
from repro.obs.events import (
    BlockTransition,
    CheckpointTaken,
    DetectorDecision,
    Event,
    FleetDecision,
    GoldenCacheLookup,
    LadderAttemptEvent,
    RecoveryDone,
    TrialEnd,
    WatchdogFire,
)


@dataclass
class Counter:
    """Monotonic event count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """Last-write-wins measurement."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bounded-memory distribution of observations.

    With ``buckets`` (a strictly increasing sequence of upper bounds),
    the histogram runs in exact fixed-bucket mode: every observation
    increments one integer bucket count (the last implicit bucket is
    +inf overflow), the sum is tracked as an exact rational, and two
    histograms with the same bounds merge exactly.  Non-finite
    observations are tallied in ``nonfinite`` and excluded from the
    buckets, sum and extrema so aggregates stay meaningful.

    Attributes:
        count: observations recorded.
        total: sum of all observations.
        nonfinite: non-finite observations seen (bucket mode only).
    """

    def __init__(
        self,
        max_samples: int = 4096,
        buckets: Sequence[float] | None = None,
    ) -> None:
        if max_samples < 1:
            raise ConfigError(
                f"histogram max_samples must be >= 1, got {max_samples}"
            )
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.nonfinite = 0
        self._samples: list[float] = []
        self._stride = 1
        self.bounds: tuple[float, ...] | None = None
        self.bucket_counts: list[int] | None = None
        self._exact_total = Fraction(0)
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if not bounds:
                raise ConfigError("bucket bounds must be non-empty")
            if any(not isfinite(b) for b in bounds):
                raise ConfigError("bucket bounds must be finite")
            if any(b >= c for b, c in zip(bounds, bounds[1:])):
                raise ConfigError(
                    f"bucket bounds must be strictly increasing: {bounds}"
                )
            self.bounds = bounds
            # One count per bound ("value <= bound") plus +inf overflow.
            self.bucket_counts = [0] * (len(bounds) + 1)

    @property
    def bucketed(self) -> bool:
        """True in exact fixed-bucket mode, False in reservoir mode."""
        return self.bounds is not None

    def record(self, value: float) -> None:
        value = float(value)
        if self.bucket_counts is not None:
            if not isfinite(value):
                self.nonfinite += 1
                return
            self.count += 1
            self.total += value
            self._exact_total += Fraction(value)
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            return
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Deterministic decimation: when the reservoir fills, keep every
        # other retained sample and double the stride.  No RNG involved.
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def truncated(self) -> bool:
        """True when percentiles no longer see every observation.

        Bucket mode never truncates (every observation is counted at
        bucket resolution); the reservoir starts decimating — and says
        so — once more than ``max_samples`` values have arrived.
        """
        if self.bucket_counts is not None:
            return False
        return self._stride > 1

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        if self.bucket_counts is not None:
            return float(self._exact_total / self.count)
        return self.total / self.count

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (fixed-bucket mode only).

        Exactness contract: for any partition of a stream into shards,
        recording each shard into its own histogram and merging gives
        bucket counts, count, sum, min and max *identical* to recording
        the whole stream into one histogram — integer bucket counts and
        rational sums are associative and commutative, floats summed in
        stream order are not.
        """
        if self.bucket_counts is None or other.bucket_counts is None:
            raise ConfigError(
                "merge requires both histograms in fixed-bucket mode"
            )
        if self.bounds != other.bounds:
            raise ConfigError(
                f"cannot merge histograms with different bucket bounds: "
                f"{self.bounds} != {other.bounds}"
            )
        self.count += other.count
        self.nonfinite += other.nonfinite
        self._exact_total += other._exact_total
        self.total = float(self._exact_total)
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n

    def merge_key(self) -> tuple:
        """Everything merge-equality compares (exact, order-free state)."""
        if self.bucket_counts is not None:
            return (
                self.bounds, tuple(self.bucket_counts), self.count,
                self._exact_total, self.min, self.max, self.nonfinite,
            )
        return (None, tuple(self._samples), self.count, self.total,
                self.min, self.max)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile.

        Reservoir mode resolves over the retained samples; bucket mode
        resolves to the upper bound of the bucket holding the rank,
        clamped to the observed ``[min, max]`` so single-bucket streams
        stay sane.  Bucket resolution never degrades with volume.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self.bucket_counts is not None:
            if not self.count:
                return 0.0
            rank = min(
                self.count - 1, int(round(q / 100.0 * (self.count - 1)))
            )
            seen = 0
            for i, n in enumerate(self.bucket_counts):
                seen += n
                if rank < seen:
                    edge = (
                        self.bounds[i] if i < len(self.bounds) else self.max
                    )
                    return min(max(edge, self.min), self.max)
            return self.max  # pragma: no cover - counts always reach count
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "truncated": self.truncated,
        }


@dataclass
class MetricsRegistry:
    """Named instruments with get-or-create accessors."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every instrument (sorted by name)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
        }


#: Process-global registry for always-on engine gauges and counters that
#: have no event stream to derive from: golden-cache hits/misses
#: (:mod:`repro.perf.cache`) and warm-pool lifecycle stats
#: (:mod:`repro.perf.pool` — pools created/reused, workers alive, chunks
#: dispatched).  ``python -m repro.perf.report`` surfaces its snapshot;
#: tests may ``clear()`` sections of it via the owning module's helpers.
ENGINE_METRICS = MetricsRegistry()


class MetricsSink:
    """Event sink that folds the stream into a :class:`MetricsRegistry`.

    The standard engine metrics it derives:

    - ``trials.<outcome>`` — trial outcome tallies (matches
      ``OutcomeCounts`` exactly);
    - ``recovery.latency_s`` histogram + ``recovery.rung.<rung>`` /
      ``recovery.failed`` counters — the ladder's yield and cost;
    - ``ladder.attempts.<rung>`` — attempts spent per rung;
    - ``golden_cache.hits`` / ``golden_cache.misses``;
    - ``checkpoints.taken``, ``watchdog.fires``, ``interp.blocks``;
    - ``detector.samples`` / ``detector.alarms`` and the
      ``detector.score`` histogram;
    - ``fleet.ticks`` / ``fleet.samples_scored`` / ``fleet.alarms`` /
      ``fleet.quarantines`` / ``fleet.releases`` counters and the
      ``fleet.max_score`` histogram (per-tick alarm rate evidence).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def write(self, event: Event, seq: int) -> None:
        reg = self.registry
        if isinstance(event, TrialEnd):
            reg.counter(f"trials.{event.outcome}").inc()
        elif isinstance(event, LadderAttemptEvent):
            reg.counter(f"ladder.attempts.{event.rung}").inc()
        elif isinstance(event, RecoveryDone):
            if event.recovered:
                reg.counter(f"recovery.rung.{event.rung}").inc()
                reg.histogram("recovery.latency_s").record(event.latency_s)
            else:
                reg.counter("recovery.failed").inc()
            reg.histogram("recovery.wasted_cycles").record(
                event.wasted_cycles
            )
        elif isinstance(event, GoldenCacheLookup):
            reg.counter(
                "golden_cache.hits" if event.hit else "golden_cache.misses"
            ).inc()
        elif isinstance(event, CheckpointTaken):
            reg.counter("checkpoints.taken").inc()
        elif isinstance(event, WatchdogFire):
            reg.counter("watchdog.fires").inc()
        elif isinstance(event, BlockTransition):
            reg.counter("interp.blocks").inc()
        elif isinstance(event, DetectorDecision):
            reg.counter("detector.samples").inc()
            reg.histogram("detector.score").record(event.score)
            if event.alarm:
                reg.counter("detector.alarms").inc()
        elif isinstance(event, FleetDecision):
            reg.counter("fleet.ticks").inc()
            reg.counter("fleet.samples_scored").inc(event.n_scored)
            reg.counter("fleet.alarms").inc(len(event.alarm_ids()))
            if event.quarantined:
                reg.counter("fleet.quarantines").inc(
                    len(event.quarantined.split(","))
                )
            if event.released:
                reg.counter("fleet.releases").inc(
                    len(event.released.split(","))
                )
            if event.n_scored:
                reg.histogram("fleet.max_score").record(event.max_score)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass
