"""Counters, gauges and histograms for the campaign engine.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
snapshotted per campaign into a plain dict (JSON-ready, the same shape
``BENCH_perf.json`` uses).  Two ways to populate it:

- instrumentation sites update instruments directly (e.g. the perf
  benchmark sets ``interp.minstr_per_s``);
- a :class:`MetricsSink` attached to a :class:`~repro.obs.events.Tracer`
  derives the standard engine metrics from the event stream — trial
  outcomes, recovery latency, ladder-rung distribution, golden-cache hit
  rate, checkpoint and watchdog activity — so the aggregate numbers are
  *provably* reconstructible from the per-event evidence (the same
  property the report CLI checks against ``OutcomeCounts``).

Histograms store raw observations up to a bound and summarize with
exact percentiles; past the bound they keep every value's contribution
to count/sum but subsample the percentile reservoir deterministically
(every k-th observation), so memory stays bounded on million-trial
campaigns without a stochastic sampler breaking reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.events import (
    BlockTransition,
    CheckpointTaken,
    DetectorDecision,
    Event,
    FleetDecision,
    GoldenCacheLookup,
    LadderAttemptEvent,
    RecoveryDone,
    TrialEnd,
    WatchdogFire,
)


@dataclass
class Counter:
    """Monotonic event count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """Last-write-wins measurement."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bounded-memory distribution of observations.

    Attributes:
        count: observations recorded.
        total: sum of all observations.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ConfigError(
                f"histogram max_samples must be >= 1, got {max_samples}"
            )
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Deterministic decimation: when the reservoir fills, keep every
        # other retained sample and double the stride.  No RNG involved.
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class MetricsRegistry:
    """Named instruments with get-or-create accessors."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every instrument (sorted by name)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
        }


#: Process-global registry for always-on engine gauges and counters that
#: have no event stream to derive from: golden-cache hits/misses
#: (:mod:`repro.perf.cache`) and warm-pool lifecycle stats
#: (:mod:`repro.perf.pool` — pools created/reused, workers alive, chunks
#: dispatched).  ``python -m repro.perf.report`` surfaces its snapshot;
#: tests may ``clear()`` sections of it via the owning module's helpers.
ENGINE_METRICS = MetricsRegistry()


class MetricsSink:
    """Event sink that folds the stream into a :class:`MetricsRegistry`.

    The standard engine metrics it derives:

    - ``trials.<outcome>`` — trial outcome tallies (matches
      ``OutcomeCounts`` exactly);
    - ``recovery.latency_s`` histogram + ``recovery.rung.<rung>`` /
      ``recovery.failed`` counters — the ladder's yield and cost;
    - ``ladder.attempts.<rung>`` — attempts spent per rung;
    - ``golden_cache.hits`` / ``golden_cache.misses``;
    - ``checkpoints.taken``, ``watchdog.fires``, ``interp.blocks``;
    - ``detector.samples`` / ``detector.alarms`` and the
      ``detector.score`` histogram;
    - ``fleet.ticks`` / ``fleet.samples_scored`` / ``fleet.alarms`` /
      ``fleet.quarantines`` / ``fleet.releases`` counters and the
      ``fleet.max_score`` histogram (per-tick alarm rate evidence).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def write(self, event: Event, seq: int) -> None:
        reg = self.registry
        if isinstance(event, TrialEnd):
            reg.counter(f"trials.{event.outcome}").inc()
        elif isinstance(event, LadderAttemptEvent):
            reg.counter(f"ladder.attempts.{event.rung}").inc()
        elif isinstance(event, RecoveryDone):
            if event.recovered:
                reg.counter(f"recovery.rung.{event.rung}").inc()
                reg.histogram("recovery.latency_s").record(event.latency_s)
            else:
                reg.counter("recovery.failed").inc()
            reg.histogram("recovery.wasted_cycles").record(
                event.wasted_cycles
            )
        elif isinstance(event, GoldenCacheLookup):
            reg.counter(
                "golden_cache.hits" if event.hit else "golden_cache.misses"
            ).inc()
        elif isinstance(event, CheckpointTaken):
            reg.counter("checkpoints.taken").inc()
        elif isinstance(event, WatchdogFire):
            reg.counter("watchdog.fires").inc()
        elif isinstance(event, BlockTransition):
            reg.counter("interp.blocks").inc()
        elif isinstance(event, DetectorDecision):
            reg.counter("detector.samples").inc()
            reg.histogram("detector.score").record(event.score)
            if event.alarm:
                reg.counter("detector.alarms").inc()
        elif isinstance(event, FleetDecision):
            reg.counter("fleet.ticks").inc()
            reg.counter("fleet.samples_scored").inc(event.n_scored)
            reg.counter("fleet.alarms").inc(len(event.alarm_ids()))
            if event.quarantined:
                reg.counter("fleet.quarantines").inc(
                    len(event.quarantined.split(","))
                )
            if event.released:
                reg.counter("fleet.releases").inc(
                    len(event.released.split(","))
                )
            if event.n_scored:
                reg.histogram("fleet.max_score").record(event.max_score)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass
