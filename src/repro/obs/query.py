"""Indexed query engine over JSONL traces: ``python -m repro.obs.query``.

A trace is append-only evidence; answering "which trials on board b-3
alarmed between t=40s and t=80s, and how long did their recoveries
take?" by re-scanning the whole event list per question does not scale
to the mission-control service the ROADMAP aims at.  This module builds
a :class:`TraceIndex` once — events partitioned by kind, by trial and by
board, span pairs resolved into a causal tree — and answers every
question from the index:

- :meth:`TraceIndex.filter` — compose kind / trial / board / span /
  time-window / seq-range predicates over indexed candidates;
- :meth:`TraceIndex.span_tree` — reconstruct the causal
  campaign → trial → attempt hierarchy from :class:`~repro.obs.spans.SpanStart`
  / :class:`~repro.obs.spans.SpanEnd` pairs, with every non-span event
  attributed to its innermost enclosing span;
- :meth:`TraceIndex.latency_percentiles` — recovery / attempt latency
  quantiles through the exact fixed-bucket histograms of
  :mod:`repro.obs.aggregate` (never the degrading reservoir).

The CLI mirrors the API::

    python -m repro.obs.query trace.jsonl --kind trial-end --trial 7
    python -m repro.obs.query trace.jsonl --board b-3 --t-min 40 --t-max 80
    python -m repro.obs.query trace.jsonl --tree
    python -m repro.obs.query trace.jsonl --percentiles --json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

from repro.obs.aggregate import aggregate_events
from repro.obs.events import Event, FleetDecision
from repro.obs.report import read_trace
from repro.obs.spans import SpanEnd, SpanStart

#: Latency histograms the percentile query surfaces, in render order.
LATENCY_METRICS = (
    "recovery.latency_s",
    "recovery.attempt_latency_s",
)


@dataclass
class SpanNode:
    """One reconstructed span with its children and attributed events."""

    span: str
    parent: str
    name: str
    index: int
    detail: str = ""
    status: str = ""
    cycles: int = 0
    count: int = 0
    start_seq: int = -1
    end_seq: int = -1
    children: list["SpanNode"] = field(default_factory=list)
    events: list[tuple[int, Event]] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_seq >= 0

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        return {
            "span": self.span,
            "parent": self.parent,
            "name": self.name,
            "index": self.index,
            "detail": self.detail,
            "status": self.status,
            "cycles": self.cycles,
            "count": self.count,
            "n_events": len(self.events),
            "children": [child.as_dict() for child in self.children],
        }


def _board_ids(event: Event) -> set[str]:
    """Board ids an event mentions (FleetDecision membership strings,
    plus any event carrying a scalar ``board_id`` field — queue sheds
    and power cycles from the sharded service)."""
    if isinstance(event, FleetDecision):
        ids = set(event.alarm_ids())
        if event.quarantined:
            ids.update(event.quarantined.split(","))
        if event.released:
            ids.update(event.released.split(","))
        return ids
    board_id = getattr(event, "board_id", None)
    return {board_id} if isinstance(board_id, str) else set()


class TraceIndex:
    """Event stream indexed by kind, trial, board and span.

    Built once from ``(seq, event)`` pairs (the shape
    :func:`~repro.obs.report.read_trace` returns); every query method
    resolves against the narrowest index first and only then applies the
    remaining predicates, so filters never rescan the full stream.
    """

    def __init__(self, pairs: list[tuple[int, Event]]) -> None:
        self.pairs = list(pairs)
        self.by_kind: dict[str, list[tuple[int, Event]]] = {}
        self.by_trial: dict[int, list[tuple[int, Event]]] = {}
        self.by_board: dict[str, list[tuple[int, Event]]] = {}
        self._roots: list[SpanNode] | None = None
        self._nodes: dict[str, SpanNode] = {}
        for seq, event in self.pairs:
            self.by_kind.setdefault(event.kind, []).append((seq, event))
            trial = getattr(event, "trial", None)
            if trial is not None:
                self.by_trial.setdefault(int(trial), []).append((seq, event))
            for board_id in _board_ids(event):
                self.by_board.setdefault(board_id, []).append((seq, event))

    @classmethod
    def from_events(cls, events) -> "TraceIndex":
        """Index a bare event list (seq = list position)."""
        return cls(list(enumerate(events)))

    @classmethod
    def from_file(cls, path) -> "TraceIndex":
        return cls(read_trace(path))

    @property
    def events(self) -> list[Event]:
        return [event for _, event in self.pairs]

    def kinds(self) -> dict[str, int]:
        """Event count per kind (the trace's shape at a glance)."""
        return {
            kind: len(pairs) for kind, pairs in sorted(self.by_kind.items())
        }

    # -- filtering -------------------------------------------------------------

    def filter(
        self,
        kinds=None,
        trial: int | None = None,
        board: str | None = None,
        span: str | None = None,
        t_min: float | None = None,
        t_max: float | None = None,
        seq_min: int | None = None,
        seq_max: int | None = None,
    ) -> list[tuple[int, Event]]:
        """Indexed conjunction of predicates, results in trace order.

        ``span`` restricts to events attributed to that span or any
        descendant (span start/end pairs included).  Time-window
        predicates apply to events carrying a simulated time ``t``;
        events without one never match a time-bounded query.
        """
        # Start from the narrowest applicable index.
        if trial is not None:
            candidates = self.by_trial.get(trial, [])
        elif board is not None:
            candidates = self.by_board.get(board, [])
        elif kinds is not None and len(kinds) == 1:
            candidates = self.by_kind.get(next(iter(kinds)), [])
        else:
            candidates = self.pairs

        kind_set = set(kinds) if kinds is not None else None
        span_seqs = self._span_seqs(span) if span is not None else None

        out = []
        for seq, event in candidates:
            if kind_set is not None and event.kind not in kind_set:
                continue
            if trial is not None and getattr(event, "trial", None) != trial:
                continue
            if board is not None and board not in _board_ids(event):
                continue
            if span_seqs is not None and seq not in span_seqs:
                continue
            if seq_min is not None and seq < seq_min:
                continue
            if seq_max is not None and seq > seq_max:
                continue
            if t_min is not None or t_max is not None:
                t = getattr(event, "t", None)
                if t is None:
                    continue
                if t_min is not None and t < t_min:
                    continue
                if t_max is not None and t > t_max:
                    continue
            out.append((seq, event))
        return out

    def _span_seqs(self, span: str) -> set[int]:
        node = self.span(span)
        if node is None:
            return set()
        seqs: set[int] = set()
        for sub in node.walk():
            if sub.start_seq >= 0:
                seqs.add(sub.start_seq)
            if sub.end_seq >= 0:
                seqs.add(sub.end_seq)
            seqs.update(seq for seq, _ in sub.events)
        return seqs

    # -- span tree -------------------------------------------------------------

    def span_tree(self) -> list[SpanNode]:
        """Reconstruct the causal span forest (roots in trace order).

        Span starts open nodes, parented by their explicit ``parent``
        id; span ends close them and record status / cycles / count.
        Every non-span event between a span's start and end is
        attributed to the innermost open span, so walking the tree
        recovers exactly which injections, decisions and recoveries
        happened *inside* which trial of which campaign.
        """
        if self._roots is not None:
            return self._roots
        roots: list[SpanNode] = []
        nodes: dict[str, SpanNode] = {}
        stack: list[SpanNode] = []
        for seq, event in self.pairs:
            if isinstance(event, SpanStart):
                node = SpanNode(
                    span=event.span, parent=event.parent, name=event.name,
                    index=event.index, detail=event.detail, start_seq=seq,
                )
                nodes[event.span] = node
                parent = nodes.get(event.parent)
                if parent is not None:
                    parent.children.append(node)
                else:
                    roots.append(node)
                stack.append(node)
            elif isinstance(event, SpanEnd):
                node = nodes.get(event.span)
                if node is not None:
                    node.status = event.status
                    node.cycles = event.cycles
                    node.count = event.count
                    node.end_seq = seq
                # Well-nested streams close the top of the stack; a
                # truncated trace may close out of order — unwind to the
                # matching frame so attribution stays sane.
                while stack and stack[-1].span != event.span:
                    stack.pop()
                if stack:
                    stack.pop()
            elif stack:
                stack[-1].events.append((seq, event))
        self._roots = roots
        self._nodes = nodes
        return roots

    def span(self, span_id: str) -> SpanNode | None:
        """Look up one span node by (possibly abbreviated) id."""
        self.span_tree()
        node = self._nodes.get(span_id)
        if node is not None:
            return node
        matches = [
            n for sid, n in self._nodes.items() if sid.startswith(span_id)
        ]
        return matches[0] if len(matches) == 1 else None

    # -- aggregates ------------------------------------------------------------

    def aggregate(self, window_s: float | None = None):
        """Fold the indexed stream through :mod:`repro.obs.aggregate`."""
        return aggregate_events(self.events, window_s=window_s)

    def latency_percentiles(self) -> dict[str, dict]:
        """Exact-bucket latency summaries (recovery + ladder attempts)."""
        rollup = self.aggregate().total
        return {
            name: rollup.histograms[name].summary()
            for name in LATENCY_METRICS
            if name in rollup.histograms
        }


# -- rendering -----------------------------------------------------------------


def render_span_tree(roots: list[SpanNode], max_events: int = 0) -> str:
    """Indented text rendering of a span forest."""
    if not roots:
        return "(no spans in trace)"
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        pad = "  " * depth
        status = node.status or ("open" if not node.closed else "ok")
        suffix = f" [{len(node.events)} events]" if node.events else ""
        detail = f" {node.detail}" if node.detail else ""
        lines.append(
            f"{pad}{node.name}#{node.index} {node.span}{detail} "
            f"status={status}"
            + (f" cycles={node.cycles}" if node.cycles else "")
            + (f" count={node.count}" if node.count else "")
            + suffix
        )
        for seq, event in node.events[:max_events]:
            lines.append(f"{pad}  · seq={seq} {event.kind}")
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def render_events(pairs: list[tuple[int, Event]], limit: int = 0) -> str:
    shown = pairs[:limit] if limit else pairs
    lines = [
        f"seq={seq} {json.dumps(event.to_dict(), sort_keys=True)}"
        for seq, event in shown
    ]
    if limit and len(pairs) > limit:
        lines.append(f"... ({len(pairs) - limit} more)")
    return "\n".join(lines) if lines else "(no matching events)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.query",
        description="Query a JSONL event trace: filter, span tree, "
        "latency percentiles.",
    )
    parser.add_argument("trace", help="JSONL trace file (JsonlSink output)")
    parser.add_argument(
        "--kind", action="append", dest="kinds", metavar="KIND",
        help="keep only this event kind (repeatable)",
    )
    parser.add_argument("--trial", type=int, help="keep one trial's events")
    parser.add_argument("--board", help="keep events mentioning this board")
    parser.add_argument(
        "--span", help="keep events inside this span id (prefix ok)"
    )
    parser.add_argument("--t-min", type=float, help="window start (sim s)")
    parser.add_argument("--t-max", type=float, help="window end (sim s)")
    parser.add_argument(
        "--tree", action="store_true",
        help="render the reconstructed span tree instead of events",
    )
    parser.add_argument(
        "--percentiles", action="store_true",
        help="render exact-bucket latency percentiles instead of events",
    )
    parser.add_argument(
        "--kinds-summary", action="store_true",
        help="render event counts per kind instead of events",
    )
    parser.add_argument(
        "--limit", type=int, default=0, help="cap rendered event lines"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    try:
        index = TraceIndex.from_file(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 1

    if args.tree:
        roots = index.span_tree()
        if args.json:
            print(json.dumps([r.as_dict() for r in roots], indent=2))
        else:
            print(render_span_tree(roots))
        return 0
    if args.percentiles:
        summaries = index.latency_percentiles()
        if args.json:
            print(json.dumps(summaries, indent=2))
        else:
            if not summaries:
                print("(no latency observations in trace)")
            for name, s in summaries.items():
                print(
                    f"{name}: count={s['count']} p50={s['p50']:.3e} "
                    f"p90={s['p90']:.3e} p99={s['p99']:.3e} "
                    f"max={s['max']:.3e}"
                )
        return 0
    if args.kinds_summary:
        counts = index.kinds()
        if args.json:
            print(json.dumps(counts, indent=2))
        else:
            for kind, n in counts.items():
                print(f"{kind}: {n}")
        return 0

    pairs = index.filter(
        kinds=args.kinds, trial=args.trial, board=args.board,
        span=args.span, t_min=args.t_min, t_max=args.t_max,
    )
    if args.json:
        print(json.dumps(
            [{"seq": seq, **event.to_dict()} for seq, event in pairs],
            indent=2,
        ))
    else:
        print(render_events(pairs, limit=args.limit))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
