"""Metrics export: Prometheus text exposition and versioned JSON snapshots.

Two consumers need the same numbers in different shapes: a scrape
endpoint wants the Prometheus text format, and the repo's own CLIs
(``python -m repro.perf.report``, benchmarks) want a stable JSON schema
instead of poking at registry internals.  This module is the one place
both shapes are produced:

- :func:`export_snapshot` — a :class:`~repro.obs.metrics.MetricsRegistry`
  as a versioned JSON document (``schema`` = :data:`SNAPSHOT_SCHEMA`);
  :func:`load_snapshot` validates the version on the way back in, and
  :func:`snapshot_section` gives consumers prefix-scoped access
  (``snapshot_section(snap, "warm_pool")`` → ``{"created": 2, ...}``)
  so no CLI ever dict-pokes a raw registry again.
- :func:`to_prometheus` — the text exposition format: counters and
  gauges verbatim, fixed-bucket histograms as true Prometheus
  ``histogram`` series (cumulative ``_bucket{le=...}`` + ``_sum`` +
  ``_count``), reservoir histograms as ``summary`` quantiles.

The CLI exports either a live trace (replayed through
:class:`~repro.obs.metrics.MetricsSink`) or a previously written JSON
snapshot::

    python -m repro.obs.export --from-trace trace.jsonl
    python -m repro.obs.export --from-trace trace.jsonl --format json
    python -m repro.obs.export --from-snapshot metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction

from repro.errors import ConfigError
from repro.obs.metrics import Histogram, MetricsRegistry, MetricsSink

#: Version tag stamped on every exported snapshot; bump on shape change.
SNAPSHOT_SCHEMA = "repro.metrics/v1"

#: Prometheus summary quantiles emitted for reservoir histograms.
SUMMARY_QUANTILES = ((0.5, 50), (0.9, 90), (0.99, 99))


# -- JSON snapshot -------------------------------------------------------------


def export_snapshot(registry: MetricsRegistry) -> dict:
    """Versioned JSON-ready snapshot of every instrument in ``registry``.

    The body is exactly :meth:`MetricsRegistry.snapshot` plus the
    ``schema`` tag and, for fixed-bucket histograms, the per-bucket
    counts (``bounds`` / ``bucket_counts``) that a plain summary drops —
    so an exported snapshot is loss-free for the mergeable mode.
    """
    body = registry.snapshot()
    for name, hist in registry.histograms.items():
        if hist.bucketed and hist.count:
            body["histograms"][name] = {
                **body["histograms"][name],
                "bounds": list(hist.bounds),
                "bucket_counts": list(hist.bucket_counts),
                "nonfinite": hist.nonfinite,
                # The exact rational sum, as "p/q" — floats are dyadic
                # rationals, so this round-trips without rounding and a
                # restored histogram merge-compares equal to the original.
                "exact_total": str(hist._exact_total),
            }
    return {"schema": SNAPSHOT_SCHEMA, **body}


def load_snapshot(document: dict) -> dict:
    """Validate a snapshot document's schema tag and return it."""
    schema = document.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ConfigError(
            f"unsupported metrics snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(document.get(key), dict):
            raise ConfigError(f"snapshot missing {key!r} section")
    return document


def snapshot_section(snapshot: dict, prefix: str) -> dict:
    """Prefix-scoped view of a snapshot's counters and gauges.

    ``snapshot_section(snap, "warm_pool")`` returns
    ``{"created": ..., "reused": ..., ...}`` — the shared accessor every
    CLI uses instead of reaching into registry dicts with hardcoded
    dotted names.  Histogram summaries are included under their suffix
    too (values are dicts, trivially distinguishable).
    """
    dotted = prefix + "."
    section: dict = {}
    for source in ("counters", "gauges", "histograms"):
        for name, value in snapshot.get(source, {}).items():
            if name.startswith(dotted):
                section[name[len(dotted):]] = value
    return section


# -- Prometheus text exposition ------------------------------------------------


def _metric_name(name: str, namespace: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{namespace}_{safe}" if namespace else safe


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, hist: Histogram) -> list[str]:
    if hist.bucketed:
        lines = [f"# TYPE {name} histogram"]
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.bucket_counts):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        cumulative += hist.bucket_counts[-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_fmt(hist.total)}")
        lines.append(f"{name}_count {hist.count}")
        return lines
    lines = [f"# TYPE {name} summary"]
    for quantile, q in SUMMARY_QUANTILES:
        lines.append(
            f'{name}{{quantile="{quantile}"}} {_fmt(hist.percentile(q))}'
        )
    lines.append(f"{name}_sum {_fmt(hist.total)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def to_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges map directly; fixed-bucket histograms become
    real ``histogram`` series with cumulative ``le`` buckets (exact, the
    scrape-side sum of shards equals the global series); reservoir
    histograms become ``summary`` quantiles, which Prometheus documents
    as non-aggregatable — matching their actual semantics here.
    """
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.value)}")
    for name, hist in sorted(registry.histograms.items()):
        lines.extend(_histogram_lines(_metric_name(name, namespace), hist))
    return "\n".join(lines) + ("\n" if lines else "")


# -- sources -------------------------------------------------------------------


def registry_from_trace(path) -> MetricsRegistry:
    """Replay a JSONL trace through a MetricsSink into a fresh registry."""
    from repro.obs.report import read_trace

    sink = MetricsSink()
    for seq, event in read_trace(path):
        sink.write(event, seq)
    return sink.registry


def registry_from_snapshot(document: dict) -> MetricsRegistry:
    """Rebuild a registry from a snapshot (loss-free for bucket mode).

    Counters and gauges restore exactly.  Fixed-bucket histograms
    restore bucket counts and extrema from the exported per-bucket data;
    reservoir histograms cannot be rebuilt from a summary and come back
    as empty instruments (their summaries are still in the document).
    """
    document = load_snapshot(document)
    registry = MetricsRegistry()
    for name, value in document["counters"].items():
        registry.counter(name).inc(int(value))
    for name, value in document["gauges"].items():
        registry.gauge(name).set(float(value))
    for name, summary in document["histograms"].items():
        bounds = summary.get("bounds")
        if not bounds:
            registry.histogram(name)
            continue
        hist = Histogram(buckets=bounds)
        hist.bucket_counts = list(summary["bucket_counts"])
        hist.count = int(summary["count"])
        hist.nonfinite = int(summary.get("nonfinite", 0))
        hist.min = float(summary["min"])
        hist.max = float(summary["max"])
        exact = summary.get("exact_total")
        if exact is not None:
            hist._exact_total = Fraction(exact)
        else:
            hist._exact_total = Fraction(float(summary["mean"]) * hist.count)
        hist.total = float(hist._exact_total)
        registry.histograms[name] = hist
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export metrics as Prometheus text or a JSON snapshot.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--from-trace", metavar="TRACE",
        help="derive metrics from a JSONL event trace",
    )
    source.add_argument(
        "--from-snapshot", metavar="JSON",
        help="load a previously exported JSON snapshot",
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    parser.add_argument(
        "--namespace", default="repro",
        help="metric name prefix for prometheus output",
    )
    args = parser.parse_args(argv)
    try:
        if args.from_trace:
            registry = registry_from_trace(args.from_trace)
        else:
            with open(args.from_snapshot, "r", encoding="utf-8") as fh:
                registry = registry_from_snapshot(json.load(fh))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load metrics source: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(export_snapshot(registry), indent=2))
    else:
        sys.stdout.write(to_prometheus(registry, namespace=args.namespace))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
