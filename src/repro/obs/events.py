"""Typed events and the tracing bus.

Every observable moment of the engine — a trial starting, an SEU landing
in a register, a checkpoint being taken, a detector scoring a sample —
is one immutable :class:`Event` subclass.  Events carry only JSON-scalar
fields (plus one flat dict for aggregate counts) so a JSONL trace
round-trips losslessly through :meth:`Event.to_dict` /
:func:`event_from_dict`.

Events are deliberately clock-free: no wall-clock timestamps, only
logical time (trial index, dynamic instruction count, cycles, simulated
seconds).  That is what makes a traced campaign reproducible — the same
seed produces the same event stream byte for byte, whether trials ran
serially or were fanned out across a worker pool and merged back in
index order.

The :class:`Tracer` is the bus: ``tracer.emit(event)`` stamps a
monotonic sequence number and fans the event out to every attached sink.
Instrumentation points guard with ``if tracer is not None`` so the
disabled mode costs one pointer comparison.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, IO

from repro.errors import ConfigError

#: Registry of event classes by their ``kind`` tag (filled by
#: ``__init_subclass__``); drives JSONL parsing.
EVENT_TYPES: dict[str, type["Event"]] = {}


@dataclass(frozen=True)
class Event:
    """Base class for all observability events.

    Subclasses set a unique ``kind`` class tag and declare only
    JSON-serializable fields; both constraints are what let a trace file
    be parsed back into the same typed objects.
    """

    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.kind:
            raise TypeError(f"{cls.__name__} must define a kind tag")
        if cls.kind in EVENT_TYPES:
            raise TypeError(f"duplicate event kind {cls.kind!r}")
        EVENT_TYPES[cls.kind] = cls

    def to_dict(self) -> dict[str, Any]:
        """Flat dict form with the ``kind`` tag, ready for JSON."""
        return {"kind": self.kind, **asdict(self)}


def event_from_dict(record: dict[str, Any]) -> Event:
    """Inverse of :meth:`Event.to_dict` (ignores unknown keys like seq)."""
    kind = record.get("kind")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ConfigError(f"unknown event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in record.items() if k in names})


# -- campaign lifecycle --------------------------------------------------------


@dataclass(frozen=True)
class CampaignStart(Event):
    """A fault-injection campaign began.

    Attributes:
        program: module name.
        func: entry function.
        n_trials: trials planned.
        target: fault target class ("register" / "memory" / ...).
        supervised: whether a recovery supervisor is in the loop.
    """

    kind: ClassVar[str] = "campaign-start"

    program: str
    func: str
    n_trials: int
    target: str
    supervised: bool = False


@dataclass(frozen=True)
class CampaignEnd(Event):
    """A campaign finished; carries the aggregate outcome tallies."""

    kind: ClassVar[str] = "campaign-end"

    program: str
    func: str
    counts: dict[str, int]
    golden_cycles: int = 0
    golden_instructions: int = 0


@dataclass(frozen=True)
class GoldenCacheLookup(Event):
    """One consultation of the golden-run cache."""

    kind: ClassVar[str] = "golden-cache"

    hit: bool
    instructions: int


# -- per-trial events ----------------------------------------------------------


@dataclass(frozen=True)
class TrialStart(Event):
    """One faulted trial began."""

    kind: ClassVar[str] = "trial-start"

    trial: int


@dataclass(frozen=True)
class Injection(Event):
    """The trial's SEU landed (site and bit fully resolved).

    ``location`` is a register name for register faults or a heap cell
    index for memory faults; ``fired`` is False when the particle missed
    (e.g. a MEMORY target with nothing allocated), in which case the
    remaining fields echo the unresolved request.  ``pruned`` marks a
    trial whose record was reconstructed by the masking analysis instead
    of executed (see ``repro.faults.campaign.run_campaign_pruned``).
    """

    kind: ClassVar[str] = "injection"

    trial: int
    target: str
    dynamic_index: int
    location: str | int | None
    bit: int | None
    fired: bool = True
    pruned: bool = False


@dataclass(frozen=True)
class TrialEnd(Event):
    """One trial finished and was classified."""

    kind: ClassVar[str] = "trial-end"

    trial: int
    outcome: str
    cycles: int
    rel_error: float = 0.0


# -- recovery events -----------------------------------------------------------


@dataclass(frozen=True)
class CheckpointTaken(Event):
    """The checkpoint hook captured interpreter state at a safe point."""

    kind: ClassVar[str] = "checkpoint"

    trial: int
    instructions: int
    cycles: int
    taken: int


@dataclass(frozen=True)
class WatchdogFire(Event):
    """A watchdog expired during the trial (the run classifies as HANG)."""

    kind: ClassVar[str] = "watchdog-fire"

    trial: int
    budget: int


@dataclass(frozen=True)
class LadderAttemptEvent(Event):
    """The supervisor climbed one rung of the escalation ladder."""

    kind: ClassVar[str] = "ladder-attempt"

    trial: int
    rung: str
    attempt: int
    success: bool
    cycles: int
    backoff_s: float
    latency_s: float


@dataclass(frozen=True)
class RecoveryDone(Event):
    """The supervisor's verdict on one observable failure."""

    kind: ClassVar[str] = "recovery-done"

    trial: int
    outcome: str
    recovered: bool
    rung: str | None
    attempts: int
    latency_s: float
    wasted_cycles: int
    persistence: str


# -- detector / interpreter / mission events -----------------------------------


@dataclass(frozen=True)
class DetectorDecision(Event):
    """One SEL-daemon scoring decision (per telemetry sample)."""

    kind: ClassVar[str] = "detector-decision"

    t: float
    score: float
    threshold: float
    anomalous: bool
    hits: int
    window_len: int
    window_full: bool
    alarm: bool
    warming_up: bool = False


@dataclass(frozen=True)
class FleetDecision(Event):
    """One fleet scoring tick (all boards, one batched decision).

    Board lists are comma-joined id strings ("" when empty) so the event
    keeps JSON-scalar fields and stays groupable with cheap string ops.

    Attributes:
        t: simulated tick time.
        n_boards: fleet size.
        n_scored: boards actually scored this tick (finite telemetry,
            not quarantined, past warmup).
        n_anomalous: boards whose score exceeded the threshold.
        alarms: ids of boards whose persistent alarm fired this tick.
        quarantined: ids newly quarantined this tick.
        released: ids released from quarantine this tick.
        max_score: largest score among scored boards (0.0 if none).
        warming_up: whether the fleet is still inside warmup.
    """

    kind: ClassVar[str] = "fleet-decision"

    t: float
    n_boards: int
    n_scored: int
    n_anomalous: int
    alarms: str
    quarantined: str
    released: str
    max_score: float
    warming_up: bool = False

    def alarm_ids(self) -> list[str]:
        """Alarming board ids as a list (inverse of the comma join)."""
        return self.alarms.split(",") if self.alarms else []


@dataclass(frozen=True)
class QueueShed(Event):
    """The ingestion front-end shed a telemetry frame under backpressure.

    Emitted by the mission-control service when a board's bounded queue
    overflows.  ``policy`` names the shed policy that acted
    ("drop-oldest" dropped the queue's oldest frame to admit the new
    one; "reject" refused the new frame).  ``tick`` is the logical tick
    index of the *shed* frame, so the trace pins down exactly which
    sample never reached the scorer.

    Attributes:
        t: simulated time of the shed frame.
        board_id: board whose frame was shed.
        tick: logical tick index of the shed frame.
        policy: shed policy that acted.
        queue_len: queue depth after the shed.
    """

    kind: ClassVar[str] = "queue-shed"

    t: float
    board_id: str
    tick: int
    policy: str
    queue_len: int


@dataclass(frozen=True)
class BoardPowerCycle(Event):
    """The fleet supervisor power-cycled one board.

    The sharded service's escalation record: one event per commanded
    reboot, so per-board escalation history is reconstructible from the
    trace alone (the synchronous service keeps it only on the live
    controller).

    Attributes:
        t: simulated time of the reboot command.
        board_id: rebooted board.
        shard: shard index that raised the alarm.
        had_latchup: whether a latch-up was active (False = false reboot).
    """

    kind: ClassVar[str] = "board-power-cycle"

    t: float
    board_id: str
    shard: int = 0
    had_latchup: bool = True


@dataclass(frozen=True)
class ShardRestart(Event):
    """A crashed shard worker was restarted and its state restored.

    Attributes:
        t: simulated time of the tick being processed when the crash
            was detected.
        shard: shard index.
        snapshot_tick: tick of the snapshot the shard was restored from.
        replayed_ticks: ticks re-stepped from the replay buffer to catch
            the restored scorer up to the last applied decision.
    """

    kind: ClassVar[str] = "shard-restart"

    t: float
    shard: int
    snapshot_tick: int
    replayed_ticks: int


@dataclass(frozen=True)
class BlockTransition(Event):
    """The interpreter entered a basic block (hot; enable deliberately)."""

    kind: ClassVar[str] = "block"

    func: str
    block: str


@dataclass(frozen=True)
class PhaseTransition(Event):
    """The mission entered a new radiation phase.

    Emitted by the phase-adaptive degradation controller when the
    environment timeline crosses a phase boundary (QUIET → SAA entry,
    SPE onset, decay back to quiet).

    Attributes:
        t: simulated time of the transition.
        previous: phase being left.
        phase: phase being entered.
        checkpoint: whether a pre-emptive checkpoint was commanded.
        scrub_period_s: memory-scrub cadence after the transition.
        detector_threshold_scale: fleet detector threshold scale after
            the transition (< 1 means tightened).
    """

    kind: ClassVar[str] = "phase-transition"

    t: float
    previous: str
    phase: str
    checkpoint: bool = False
    scrub_period_s: float = 0.0
    detector_threshold_scale: float = 1.0


@dataclass(frozen=True)
class WorkloadShed(Event):
    """A workload was shed to concentrate protection budget."""

    kind: ClassVar[str] = "workload-shed"

    t: float
    workload: str
    criticality: str
    phase: str


@dataclass(frozen=True)
class WorkloadRestored(Event):
    """A previously shed workload was restored after phase decay."""

    kind: ClassVar[str] = "workload-restored"

    t: float
    workload: str
    criticality: str
    phase: str


@dataclass(frozen=True)
class MissionDay(Event):
    """One day-chunk of the mission simulator resolved in bulk."""

    kind: ClassVar[str] = "mission-day"

    day: float
    seu_events: int
    compute_failures: int
    downtime_s: float


@dataclass(frozen=True)
class MissionSel(Event):
    """One latch-up arrived during the mission."""

    kind: ClassVar[str] = "mission-sel"

    day: float
    delta_a: float
    detected: bool
    destroyed: bool


# -- sinks ---------------------------------------------------------------------


class InMemorySink:
    """Collects events in a list (tests, worker-side forwarding).

    Attributes:
        events: emitted events in order.
        records: ``(seq, event)`` pairs as stamped by the tracer.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.records: list[tuple[int, Event]] = []

    def write(self, event: Event, seq: int) -> None:
        self.events.append(event)
        self.records.append((seq, event))

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonlSink:
    """Streams events to a JSONL file, one ``{"seq", "kind", ...}`` per line.

    Floats that JSON cannot express (``inf`` relative errors of integer
    SDC) round-trip via Python's ``Infinity`` extension, which
    :func:`repro.obs.report.read_trace` reads back.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")

    def write(self, event: Event, seq: int) -> None:
        if self._fh is None:
            raise ConfigError(f"JSONL sink {self.path} already closed")
        record = {"seq": seq, **event.to_dict()}
        self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Tracer:
    """The event bus: stamps sequence numbers, fans out to sinks.

    A tracer is cheap enough to build per campaign; instrumentation
    points accept ``tracer=None`` and skip all work when tracing is off.
    Sequence numbers are assigned at emit time, so a parallel campaign
    that re-emits its workers' per-trial event batches in trial order
    reproduces the serial stream exactly, seq numbers included.
    """

    __slots__ = ("sinks", "_seq")

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)
        self._seq = 0

    def emit(self, event: Event) -> None:
        seq = self._seq
        self._seq = seq + 1
        for sink in self.sinks:
            sink.write(event, seq)

    def emit_all(self, events: list[Event]) -> None:
        """Re-emit a batch (the parallel engine's order-stable merge)."""
        for event in events:
            self.emit(event)

    @property
    def recorder(self):
        """The first attached flight recorder, or None."""
        from repro.obs.recorder import FlightRecorder

        for sink in self.sinks:
            if isinstance(sink, FlightRecorder):
                return sink
        return None

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
