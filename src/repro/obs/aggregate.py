"""Streaming, windowed, *exactly mergeable* rollups of event streams.

The sharded mission-control service needs one property above all: **a
shard's aggregate must merge losslessly**.  If N workers each fold their
slice of the telemetry into a rollup, the merged rollups must equal —
exactly, not approximately — the rollup one process would have computed
over the whole stream.  Otherwise sharding changes the numbers and the
fleet dashboard can't be trusted.

Everything here is therefore a commutative monoid fold:

- counters are integers (addition is associative and commutative);
- histograms are fixed-bucket :class:`~repro.obs.metrics.Histogram`\\ s
  whose bucket counts are integers and whose sums are exact rationals
  (floats are dyadic rationals, so ``Fraction`` accumulates them without
  rounding — float addition in stream order would *not* commute);
- each event contributes independently of its neighbours (no cross-event
  state), so any partition of the stream — by shard, by worker, by time
  — folds to the same aggregate.

:func:`aggregate_events` is the fold, :meth:`StreamAggregator.merge` is
the monoid operation, and the hypothesis property test asserts
``merge(shards) == global`` for *random* partitions.

Windowing: events that carry a simulated time ``t`` additionally land in
a fixed-width window keyed by ``floor(t / window_s)``; untimed events
(per-trial records) land only in the total rollup.  Window keys are pure
functions of the event, so windowed rollups merge exactly too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.events import (
    DetectorDecision,
    Event,
    FleetDecision,
    LadderAttemptEvent,
    RecoveryDone,
    TrialEnd,
)
from repro.obs.metrics import Histogram

# -- canonical bucket layouts --------------------------------------------------
#
# Fixed bucket bounds are part of the merge contract: two shards can only
# merge when they bucketized identically, so the canonical layouts live
# here, derived deterministically (pure arithmetic, no host state).


def log_bounds(
    lo: float, hi: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of 10, always including ``lo`` and
    reaching at least ``hi``.  Pure function of its arguments, so every
    shard derives bit-identical bounds.
    """
    if lo <= 0 or hi <= lo:
        raise ConfigError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ConfigError(f"per_decade must be >= 1, got {per_decade}")
    bounds = []
    k = 0
    while True:
        edge = lo * 10.0 ** (k / per_decade)
        bounds.append(edge)
        if edge >= hi:
            break
        k += 1
    return tuple(bounds)


def linear_bounds(lo: float, hi: float, n: int) -> tuple[float, ...]:
    """``n`` evenly spaced bucket upper bounds from ``lo`` to ``hi``."""
    if n < 1:
        raise ConfigError(f"need at least one bucket, got {n}")
    if hi <= lo:
        raise ConfigError(f"need lo < hi, got lo={lo}, hi={hi}")
    step = (hi - lo) / n
    return tuple(lo + step * (i + 1) for i in range(n))


#: Recovery / decision latency buckets: 1 µs .. ~100 s, 3 per decade.
LATENCY_BOUNDS = log_bounds(1e-6, 100.0, per_decade=3)
#: Detector score buckets (normalized scores cluster near threshold 1).
SCORE_BOUNDS = linear_bounds(0.0, 8.0, 64)
#: Trial cycle-cost buckets: 10 .. 1e9 cycles.
CYCLE_BOUNDS = log_bounds(10.0, 1e9, per_decade=3)


def latency_histogram() -> Histogram:
    """A fresh fixed-bucket latency histogram (canonical bounds)."""
    return Histogram(buckets=LATENCY_BOUNDS)


def score_histogram() -> Histogram:
    """A fresh fixed-bucket detector-score histogram."""
    return Histogram(buckets=SCORE_BOUNDS)


# -- rollups -------------------------------------------------------------------


@dataclass
class Rollup:
    """One mergeable bundle of counters and fixed-bucket histograms."""

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float, bounds: tuple) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets=bounds)
        hist.record(value)

    def merge(self, other: "Rollup") -> None:
        """Fold ``other`` in; exact for any shard partition."""
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(buckets=hist.bounds)
            mine.merge(hist)

    def merge_key(self) -> tuple:
        """Canonical order-free state, for exact equality checks."""
        return (
            tuple(sorted(self.counters.items())),
            tuple(sorted(
                (name, h.merge_key()) for name, h in self.histograms.items()
            )),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rollup):
            return NotImplemented
        return self.merge_key() == other.merge_key()

    def snapshot(self) -> dict:
        """JSON-ready snapshot (same shape as a metrics registry)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
        }


class StreamAggregator:
    """Fold an event stream into mergeable total + windowed rollups.

    Per-event contributions (each independent of stream position):

    - ``events.<kind>`` counter for every event;
    - :class:`TrialEnd` → ``trials.<outcome>`` counters and the
      ``trial.cycles`` histogram;
    - :class:`LadderAttemptEvent` → ``ladder.attempts.<rung>`` counters
      and the ``recovery.attempt_latency_s`` histogram;
    - :class:`RecoveryDone` → ``recovery.recovered`` / ``recovery.failed``
      counters and the ``recovery.latency_s`` histogram;
    - :class:`DetectorDecision` → ``detector.samples`` / ``detector.alarms``
      counters and the ``detector.score`` histogram;
    - :class:`FleetDecision` → fleet tick/scored/anomalous/alarm counters,
      per-board ``board.<id>.alarms`` / ``board.<id>.quarantines`` /
      ``board.<id>.releases`` counters, and the ``fleet.max_score``
      histogram.

    Events carrying a simulated time ``t`` also fold into the window
    ``floor(t / window_s)`` when a window width is configured.
    """

    def __init__(self, window_s: float | None = None) -> None:
        if window_s is not None and window_s <= 0:
            raise ConfigError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self.total = Rollup()
        self.windows: dict[int, Rollup] = {}

    def _targets(self, event: Event) -> list[Rollup]:
        targets = [self.total]
        t = getattr(event, "t", None)
        if self.window_s is not None and t is not None:
            key = int(float(t) // self.window_s)
            window = self.windows.get(key)
            if window is None:
                window = self.windows[key] = Rollup()
            targets.append(window)
        return targets

    def observe(self, event: Event) -> None:
        """Fold one event in (position-independent by construction)."""
        for rollup in self._targets(event):
            self._fold(rollup, event)

    def observe_all(self, events) -> None:
        for event in events:
            self.observe(event)

    @staticmethod
    def _fold(rollup: Rollup, event: Event) -> None:
        rollup.inc(f"events.{event.kind}")
        if isinstance(event, TrialEnd):
            rollup.inc(f"trials.{event.outcome}")
            rollup.observe("trial.cycles", event.cycles, CYCLE_BOUNDS)
        elif isinstance(event, LadderAttemptEvent):
            rollup.inc(f"ladder.attempts.{event.rung}")
            rollup.observe(
                "recovery.attempt_latency_s", event.latency_s, LATENCY_BOUNDS
            )
        elif isinstance(event, RecoveryDone):
            rollup.inc(
                "recovery.recovered" if event.recovered else "recovery.failed"
            )
            rollup.observe(
                "recovery.latency_s", event.latency_s, LATENCY_BOUNDS
            )
        elif isinstance(event, DetectorDecision):
            rollup.inc("detector.samples")
            if event.alarm:
                rollup.inc("detector.alarms")
            rollup.observe("detector.score", event.score, SCORE_BOUNDS)
        elif isinstance(event, FleetDecision):
            rollup.inc("fleet.ticks")
            rollup.inc("fleet.scored", event.n_scored)
            rollup.inc("fleet.anomalous", event.n_anomalous)
            alarm_ids = event.alarm_ids()
            rollup.inc("fleet.alarms", len(alarm_ids))
            for board_id in alarm_ids:
                rollup.inc(f"board.{board_id}.alarms")
            if event.quarantined:
                for board_id in event.quarantined.split(","):
                    rollup.inc(f"board.{board_id}.quarantines")
            if event.released:
                for board_id in event.released.split(","):
                    rollup.inc(f"board.{board_id}.releases")
            if event.n_scored:
                rollup.observe(
                    "fleet.max_score", event.max_score, SCORE_BOUNDS
                )

    def merge(self, other: "StreamAggregator") -> None:
        """The monoid operation: fold another shard's aggregate in."""
        if self.window_s != other.window_s:
            raise ConfigError(
                f"cannot merge aggregators with different windows: "
                f"{self.window_s} != {other.window_s}"
            )
        self.total.merge(other.total)
        for key, window in other.windows.items():
            mine = self.windows.get(key)
            if mine is None:
                self.windows[key] = window
            else:
                mine.merge(window)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamAggregator):
            return NotImplemented
        return (
            self.window_s == other.window_s
            and self.total == other.total
            and set(self.windows) == set(other.windows)
            and all(self.windows[k] == other.windows[k] for k in self.windows)
        )

    def snapshot(self) -> dict:
        """JSON-ready snapshot: the total plus every window in order."""
        return {
            "window_s": self.window_s,
            "total": self.total.snapshot(),
            "windows": {
                str(key): self.windows[key].snapshot()
                for key in sorted(self.windows)
            },
        }


def aggregate_events(
    events, window_s: float | None = None
) -> StreamAggregator:
    """Fold ``events`` into a fresh aggregator (the canonical fold)."""
    agg = StreamAggregator(window_s=window_s)
    agg.observe_all(events)
    return agg


def merge_aggregates(shards) -> StreamAggregator:
    """Merge per-shard aggregators; exactly equals the global fold."""
    shards = list(shards)
    if not shards:
        return StreamAggregator()
    merged = StreamAggregator(window_s=shards[0].window_s)
    for shard in shards:
        merged.merge(shard)
    return merged


# -- fleet health --------------------------------------------------------------


@dataclass
class BoardHealth:
    """Per-board rollup rebuilt from a FleetDecision stream.

    ``ticks_scored`` counts non-warmup ticks where the board was not
    quarantined — the denominator of the alarm rate the fleet report
    renders.  (A board that went quarantined mid-trace contributes only
    its healthy ticks.)
    """

    board_id: str
    alarms: int = 0
    quarantines: int = 0
    releases: int = 0
    ticks_scored: int = 0

    @property
    def alarm_rate(self) -> float:
        return self.alarms / self.ticks_scored if self.ticks_scored else 0.0


def fleet_board_health(decisions) -> dict[str, BoardHealth]:
    """Replay a FleetDecision stream into per-board health rollups.

    Unlike the monoid aggregates above this is an *ordered* replay —
    quarantine membership is interval state, so the denominator needs
    the stream in emission order (which a single trace always has).
    """
    health: dict[str, BoardHealth] = {}
    quarantined: set[str] = set()
    known: set[str] = set()

    def board(board_id: str) -> BoardHealth:
        state = health.get(board_id)
        if state is None:
            state = health[board_id] = BoardHealth(board_id=board_id)
        return state

    for event in decisions:
        if not isinstance(event, FleetDecision):
            continue
        if event.quarantined:
            for board_id in event.quarantined.split(","):
                quarantined.add(board_id)
                board(board_id).quarantines += 1
                known.add(board_id)
        if event.released:
            for board_id in event.released.split(","):
                quarantined.discard(board_id)
                board(board_id).releases += 1
                known.add(board_id)
        for board_id in event.alarm_ids():
            board(board_id).alarms += 1
            known.add(board_id)
        if not event.warming_up and event.n_scored:
            if known:
                for board_id in known:
                    if board_id not in quarantined:
                        board(board_id).ticks_scored += 1
    return health
