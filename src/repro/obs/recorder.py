"""The flight recorder: a bounded ring buffer that outlives the crash.

Flight software keeps its last moments in battery-backed or non-volatile
memory so a post-mortem can explain a reboot nobody watched.  The
:class:`FlightRecorder` models that discipline for the campaign engine:
it is an event sink holding the most recent ``capacity`` events, and it
**survives simulated power cycles** — when the escalation ladder reaches
its POWER_CYCLE rung the recorder notes the outage and keeps its
contents, exactly like an MRAM-backed trace buffer would.

When a trial ends in CRASH or HANG the recorder snapshots a
:class:`PostMortemDump`: the terminal event plus the ring's contents at
that moment, i.e. the evidence trail leading into the failure.  Dumps
are retained (bounded) on the recorder and rendered by
:meth:`PostMortemDump.render` for triage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.events import Event, LadderAttemptEvent, TrialEnd

#: Trial outcomes that trigger an automatic post-mortem dump.
DUMP_OUTCOMES = frozenset({"crash", "hang"})


@dataclass(frozen=True)
class PostMortemDump:
    """One snapshot of the ring buffer at a terminal event.

    Attributes:
        reason: why the dump was taken ("crash" / "hang").
        trial: trial index of the terminal event.
        seq: bus sequence number of the terminal event.
        events: ring contents at dump time, oldest first (``(seq, event)``).
        dropped: events evicted from the ring before the dump (lifetime
            total — how much history the bound cost us).
        power_cycles_survived: power cycles the ring lived through.
    """

    reason: str
    trial: int
    seq: int
    events: tuple[tuple[int, Event], ...]
    dropped: int = 0
    power_cycles_survived: int = 0

    def render(self) -> str:
        """Human-readable post-mortem: the evidence trail, then verdict."""
        lines = [
            f"=== FLIGHT RECORDER DUMP: {reason_label(self.reason)} "
            f"(trial {self.trial}, seq {self.seq}) ===",
            f"ring: {len(self.events)} events retained, "
            f"{self.dropped} older events dropped, "
            f"{self.power_cycles_survived} power cycle(s) survived",
        ]
        for seq, event in self.events:
            detail = ", ".join(
                f"{k}={v!r}" for k, v in event.to_dict().items()
                if k != "kind"
            )
            lines.append(f"  [{seq:6d}] {event.kind:<18} {detail}")
        return "\n".join(lines)


def reason_label(reason: str) -> str:
    return {"crash": "CRASH", "hang": "HANG"}.get(reason, reason.upper())


class FlightRecorder:
    """Bounded ring-buffer sink with automatic post-mortem dumps.

    Attributes:
        capacity: events retained in the ring.
        dumps: post-mortem dumps taken (bounded at ``max_dumps``).
        dropped: lifetime count of events evicted by the bound.
        power_cycles: POWER_CYCLE rungs observed (the ring survives each).
    """

    def __init__(
        self,
        capacity: int = 256,
        max_dumps: int = 16,
        auto_dump: bool = True,
    ) -> None:
        if capacity < 1:
            raise ConfigError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        if max_dumps < 1:
            raise ConfigError(
                f"flight recorder max_dumps must be >= 1, got {max_dumps}"
            )
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.auto_dump = auto_dump
        self.dumps: list[PostMortemDump] = []
        self.dropped = 0
        self.power_cycles = 0
        self._ring: deque[tuple[int, Event]] = deque()

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> list[Event]:
        """Current ring contents, oldest first."""
        return [event for _, event in self._ring]

    def write(self, event: Event, seq: int) -> None:
        """Sink interface: record the event, react to terminal ones."""
        self._ring.append((seq, event))
        if len(self._ring) > self.capacity:
            self._ring.popleft()
            self.dropped += 1
        if (
            isinstance(event, LadderAttemptEvent)
            and event.rung == "power-cycle"
        ):
            # The outage resets the computer, not the recorder: modeled
            # non-volatile trace memory keeps its contents.
            self.power_cycles += 1
        if (
            self.auto_dump
            and isinstance(event, TrialEnd)
            and event.outcome in DUMP_OUTCOMES
        ):
            self.dump(reason=event.outcome, trial=event.trial, seq=seq)

    def dump(self, reason: str, trial: int = -1, seq: int = -1) -> PostMortemDump:
        """Snapshot the ring now; retains and returns the dump."""
        dump = PostMortemDump(
            reason=reason,
            trial=trial,
            seq=seq,
            events=tuple(self._ring),
            dropped=self.dropped,
            power_cycles_survived=self.power_cycles,
        )
        if len(self.dumps) < self.max_dumps:
            self.dumps.append(dump)
        return dump

    def dumps_for(self, reason: str) -> list[PostMortemDump]:
        """Retained dumps with the given reason ("crash" / "hang")."""
        return [d for d in self.dumps if d.reason == reason]

    def power_cycle(self) -> None:
        """Explicit power-cycle notification (outside a traced ladder)."""
        self.power_cycles += 1

    def clear(self) -> None:
        """Erase the ring and dumps (ground-commanded wipe)."""
        self._ring.clear()
        self.dumps = []
        self.dropped = 0
        self.power_cycles = 0

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass
