"""Trace triage CLI: ``python -m repro.obs.report trace.jsonl``.

Reads a JSONL event trace written by :class:`repro.obs.events.JsonlSink`
and renders what a flight engineer asks first:

- a **campaign timeline** — one glyph per trial in index order
  (``.`` benign, ``S`` SDC, ``C`` crash, ``H`` hang, ``D`` detected,
  ``R`` appended when the supervisor recovered it);
- **outcome breakdowns by injection site** — which registers / heap
  cells turn flips into crashes vs silence;
- **recovery accounting** — rate, rung distribution, latency quantiles;
- **detector decision summaries** — samples scored, alarms raised,
  score/threshold statistics per decision record.

The aggregation path is the same the acceptance criterion checks:
:func:`outcome_counts` rebuilds a campaign's ``OutcomeCounts`` purely
from per-trial events, and must agree exactly with the engine's own
tally.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.obs.aggregate import aggregate_events, fleet_board_health
from repro.obs.events import (
    CampaignEnd,
    CampaignStart,
    DetectorDecision,
    Event,
    FleetDecision,
    GoldenCacheLookup,
    Injection,
    LadderAttemptEvent,
    RecoveryDone,
    TrialEnd,
    event_from_dict,
)
from repro.obs.metrics import Histogram

#: Timeline glyph per outcome.
OUTCOME_GLYPHS = {
    "benign": ".",
    "sdc": "S",
    "crash": "C",
    "hang": "H",
    "detected": "D",
}
#: Canonical outcome order (mirrors FaultOutcome declaration order).
OUTCOME_ORDER = ("benign", "sdc", "crash", "hang", "detected")


def read_trace(path: str | Path) -> list[tuple[int, Event]]:
    """Parse a JSONL trace into ``(seq, event)`` pairs, in file order."""
    pairs: list[tuple[int, Event]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{lineno}: unparseable trace line: {exc}"
                ) from exc
            pairs.append((int(record.get("seq", lineno - 1)),
                          event_from_dict(record)))
    return pairs


def outcome_counts(events: list[Event]) -> dict[str, int]:
    """Rebuild the aggregate outcome tally from per-trial events.

    Returns the same ``{outcome: count}`` dict shape as
    :meth:`repro.faults.outcomes.OutcomeCounts.as_dict`, every outcome
    present (zero when unseen).
    """
    counts = {outcome: 0 for outcome in OUTCOME_ORDER}
    for event in events:
        if isinstance(event, TrialEnd):
            counts[event.outcome] = counts.get(event.outcome, 0) + 1
    return counts


@dataclass
class CampaignSummary:
    """Everything the report renders about one campaign segment."""

    program: str = "?"
    func: str = "?"
    n_trials: int = 0
    target: str = "?"
    supervised: bool = False
    outcomes: dict[str, int] = field(default_factory=dict)
    declared_counts: dict[str, int] | None = None
    trial_outcomes: dict[int, str] = field(default_factory=dict)
    recovered_trials: set[int] = field(default_factory=set)
    pruned_trials: set[int] = field(default_factory=set)
    site_outcomes: dict[str, dict[str, int]] = field(default_factory=dict)
    rung_wins: dict[str, int] = field(default_factory=dict)
    ladder_attempts: dict[str, int] = field(default_factory=dict)
    recovery_latency: Histogram = field(default_factory=Histogram)
    cache_hits: int = 0
    cache_misses: int = 0
    checkpoints: int = 0
    watchdog_fires: int = 0

    @property
    def n_failures(self) -> int:
        return len(
            [t for t, o in self.trial_outcomes.items()
             if o in ("crash", "hang", "detected")]
        )

    @property
    def recovery_rate(self) -> float:
        failures = self.n_failures
        if failures == 0:
            return 1.0
        return len(self.recovered_trials) / failures


@dataclass
class TraceSummary:
    """Parsed view of one whole trace file."""

    campaigns: list[CampaignSummary] = field(default_factory=list)
    detector_decisions: list[DetectorDecision] = field(default_factory=list)
    fleet_decisions: list[FleetDecision] = field(default_factory=list)
    n_events: int = 0


def _site_label(event: Injection) -> str:
    if not event.fired:
        return "(missed)"
    if event.target == "memory":
        return f"heap[{event.location}]"
    return str(event.location)


def summarize(events: list[Event]) -> TraceSummary:
    """Fold an event stream into per-campaign and detector summaries."""
    summary = TraceSummary(n_events=len(events))
    current: CampaignSummary | None = None
    pending_site: dict[int, str] = {}

    def ensure_campaign() -> CampaignSummary:
        # Traces written without explicit campaign-start markers (e.g. a
        # bare supervisor loop) still aggregate into one segment.
        nonlocal current
        if current is None:
            current = CampaignSummary()
            summary.campaigns.append(current)
        return current

    for event in events:
        if isinstance(event, CampaignStart):
            current = CampaignSummary(
                program=event.program,
                func=event.func,
                n_trials=event.n_trials,
                target=event.target,
                supervised=event.supervised,
            )
            summary.campaigns.append(current)
            pending_site = {}
        elif isinstance(event, CampaignEnd):
            ensure_campaign().declared_counts = dict(event.counts)
            current = None
        elif isinstance(event, Injection):
            # The injection precedes its trial-end; remember the site so
            # the outcome can be attributed to it.
            pending_site[event.trial] = _site_label(event)
            if event.pruned:
                ensure_campaign().pruned_trials.add(event.trial)
        elif isinstance(event, TrialEnd):
            campaign = ensure_campaign()
            campaign.outcomes[event.outcome] = (
                campaign.outcomes.get(event.outcome, 0) + 1
            )
            campaign.trial_outcomes[event.trial] = event.outcome
            site = pending_site.pop(event.trial, None)
            if site is not None:
                per_site = campaign.site_outcomes.setdefault(site, {})
                per_site[event.outcome] = per_site.get(event.outcome, 0) + 1
        elif isinstance(event, RecoveryDone):
            campaign = ensure_campaign()
            if event.recovered:
                campaign.recovered_trials.add(event.trial)
                campaign.rung_wins[event.rung or "?"] = (
                    campaign.rung_wins.get(event.rung or "?", 0) + 1
                )
                campaign.recovery_latency.record(event.latency_s)
        elif isinstance(event, LadderAttemptEvent):
            campaign = ensure_campaign()
            campaign.ladder_attempts[event.rung] = (
                campaign.ladder_attempts.get(event.rung, 0) + 1
            )
        elif isinstance(event, GoldenCacheLookup):
            campaign = ensure_campaign()
            if event.hit:
                campaign.cache_hits += 1
            else:
                campaign.cache_misses += 1
        elif isinstance(event, DetectorDecision):
            summary.detector_decisions.append(event)
        elif isinstance(event, FleetDecision):
            summary.fleet_decisions.append(event)
        elif event.kind == "checkpoint":
            ensure_campaign().checkpoints += 1
        elif event.kind == "watchdog-fire":
            ensure_campaign().watchdog_fires += 1
    return summary


#: Outcomes counted as harmful when ranking injection sites.
HARMFUL_OUTCOMES = ("sdc", "crash", "hang", "detected")


def site_harm(
    site_outcomes: dict[str, dict[str, int]],
) -> list[tuple[float, int, int, str, dict[str, int]]]:
    """Rank injection sites by empirical harm, worst first.

    Returns ``(harm_fraction, n_harmful, n_trials, site, per_site)``
    tuples sorted most-harmful first.  Harm counts every non-benign
    outcome — a flip the checker caught still perturbed execution.  This
    is the empirical ordering E14 correlates against the static
    vulnerability ranking, and the one the campaign report renders.
    """
    ranked = []
    for site, per_site in site_outcomes.items():
        bad = sum(per_site.get(o, 0) for o in HARMFUL_OUTCOMES)
        total = sum(per_site.values())
        if total:
            ranked.append((bad / total, bad, total, site, per_site))
    ranked.sort(reverse=True)
    return ranked


# -- rendering -----------------------------------------------------------------


def _timeline(campaign: CampaignSummary, width: int = 72) -> list[str]:
    if not campaign.trial_outcomes:
        return ["  (no trial events)"]
    glyphs = []
    for trial in sorted(campaign.trial_outcomes):
        glyph = OUTCOME_GLYPHS.get(campaign.trial_outcomes[trial], "?")
        if trial in campaign.recovered_trials:
            glyph = glyph.lower() if glyph != "." else glyph
        glyphs.append(glyph)
    text = "".join(glyphs)
    return [
        f"  [{i:5d}] {text[i:i + width]}"
        for i in range(0, len(text), width)
    ]


def _fmt_counts(counts: dict[str, int]) -> str:
    total = sum(counts.values())
    parts = []
    for outcome in OUTCOME_ORDER:
        n = counts.get(outcome, 0)
        if n or outcome in counts:
            frac = n / total if total else 0.0
            parts.append(f"{outcome}={n} ({frac:.1%})")
    return ", ".join(parts) or "(none)"


def render_campaign(campaign: CampaignSummary, index: int) -> str:
    lines = [
        f"-- campaign {index}: @{campaign.func} ({campaign.program}) "
        f"target={campaign.target} trials={campaign.n_trials}"
        + (" [supervised]" if campaign.supervised else ""),
        f"  outcomes: {_fmt_counts(campaign.outcomes)}",
    ]
    if campaign.declared_counts is not None:
        agreement = (
            "agrees"
            if all(
                campaign.declared_counts.get(o, 0) == campaign.outcomes.get(o, 0)
                for o in OUTCOME_ORDER
            )
            else "DISAGREES"
        )
        lines.append(
            f"  engine tally: {_fmt_counts(campaign.declared_counts)} "
            f"[{agreement} with per-trial events]"
        )
    if campaign.pruned_trials:
        total = len(campaign.trial_outcomes) or campaign.n_trials
        rate = len(campaign.pruned_trials) / total if total else 0.0
        lines.append(
            f"  pruned trials: {len(campaign.pruned_trials)} "
            f"({rate:.1%}) reconstructed from the masking analysis"
        )
    lines.append("  timeline (lowercase = recovered):")
    lines.extend(_timeline(campaign))

    harmful = site_harm(campaign.site_outcomes)
    if harmful:
        lines.append("  injection sites by harm (top 10):")
        for frac, bad, total, site, per_site in harmful[:10]:
            lines.append(
                f"    {site:<16} {bad}/{total} harmful ({frac:.0%}): "
                f"{_fmt_counts(per_site)}"
            )

    if campaign.supervised or campaign.rung_wins or campaign.ladder_attempts:
        lines.append(
            f"  recovery: {len(campaign.recovered_trials)}/"
            f"{campaign.n_failures} observable failures recovered "
            f"({campaign.recovery_rate:.1%})"
        )
        if campaign.ladder_attempts:
            attempts = ", ".join(
                f"{rung}={n}"
                for rung, n in sorted(campaign.ladder_attempts.items())
            )
            wins = ", ".join(
                f"{rung}={n}"
                for rung, n in sorted(campaign.rung_wins.items())
            ) or "none"
            lines.append(f"    ladder attempts: {attempts}")
            lines.append(f"    winning rungs:   {wins}")
        if campaign.recovery_latency.count:
            s = campaign.recovery_latency.summary()
            lines.append(
                f"    latency_s: mean={s['mean']:.3e} p50={s['p50']:.3e} "
                f"p90={s['p90']:.3e} max={s['max']:.3e}"
            )
    if campaign.cache_hits or campaign.cache_misses:
        lines.append(
            f"  golden cache: {campaign.cache_hits} hit(s), "
            f"{campaign.cache_misses} miss(es)"
        )
    if campaign.checkpoints or campaign.watchdog_fires:
        lines.append(
            f"  checkpoints taken: {campaign.checkpoints}; "
            f"watchdog fires: {campaign.watchdog_fires}"
        )
    return "\n".join(lines)


def render_detector(decisions: list[DetectorDecision]) -> str:
    scored = [d for d in decisions if not d.warming_up]
    alarms = [d for d in decisions if d.alarm]
    lines = [
        "-- detector decisions",
        f"  samples: {len(decisions)} ({len(scored)} scored, "
        f"{len(decisions) - len(scored)} in warmup)",
        f"  alarms: {len(alarms)}"
        + (
            " at t=" + ", ".join(f"{d.t:.2f}s" for d in alarms[:8])
            + ("..." if len(alarms) > 8 else "")
            if alarms
            else ""
        ),
    ]
    if scored:
        hist = Histogram()
        for d in scored:
            hist.record(d.score)
        s = hist.summary()
        threshold = scored[-1].threshold
        lines.append(
            f"  score: mean={s['mean']:.4g} p50={s['p50']:.4g} "
            f"p90={s['p90']:.4g} max={s['max']:.4g} "
            f"(threshold {threshold:.4g})"
        )
        anomalous = sum(d.anomalous for d in scored)
        lines.append(
            f"  anomalous samples: {anomalous}/{len(scored)} "
            f"({anomalous / len(scored):.1%})"
        )
    return "\n".join(lines)


def fleet_outcome(events: list[Event]) -> dict[str, list[float]]:
    """Replay a fleet decision stream into per-board alarm times.

    The inverse of the fleet service's own bookkeeping: feed it the
    traced :class:`FleetDecision` events and it reconstructs which board
    alarmed when — the acceptance check asserts this replay agrees
    exactly with the live ``FleetScorer`` board state.
    """
    alarms: dict[str, list[float]] = {}
    for event in events:
        if isinstance(event, FleetDecision):
            for board_id in event.alarm_ids():
                alarms.setdefault(board_id, []).append(event.t)
    return alarms


def render_fleet(
    decisions: list[FleetDecision],
    latency: dict | None = None,
) -> str:
    """Render the fleet section of a trace report.

    Fleet-wide stats come from the mergeable aggregation layer
    (:func:`repro.obs.aggregate.aggregate_events`), the per-board table
    from the :func:`repro.obs.aggregate.fleet_board_health` replay.
    ``latency`` is an optional ``fleet.score_latency_s`` histogram
    summary (e.g. from a ``--metrics`` export snapshot); wall-clock
    never lives in the trace itself.
    """
    scored_ticks = [d for d in decisions if not d.warming_up]
    n_boards = decisions[-1].n_boards if decisions else 0
    rollup = aggregate_events(list(decisions)).total
    lines = [
        "-- fleet decisions",
        f"  ticks: {len(decisions)} ({len(scored_ticks)} scored, "
        f"{len(decisions) - len(scored_ticks)} in warmup) "
        f"over {n_boards} boards",
    ]
    if latency and latency.get("count"):
        lines.append(
            f"  decision latency: p50={latency['p50']:.3e}s "
            f"p99={latency['p99']:.3e}s "
            f"(n={int(latency['count'])})"
        )
    health = fleet_board_health(list(decisions))
    if health:
        lines.append(
            "  board        alarms  quarantines  releases  "
            "ticks-scored  alarm-rate"
        )
        for board in (health[b] for b in sorted(health)):
            lines.append(
                f"  {board.board_id:<12} {board.alarms:>6} "
                f"{board.quarantines:>11}  {board.releases:>8}  "
                f"{board.ticks_scored:>12}  {board.alarm_rate:>9.2%}"
            )
    alarms = fleet_outcome(list(decisions))
    if alarms:
        for board_id in sorted(alarms):
            times = alarms[board_id]
            head = ", ".join(f"{t:.2f}s" for t in times[:6])
            lines.append(
                f"  alarms {board_id}: {len(times)} at t={head}"
                + ("..." if len(times) > 6 else "")
            )
    else:
        lines.append("  alarms: none")
    hist = rollup.histograms.get("fleet.max_score")
    if hist is not None and hist.count:
        s = hist.summary()
        lines.append(
            f"  max-score per tick: mean={s['mean']:.4g} "
            f"p50={s['p50']:.4g} p90={s['p90']:.4g} max={s['max']:.4g}"
        )
    return "\n".join(lines)


def render(
    summary: TraceSummary,
    source: str = "",
    fleet_latency: dict | None = None,
) -> str:
    header = "== repro.obs trace report =="
    if source:
        header += f" {source}"
    lines = [header, f"{summary.n_events} events"]
    for index, campaign in enumerate(summary.campaigns):
        lines.append("")
        lines.append(render_campaign(campaign, index))
    if summary.detector_decisions:
        lines.append("")
        lines.append(render_detector(summary.detector_decisions))
    if summary.fleet_decisions:
        lines.append("")
        lines.append(render_fleet(summary.fleet_decisions,
                                  latency=fleet_latency))
    return "\n".join(lines)


def summary_as_dict(summary: TraceSummary) -> dict:
    """Machine-readable form of the summary (for --json)."""
    board_health = fleet_board_health(summary.fleet_decisions)
    return {
        "n_events": summary.n_events,
        "campaigns": [
            {
                "program": c.program,
                "func": c.func,
                "n_trials": c.n_trials,
                "target": c.target,
                "supervised": c.supervised,
                "outcomes": {
                    o: c.outcomes.get(o, 0) for o in OUTCOME_ORDER
                },
                "pruned": len(c.pruned_trials),
                "recovery_rate": c.recovery_rate,
                "rung_wins": dict(sorted(c.rung_wins.items())),
                "recovery_latency_s": c.recovery_latency.summary(),
                "golden_cache": {
                    "hits": c.cache_hits, "misses": c.cache_misses,
                },
                "checkpoints": c.checkpoints,
                "watchdog_fires": c.watchdog_fires,
            }
            for c in summary.campaigns
        ],
        "detector": {
            "samples": len(summary.detector_decisions),
            "alarms": sum(d.alarm for d in summary.detector_decisions),
        },
        "fleet": {
            "ticks": len(summary.fleet_decisions),
            "alarms": {
                board: times
                for board, times in sorted(
                    fleet_outcome(list(summary.fleet_decisions)).items()
                )
            },
            "board_health": {
                board_id: {
                    "alarms": h.alarms,
                    "quarantines": h.quarantines,
                    "releases": h.releases,
                    "ticks_scored": h.ticks_scored,
                    "alarm_rate": h.alarm_rate,
                }
                for board_id, h in sorted(board_health.items())
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a campaign/recovery/detector trace for triage.",
    )
    parser.add_argument("trace", help="JSONL trace file (JsonlSink output)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable summary instead of text",
    )
    parser.add_argument(
        "--metrics", metavar="SNAPSHOT",
        help="metrics snapshot JSON (repro.obs.export) supplying the "
        "fleet decision-latency column",
    )
    args = parser.parse_args(argv)
    try:
        events = [event for _, event in read_trace(args.trace)]
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 1
    fleet_latency = None
    if args.metrics:
        from repro.obs.export import load_snapshot

        try:
            with open(args.metrics, encoding="utf-8") as fh:
                snapshot = load_snapshot(json.load(fh))
        except (OSError, json.JSONDecodeError, ConfigError) as exc:
            print(f"error: cannot read metrics {args.metrics!r}: {exc}",
                  file=sys.stderr)
            return 1
        fleet_latency = snapshot["histograms"].get("fleet.score_latency_s")
    summary = summarize(events)
    if args.json:
        print(json.dumps(summary_as_dict(summary), indent=2))
    else:
        print(render(summary, source=args.trace, fleet_latency=fleet_latency))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
