"""Causal spans: hierarchical, clock-free, deterministic by construction.

A span is one *section* of mission-control work — a campaign, one trial
inside it, one escalation-ladder attempt inside that, a fleet scoring
tick, a commanded power cycle — emitted as a :class:`SpanStart` /
:class:`SpanEnd` pair through the ordinary :class:`~repro.obs.events.Tracer`
so spans ride the same JSONL stream, the same sinks and the same
order-stable parallel merge as every other event.

**Span IDs are derived, never drawn.**  An id is a 16-hex-character
BLAKE2b digest of ``(parent_id, name, index)`` — see :func:`span_id` —
seeded at the root from the campaign's identity and integer seed.  No
``time.time()``, no global counter, no RNG: worker processes compute the
exact id the serial loop would have computed for the same trial, which
is what lets span-traced serial, parallel (any worker count) and
lockstep campaigns produce **byte-identical** trace streams.  The same
derivation means a reader can *predict* ids: trial 7 of a campaign root
``r`` is always ``span_id(r, "trial", 7)``.

The span vocabulary (``name`` field) used by the engine:

========== ====================================================
name       one …
========== ====================================================
campaign   fault-injection campaign (root; children: trials)
trial      injected trial (children: ladder attempts)
attempt    escalation-ladder rung attempt
fleet      fleet-service run (root; children: ticks)
tick       fleet scoring tick (children: power cycles)
power-cycle commanded board reboot
stage:*    engine stage profile (fork/dispatch/merge/score)
========== ====================================================

``stage:*`` spans are the one deliberate exception to clock-freedom:
:class:`StageProfiler` measures wall-clock engine stages (pool fork,
chunk dispatch, result merge, fleet scoring) for the perf CLIs.  They
carry real elapsed seconds, so they are **never** emitted into a
campaign's deterministic trace — they land in a metrics registry
(:data:`~repro.obs.metrics.ENGINE_METRICS` by default) and, optionally,
a dedicated profiling tracer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import blake2b
from typing import ClassVar

from repro.errors import ConfigError
from repro.obs.events import Event, Tracer
from repro.obs.metrics import ENGINE_METRICS, MetricsRegistry

#: Hex characters in a span id (BLAKE2b digest_size=8).
SPAN_ID_BYTES = 8

#: ``parent`` value of a root span.
ROOT = ""


@dataclass(frozen=True)
class SpanStart(Event):
    """A span opened.

    Attributes:
        span: this span's derived id.
        parent: the enclosing span's id ("" for a root).
        name: span vocabulary word ("campaign", "trial", "attempt", ...).
        index: sibling index under the parent (the derivation input).
        detail: deterministic human label (program, rung, board id).
    """

    kind: ClassVar[str] = "span-start"

    span: str
    parent: str
    name: str
    index: int
    detail: str = ""


@dataclass(frozen=True)
class SpanEnd(Event):
    """A span closed.

    Attributes:
        span: the id opened by the matching :class:`SpanStart`.
        status: outcome tag ("ok", a trial outcome, "failed", ...).
        cycles: logical cost attributed to the span (0 when unknown).
        count: items the span covered (trials, attempts, boards).
        elapsed_s: wall-clock seconds — **only** ever non-zero on
            ``stage:*`` profiling spans, which live outside the
            deterministic trace; campaign spans keep it 0.0 so traced
            streams stay byte-reproducible.
    """

    kind: ClassVar[str] = "span-end"

    span: str
    status: str = "ok"
    cycles: int = 0
    count: int = 0
    elapsed_s: float = 0.0


def span_id(parent: str, name: str, index: int) -> str:
    """Deterministic id of the ``index``-th ``name`` span under ``parent``.

    Pure function of its inputs — no clock, no RNG, no process state —
    so every execution mode (serial loop, warm-pool worker, lockstep
    lane batch) derives the identical id for the same logical span.
    """
    digest = blake2b(
        f"{parent}|{name}|{index}".encode(), digest_size=SPAN_ID_BYTES
    )
    return digest.hexdigest()


def campaign_root(
    program: str, func: str, seed: int | None, n_trials: int
) -> str:
    """Root span id of one campaign.

    Derived from the campaign identity plus the integer seed when one
    was given (a ``Generator`` seed contributes 0 — ids stay
    deterministic within the run, just not predictable across runs,
    exactly like the trial results themselves).
    """
    scope = f"campaign:{program}:@{func}:{n_trials}"
    return span_id(ROOT, scope, seed if isinstance(seed, int) else 0)


def fleet_root(n_boards: int, timeline_seed: int) -> str:
    """Root span id of one fleet-service run."""
    return span_id(ROOT, f"fleet:{n_boards}", timeline_seed)


class SpanScope:
    """Stack-shaped helper for emitting well-nested spans.

    Binds a tracer to a current parent id and hands out child scopes;
    each ``open``/``close`` pair emits one SpanStart/SpanEnd.  Purely a
    convenience — the engine's hot paths emit the events directly.
    """

    def __init__(self, tracer: Tracer, span: str = ROOT) -> None:
        self.tracer = tracer
        self.span = span
        #: Extra SpanEnd fields the body may set before the scope closes
        #: (e.g. ``scope.end_fields["status"] = outcome``).
        self.end_fields: dict = {}
        self._child_index = 0

    @contextmanager
    def span_ctx(self, name: str, detail: str = "", **end_fields):
        """Context manager: open a child span, yield its scope, close it."""
        index = self._child_index
        self._child_index += 1
        child = span_id(self.span, name, index)
        self.tracer.emit(SpanStart(
            span=child, parent=self.span, name=name, index=index,
            detail=detail,
        ))
        scope = SpanScope(self.tracer, child)
        try:
            yield scope
        except BaseException:
            self.tracer.emit(SpanEnd(span=child, status="failed"))
            raise
        self.tracer.emit(SpanEnd(span=child, **{**end_fields, **scope.end_fields}))


# -- engine-stage profiling ----------------------------------------------------


class StageProfiler:
    """Wall-clock profiling of engine stages, kept out of the trace.

    ``with profiler.stage("dispatch"):`` measures the block and records
    the elapsed seconds into the ``engine.stage.<name>_s`` histogram of
    ``registry`` (:data:`~repro.obs.metrics.ENGINE_METRICS` when not
    given) plus an ``engine.stage.<name>`` counter.  With a dedicated
    ``tracer`` it additionally emits a ``stage:<name>`` span pair whose
    :class:`SpanEnd` carries the measured ``elapsed_s`` — never attach
    the campaign tracer here: stage timings are host-dependent and would
    break traced byte-identity.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        root: str = ROOT,
    ) -> None:
        self.registry = registry if registry is not None else ENGINE_METRICS
        self.tracer = tracer
        self.root = root
        self._index = 0

    @contextmanager
    def stage(self, name: str):
        """Measure one engine stage (fork / dispatch / merge / score)."""
        if not name:
            raise ConfigError("stage name must be non-empty")
        index = self._index
        self._index += 1
        span = span_id(self.root, f"stage:{name}", index)
        if self.tracer is not None:
            self.tracer.emit(SpanStart(
                span=span, parent=self.root, name=f"stage:{name}",
                index=index,
            ))
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.registry.counter(f"engine.stage.{name}").inc()
            self.registry.histogram(f"engine.stage.{name}_s").record(elapsed)
            if self.tracer is not None:
                self.tracer.emit(SpanEnd(span=span, elapsed_s=elapsed))


#: The profiler engine hot paths record through (metrics-only unless a
#: profiling tracer is attached via :func:`set_profiling_tracer`).
_DEFAULT_PROFILER = StageProfiler()
_ACTIVE_PROFILER = _DEFAULT_PROFILER


def set_profiling_tracer(tracer: Tracer | None) -> None:
    """Attach (or detach, with None) a tracer for engine-stage spans.

    The attached tracer receives ``stage:*`` span pairs carrying real
    wall-clock ``elapsed_s`` from every subsequent :func:`profile_stage`
    section.  It must be a *dedicated* profiling tracer — never the
    campaign tracer, whose stream is contractually clock-free and
    byte-reproducible.
    """
    global _ACTIVE_PROFILER
    if tracer is None:
        _ACTIVE_PROFILER = _DEFAULT_PROFILER
    else:
        _ACTIVE_PROFILER = StageProfiler(tracer=tracer)


def profile_stage(name: str):
    """Module-level convenience: one-shot stage section on ENGINE_METRICS.

    The engine's hot paths use this directly so call sites stay one
    line: ``with profile_stage("dispatch"): ...``.
    """
    return _ACTIVE_PROFILER.stage(name)
