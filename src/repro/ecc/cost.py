"""Software cycle costs of each codec.

Calibration anchor (sect. 4.1): "a benchmark on a Snapdragon 801 shows that
verifying 2 GB of memory using a software BCH coding scheme takes over
7 minutes of valuable CPU time."  At the Snapdragon 801's 2.5 GHz
(Table 1), 7 minutes over 2 GiB is:

    7 * 60 s * 2.5e9 Hz / 2**31 B  ~=  489 cycles/byte

The other codecs are scaled from their relative arithmetic density: CRC-32
is one table lookup + xor per byte (~8 cycles/byte in scalar code), SECDED
is ~7 parity trees over each 8-byte word (~24 cycles/byte), parity is one
tree (~4 cycles/byte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CodecCostModel:
    """CPU cost of scanning memory with one codec.

    Attributes:
        name: codec identifier.
        cycles_per_byte: scalar-CPU verify cost.
        dsp_speedup: throughput multiplier when run on the vector DSP
            coprocessor (Hexagon-class HVX units process 128 bytes/insn).
        corrects: bit errors corrected per protected unit.
        detects: bit errors detected per protected unit.
    """

    name: str
    cycles_per_byte: float
    dsp_speedup: float
    corrects: int
    detects: int

    def cpu_cycles(self, n_bytes: int) -> float:
        """Cycles to verify ``n_bytes`` on the CPU."""
        return self.cycles_per_byte * n_bytes

    def dsp_cycles(self, n_bytes: int) -> float:
        """Cycles to verify ``n_bytes`` on the DSP coprocessor."""
        return self.cpu_cycles(n_bytes) / self.dsp_speedup


CODEC_COSTS: dict[str, CodecCostModel] = {
    c.name: c
    for c in [
        CodecCostModel("parity", cycles_per_byte=4.0, dsp_speedup=16.0,
                       corrects=0, detects=1),
        CodecCostModel("crc32", cycles_per_byte=8.0, dsp_speedup=12.0,
                       corrects=0, detects=1),
        CodecCostModel("secded", cycles_per_byte=24.0, dsp_speedup=16.0,
                       corrects=1, detects=2),
        CodecCostModel("bch", cycles_per_byte=489.0, dsp_speedup=8.0,
                       corrects=2, detects=4),
    ]
}


def cpu_seconds_to_scan(
    n_bytes: int, codec: str, clock_hz: float, on_dsp: bool = False
) -> float:
    """Wall-clock seconds to scan ``n_bytes`` with ``codec``."""
    if codec not in CODEC_COSTS:
        raise ConfigError(
            f"unknown codec {codec!r}; known: {sorted(CODEC_COSTS)}"
        )
    model = CODEC_COSTS[codec]
    cycles = model.dsp_cycles(n_bytes) if on_dsp else model.cpu_cycles(n_bytes)
    return cycles / clock_hz
