"""Per-word parity: the cheapest (detection-only) memory check."""

from __future__ import annotations

from repro.errors import ConfigError


class ParityCode:
    """Even parity over ``width``-bit words.

    Detects any odd number of bit flips; corrects nothing.  One check bit
    per word.
    """

    def __init__(self, width: int = 64) -> None:
        if width <= 0:
            raise ConfigError(f"word width must be positive, got {width}")
        self.width = width

    def encode(self, data: int) -> int:
        """Parity bit for ``data``."""
        if not 0 <= data < 1 << self.width:
            raise ConfigError(f"data does not fit in {self.width} bits")
        return bin(data).count("1") & 1

    def check(self, data: int, parity_bit: int) -> bool:
        """True when the stored parity matches the data."""
        return self.encode(data) == (parity_bit & 1)
