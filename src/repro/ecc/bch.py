"""Binary BCH codes over GF(2^m) with Berlekamp-Massey decoding.

A ``BchCode(m, t)`` has block length ``n = 2^m - 1`` bits and corrects up to
``t`` bit errors per block.  The generator polynomial is the LCM of the
minimal polynomials of alpha, alpha^2, ..., alpha^(2t); decoding computes
syndromes, runs Berlekamp-Massey to find the error-locator polynomial, and
locates errors by Chien search.

This is the "software BCH coding scheme" the paper benchmarks for memory
verification (sect. 4.1); the scrubber uses it through
:class:`repro.core.scrubber.verifier.PageVerifier`.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.gf2 import GF2m, gf2_poly_degree, gf2_poly_mod, gf2_poly_mul
from repro.errors import ConfigError, UncorrectableError


def _minimal_polynomial(field: GF2m, element_log: int) -> int:
    """Packed GF(2)[x] minimal polynomial of alpha**element_log.

    The minimal polynomial's roots are the conjugacy class
    {alpha^(e * 2^i)}; the product of (x - root) over the class has
    coefficients in GF(2).
    """
    # Collect the conjugacy class of exponents.
    exponents = set()
    e = element_log % field.order
    while e not in exponents:
        exponents.add(e)
        e = (e * 2) % field.order
    # Multiply out prod (x + alpha^e) over the class, in GF(2^m)[x].
    poly = [1]  # constant 1 (degree-0 polynomial)
    for exp in sorted(exponents):
        root = field.alpha_pow(exp)
        poly = field.poly_mul(poly, [root, 1])  # (root + x)
    # All coefficients must land in GF(2).
    packed = 0
    for degree, coeff in enumerate(poly):
        if coeff not in (0, 1):
            raise AssertionError(
                "minimal polynomial has non-binary coefficient"
            )  # pragma: no cover - mathematically impossible
        if coeff:
            packed |= 1 << degree
    return packed


def _lcm_packed(polys: list[int]) -> int:
    """LCM of packed GF(2)[x] polynomials (product of distinct factors)."""
    seen: list[int] = []
    for p in polys:
        if p not in seen:
            seen.append(p)
    result = 1
    for p in seen:
        result = gf2_poly_mul(result, p)
    return result


class BchCode:
    """A binary BCH(n=2^m-1, k, t) code.

    Attributes:
        m: field exponent (block length n = 2^m - 1 bits).
        t: correctable errors per block.
        n: block length in bits.
        k: data bits per block.
        n_parity: parity bits per block (n - k).
    """

    def __init__(self, m: int = 6, t: int = 2) -> None:
        if t < 1:
            raise ConfigError(f"t must be >= 1, got {t}")
        self.field = GF2m(m)
        self.m = m
        self.t = t
        self.n = self.field.order
        minimal = [
            _minimal_polynomial(self.field, i) for i in range(1, 2 * t + 1)
        ]
        self.generator = _lcm_packed(minimal)
        self.n_parity = gf2_poly_degree(self.generator)
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ConfigError(
                f"BCH(m={m}, t={t}) leaves no data bits (parity={self.n_parity})"
            )

    # -- bit-array plumbing ------------------------------------------------------

    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> int:
        value = 0
        for i, b in enumerate(bits):
            if b:
                value |= 1 << i
        return value

    @staticmethod
    def _int_to_bits(value: int, width: int) -> np.ndarray:
        return np.array(
            [(value >> i) & 1 for i in range(width)], dtype=np.uint8
        )

    # -- encode / decode ------------------------------------------------------------

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Systematic encode: returns ``n`` bits = data followed by parity."""
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape != (self.k,):
            raise ConfigError(
                f"BCH(m={self.m}, t={self.t}) encodes exactly {self.k} data "
                f"bits, got {data_bits.shape}"
            )
        message = self._bits_to_int(data_bits)
        # Systematic: codeword = data * x^(n-k) + (data * x^(n-k) mod g).
        shifted = message << self.n_parity
        parity = gf2_poly_mod(shifted, self.generator)
        codeword = shifted | parity
        return self._int_to_bits(codeword, self.n)

    def syndromes(self, codeword_bits: np.ndarray) -> list[int]:
        """Syndromes S_1..S_2t of a received word (all zero iff clean)."""
        field = self.field
        support = np.flatnonzero(np.asarray(codeword_bits, dtype=np.uint8))
        result = []
        for j in range(1, 2 * self.t + 1):
            s = 0
            for pos in support:
                s ^= field.alpha_pow(int(pos) * j)
            result.append(s)
        return result

    def decode(self, codeword_bits: np.ndarray) -> tuple[np.ndarray, int]:
        """Correct up to ``t`` errors; returns (data bits, errors corrected).

        Raises :class:`UncorrectableError` when the word is beyond the
        code's correction radius (detected but uncorrectable).
        """
        codeword_bits = np.asarray(codeword_bits, dtype=np.uint8).copy()
        if codeword_bits.shape != (self.n,):
            raise ConfigError(
                f"codeword must be {self.n} bits, got {codeword_bits.shape}"
            )
        synd = self.syndromes(codeword_bits)
        if not any(synd):
            return codeword_bits[self.n_parity:].copy(), 0

        locator = self._berlekamp_massey(synd)
        n_errors = len(locator) - 1
        if n_errors > self.t:
            raise UncorrectableError(
                f"error locator degree {n_errors} exceeds t={self.t}"
            )
        positions = self._chien_search(locator)
        if len(positions) != n_errors:
            raise UncorrectableError(
                "error locator does not split over the field "
                f"({len(positions)} roots for degree {n_errors})"
            )
        for pos in positions:
            codeword_bits[pos] ^= 1
        if any(self.syndromes(codeword_bits)):
            raise UncorrectableError(
                "residual syndrome after correction"
            )
        return codeword_bits[self.n_parity:].copy(), n_errors

    def _berlekamp_massey(self, synd: list[int]) -> list[int]:
        """Error-locator polynomial (coefficients low-to-high)."""
        field = self.field
        c = [1]
        b = [1]
        l_len = 0
        shift = 1
        b_coef = 1
        for n_iter in range(2 * self.t):
            # Discrepancy.
            d = synd[n_iter]
            for i in range(1, l_len + 1):
                if i < len(c) and c[i]:
                    d ^= field.mul(c[i], synd[n_iter - i])
            if d == 0:
                shift += 1
                continue
            t_poly = list(c)
            coef = field.div(d, b_coef)
            # c = c - (d/b) * x^shift * b
            needed = len(b) + shift
            if len(c) < needed:
                c = c + [0] * (needed - len(c))
            for i, bc in enumerate(b):
                if bc:
                    c[i + shift] ^= field.mul(coef, bc)
            if 2 * l_len <= n_iter:
                l_len = n_iter + 1 - l_len
                b = t_poly
                b_coef = d
                shift = 1
            else:
                shift += 1
        # Trim trailing zeros.
        while len(c) > 1 and c[-1] == 0:
            c.pop()
        return c

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Error positions: i such that alpha^-i is a root of the locator."""
        field = self.field
        positions = []
        for i in range(self.n):
            x = field.alpha_pow(-i % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(i)
        return positions

    # -- byte-level convenience ---------------------------------------------------

    def data_bytes_per_block(self) -> int:
        """Whole bytes of payload per block (shortened-code packing)."""
        return self.k // 8

    def encode_bytes(self, payload: bytes) -> np.ndarray:
        """Encode whole bytes (zero-padding the unused data bits)."""
        usable = self.data_bytes_per_block()
        if len(payload) > usable:
            raise ConfigError(
                f"block holds {usable} bytes, got {len(payload)}"
            )
        bits = np.zeros(self.k, dtype=np.uint8)
        raw = np.frombuffer(payload.ljust(usable, b"\0"), dtype=np.uint8)
        unpacked = np.unpackbits(raw, bitorder="little")
        bits[: len(unpacked)] = unpacked
        return self.encode(bits)

    def decode_bytes(self, codeword_bits: np.ndarray) -> tuple[bytes, int]:
        """Decode to whole bytes; returns (payload, errors corrected)."""
        data_bits, n_errors = self.decode(codeword_bits)
        usable = self.data_bytes_per_block()
        packed = np.packbits(data_bits[: usable * 8], bitorder="little")
        return packed.tobytes(), n_errors
