"""Hamming SECDED(72,64): single-error-correcting, double-error-detecting.

This is the code hardware ECC DIMMs implement per 64-bit word; the software
scrubber offers it as the middle point between parity (detect-only) and BCH
(multi-error) protection.  Construction: extended Hamming code — 7 check
bits over the 127-position Hamming layout restricted to 64 data bits, plus
one overall parity bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class DecodeStatus(enum.Enum):
    """Outcome of decoding one SECDED word."""

    CLEAN = "clean"
    CORRECTED = "corrected"          # single-bit error fixed
    DOUBLE_DETECTED = "double"       # two-bit error detected, not fixed


@dataclass(frozen=True)
class DecodeResult:
    """Decoded word plus what happened.

    Attributes:
        data: the (corrected) 64-bit payload.
        status: clean / corrected / double-detected.
        flipped_bit: corrected codeword position (None unless CORRECTED).
    """

    data: int
    status: DecodeStatus
    flipped_bit: int | None


class SecDedCode:
    """SECDED(72,64) over 64-bit integer words.

    Codeword layout (positions 1..71 as in a classic Hamming code, plus
    position 0 holding the overall parity): power-of-two positions hold
    check bits; the first 64 non-power-of-two positions hold data bits.
    """

    N_DATA = 64
    N_CHECK = 7  # positions 1, 2, 4, 8, 16, 32, 64
    N_TOTAL = 72  # 64 data + 7 hamming checks + 1 overall parity

    def __init__(self) -> None:
        self._data_positions = []
        pos = 1
        while len(self._data_positions) < self.N_DATA:
            if pos & (pos - 1):  # not a power of two
                self._data_positions.append(pos)
            pos += 1
        self._max_pos = self._data_positions[-1]
        self._check_positions = [
            1 << i for i in range((self._max_pos).bit_length())
        ]
        if len(self._check_positions) != self.N_CHECK:
            raise ConfigError(
                "SECDED layout error: "
                f"{len(self._check_positions)} check bits"
            )  # pragma: no cover - fixed layout

    # -- encode --------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Encode a 64-bit word into a 72-bit codeword (as an int).

        Codeword bit 0 is the overall parity; bit i (i >= 1) is Hamming
        position i.
        """
        if not 0 <= data < 1 << self.N_DATA:
            raise ConfigError("data word must fit in 64 bits")
        word = self._layout_checks(data)
        overall = bin(word >> 1).count("1") & 1
        if overall:
            word |= 1
        return word

    def _layout_checks(self, data: int) -> int:
        """Build the codeword with check bits placed at their positions."""
        word = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << pos
        for check in self._check_positions:
            parity = 0
            pos = 1
            while pos <= self._max_pos:
                if pos != check and (pos & check) and (word >> pos) & 1:
                    parity ^= 1
                pos += 1
            if parity:
                word |= 1 << check
        return word

    @staticmethod
    def _pos_index(pos: int) -> int:
        return pos

    # -- decode --------------------------------------------------------------

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a 72-bit codeword, correcting one or detecting two flips."""
        syndrome = 0
        for check in self._check_positions:
            parity = 0
            pos = 1
            while pos <= self._max_pos:
                if (pos & check) and (codeword >> pos) & 1:
                    parity ^= 1
                pos += 1
            if parity:
                syndrome |= check
        overall = bin(codeword).count("1") & 1

        if syndrome == 0 and overall == 0:
            return DecodeResult(self._extract(codeword), DecodeStatus.CLEAN, None)
        if syndrome != 0 and overall == 1:
            # Single-bit error at position `syndrome` (could be a check bit).
            corrected = codeword ^ (1 << syndrome)
            return DecodeResult(
                self._extract(corrected), DecodeStatus.CORRECTED, syndrome
            )
        if syndrome == 0 and overall == 1:
            # The overall parity bit itself flipped.
            corrected = codeword ^ 1
            return DecodeResult(
                self._extract(corrected), DecodeStatus.CORRECTED, 0
            )
        # syndrome != 0 and overall == 0: double-bit error.
        return DecodeResult(
            self._extract(codeword), DecodeStatus.DOUBLE_DETECTED, None
        )

    def _extract(self, codeword: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (codeword >> pos) & 1:
                data |= 1 << i
        return data
