"""Galois-field arithmetic GF(2^m) via log/antilog tables.

The BCH codec needs multiplication, inversion and discrete logs in
GF(2^m).  Elements are represented as integers in [0, 2^m); addition is
XOR.  Tables are built once per field from a primitive polynomial.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Primitive polynomials (as integer bit masks, including the x^m term) for
#: the field sizes the library supports.
PRIMITIVE_POLYS = {
    3: 0b1011,            # x^3 + x + 1
    4: 0b10011,           # x^4 + x + 1
    5: 0b100101,          # x^5 + x^2 + 1
    6: 0b1000011,         # x^6 + x + 1
    7: 0b10001001,        # x^7 + x^3 + 1
    8: 0b100011101,       # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,      # x^9 + x^4 + 1
    10: 0b10000001001,    # x^10 + x^3 + 1
    11: 0b100000000101,   # x^11 + x^2 + 1
    12: 0b1000001010011,  # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011, # x^13 + x^4 + x^3 + x + 1
}


class GF2m:
    """The finite field GF(2^m).

    Attributes:
        m: field exponent.
        size: 2^m.
        order: multiplicative group order, 2^m - 1.
    """

    def __init__(self, m: int) -> None:
        if m not in PRIMITIVE_POLYS:
            raise ConfigError(
                f"unsupported field GF(2^{m}); supported m: "
                f"{sorted(PRIMITIVE_POLYS)}"
            )
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1
        self.prim_poly = PRIMITIVE_POLYS[m]
        self._exp = [0] * (2 * self.order)
        self._log = [0] * self.size
        x = 1
        for i in range(self.order):
            self._exp[i] = x
            self._log[x] = i
            x <<= 1
            if x & self.size:
                x ^= self.prim_poly
        # Duplicate the exp table so exp[i + j] never needs a modulo.
        for i in range(self.order, 2 * self.order):
            self._exp[i] = self._exp[i - self.order]

    # -- element arithmetic ----------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Field product of two elements."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field quotient ``a / b``."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[self._log[a] - self._log[b] + self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.order - self._log[a]]

    def pow(self, a: int, n: int) -> int:
        """``a ** n`` in the field."""
        if a == 0:
            return 0 if n > 0 else 1
        return self._exp[(self._log[a] * n) % self.order]

    def alpha_pow(self, n: int) -> int:
        """``alpha ** n`` for the primitive element alpha."""
        return self._exp[n % self.order]

    def log(self, a: int) -> int:
        """Discrete log base alpha."""
        if a == 0:
            raise ValueError("log of zero is undefined")
        return self._log[a]

    # -- polynomials over this field (coefficient lists, index = degree) -------

    def poly_eval(self, poly: list[int], x: int) -> int:
        """Evaluate a polynomial (coefficients low-to-high) at ``x``."""
        result = 0
        for coeff in reversed(poly):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        """Product of two polynomials over the field."""
        result = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    result[i + j] ^= self.mul(ca, cb)
        return result


def gf2_poly_mul(a: int, b: int) -> int:
    """Multiply two GF(2)[x] polynomials packed as integer bit masks."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def gf2_poly_mod(a: int, mod: int) -> int:
    """Remainder of GF(2)[x] division, operands packed as bit masks."""
    if mod == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    mod_deg = mod.bit_length() - 1
    while a.bit_length() - 1 >= mod_deg and a:
        shift = (a.bit_length() - 1) - mod_deg
        a ^= mod << shift
    return a


def gf2_poly_degree(a: int) -> int:
    """Degree of a packed GF(2)[x] polynomial (-1 for the zero poly)."""
    return a.bit_length() - 1
