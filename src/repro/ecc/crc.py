"""CRC-32 (IEEE 802.3 polynomial) page checksums.

Detection-only: the scrubber's default page-granularity integrity check.
Table-driven implementation, the same structure a flight-software C
implementation would use.
"""

from __future__ import annotations

_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of ``data`` (compatible with zlib.crc32)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class Crc32Code:
    """Object API over :func:`crc32` matching the other codecs."""

    def encode(self, data: bytes) -> int:
        """Checksum of a page/payload."""
        return crc32(data)

    def check(self, data: bytes, checksum: int) -> bool:
        """True when ``data`` matches the stored checksum."""
        return crc32(data) == checksum
