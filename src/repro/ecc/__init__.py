"""Error-correcting codes for software memory protection.

Real implementations (not stubs) of the codes a software scrubber would
run:

- :mod:`repro.ecc.parity` — per-word parity (single-error *detection*).
- :mod:`repro.ecc.hamming` — Hamming SECDED(72,64): corrects any single-bit
  error per 64-bit word, detects any double-bit error.
- :mod:`repro.ecc.bch` — binary BCH over GF(2^m) with Berlekamp-Massey
  decoding: corrects up to t errors per block (the paper's "software BCH
  coding scheme", sect. 4.1).
- :mod:`repro.ecc.crc` — CRC-32 (detection-only page checksums).
- :mod:`repro.ecc.cost` — software cycle-cost model per codec, calibrated
  to the paper's observation that verifying 2 GB with software BCH takes
  over 7 minutes of CPU on a Snapdragon 801.
"""

from repro.ecc.gf2 import GF2m
from repro.ecc.parity import ParityCode
from repro.ecc.hamming import SecDedCode, DecodeStatus
from repro.ecc.bch import BchCode
from repro.ecc.crc import crc32, Crc32Code
from repro.ecc.cost import CodecCostModel, CODEC_COSTS, cpu_seconds_to_scan

__all__ = [
    "GF2m", "ParityCode", "SecDedCode", "DecodeStatus", "BchCode",
    "crc32", "Crc32Code", "CodecCostModel", "CODEC_COSTS",
    "cpu_seconds_to_scan",
]
