"""Small helpers for physical units used throughout the simulator.

Internally the library standardises on SI base units: seconds, amperes,
watts, joules, bytes and (dimensionless) CPU cycles.  These helpers exist to
make call sites read naturally (``milliamps(5)``) and to keep conversion
factors in one place.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0
#: One Martian sol in seconds (24 h 39 m 35 s), used by the Perseverance
#: SEU-rate calibration in the paper (sect. 4).
SECONDS_PER_SOL = 88_775.0


def milliamps(value: float) -> float:
    """Convert milliamperes to amperes."""
    return value * 1e-3


def amps_to_milliamps(value: float) -> float:
    """Convert amperes to milliamperes."""
    return value * 1e3


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def mib(value: float) -> int:
    """Convert mebibytes to bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Convert gibibytes to bytes."""
    return int(value * GIB)


def bytes_to_bits(n_bytes: int) -> int:
    """Number of bits in ``n_bytes`` bytes."""
    return n_bytes * 8


def per_day_to_per_second(rate: float) -> float:
    """Convert an event rate expressed per day into per second."""
    return rate / SECONDS_PER_DAY


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Wall-clock duration of ``cycles`` cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {clock_hz}")
    return cycles / clock_hz
