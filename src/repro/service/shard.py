"""Shard routing: partition a fleet's boards across scoring workers.

The shard router answers one question deterministically: *which worker
scores which board*.  Boards are assigned round-robin by member index —
board ``i`` belongs to shard ``i % n_shards`` — which balances shard
sizes to within one board and, crucially, is a pure function of
``(member order, n_shards)``, so every component (ingestion, supervisor,
crash recovery, the offline trace replay) derives the same routing
without coordination.

Each shard wraps one :class:`~repro.detect.fleet.FleetScorer` over its
subset of boards, sharing the fleet's single fitted detector.  Because
batched scoring is bitwise-equal to per-board scoring (the PR 5
equivalence gate) and every per-board quantity in the scorer — alarm
persistence, quarantine streaks, sequential detector state — evolves
independently of the other boards, a shard's boards evolve *exactly* as
they would inside one whole-fleet scorer.  That is the byte-identity
guarantee the soak test gates: shard-local histories concatenate to the
synchronous single-scorer run.

Shards follow the mission phase themselves (threshold tightening is a
pure function of the timeline and the tick time), and expose
:meth:`ShardScorer.snapshot` / :meth:`ShardScorer.restore` so a crashed
worker can be rebuilt mid-run without losing quarantine state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.sel.fleet import DEFAULT_PHASE_THRESHOLD_SCALES
from repro.detect.base import AnomalyDetector
from repro.detect.fleet import FleetConfig, FleetScorer
from repro.errors import ConfigError
from repro.radiation.schedule import EnvironmentTimeline, MissionPhase


def shard_boards(board_ids: list[str], n_shards: int) -> list[list[str]]:
    """Round-robin partition: board ``i`` -> shard ``i % n_shards``.

    Deterministic in (order, n_shards); every shard gets within one
    board of every other.  ``n_shards`` is clamped to the fleet size so
    no shard is ever empty.
    """
    if n_shards < 1:
        raise ConfigError(f"need at least one shard, got {n_shards}")
    if not board_ids:
        raise ConfigError("cannot shard an empty fleet")
    n_shards = min(n_shards, len(board_ids))
    shards: list[list[str]] = [[] for _ in range(n_shards)]
    for i, board_id in enumerate(board_ids):
        shards[i % n_shards].append(board_id)
    return shards


@dataclass(frozen=True)
class ShardStepResult:
    """One shard's decision for one tick (picklable, scalar-only lists).

    Attributes:
        shard: shard index.
        tick: logical tick index.
        t: simulated tick time.
        n_boards: boards routed to this shard.
        n_scored: boards actually scored this tick.
        n_anomalous: boards past threshold this tick.
        alarms: ids of boards whose persistent alarm fired.
        quarantined: ids newly quarantined this tick.
        released: ids released from quarantine this tick.
        max_score: largest finite score (0.0 if none).
        warming_up: inside the warmup window.
        phase: mission phase at ``t`` ("" without a timeline).
        threshold_scale: detector threshold scale in force.
    """

    shard: int
    tick: int
    t: float
    n_boards: int
    n_scored: int
    n_anomalous: int
    alarms: tuple[str, ...]
    quarantined: tuple[str, ...]
    released: tuple[str, ...]
    max_score: float
    warming_up: bool
    phase: str = ""
    threshold_scale: float = 1.0


@dataclass
class ShardState:
    """A shard scorer's full mutable state, exact and picklable.

    Captured with :meth:`ShardScorer.snapshot`, restored with
    :meth:`ShardScorer.restore`.  Holds deep copies of per-board
    bookkeeping, sequential detector stream state (numpy arrays pickle
    bit-exactly), the health rollup (integer counts + rational sums)
    and the warmup/phase scalars — everything needed to resume a shard
    byte-identically after a crash.
    """

    tick: int
    boards: list
    stream_state: object
    start_t: float | None
    threshold_scale: float
    health: object
    phase: str | None


class ShardScorer:
    """One shard: a FleetScorer over a board subset, phase-following.

    Attributes:
        index: shard index within the fleet.
        board_ids: boards routed here, in fleet member order.
        scorer: the wrapped batched scorer (shares the fleet detector).
    """

    def __init__(
        self,
        index: int,
        detector: AnomalyDetector,
        board_ids: list[str],
        config: FleetConfig = FleetConfig(),
        timeline: EnvironmentTimeline | None = None,
        threshold_scales: dict[MissionPhase, float] | None = None,
    ) -> None:
        self.index = index
        self.board_ids = list(board_ids)
        self.scorer = FleetScorer(detector, self.board_ids, config)
        self.timeline = timeline
        self.threshold_scales = dict(
            threshold_scales
            if threshold_scales is not None
            else DEFAULT_PHASE_THRESHOLD_SCALES
        )
        self._phase: MissionPhase | None = None
        self._tick = -1

    @property
    def n_boards(self) -> int:
        return len(self.board_ids)

    def _apply_phase(self, t: float) -> None:
        """Pure function of (timeline, t): every shard derives the same
        scale the synchronous service would have set fleet-wide."""
        phase = self.timeline.phase_at(t)
        if phase is self._phase:
            return
        self._phase = phase
        self.scorer.set_threshold_scale(
            self.threshold_scales.get(phase, 1.0)
        )

    def step_tick(
        self, tick: int, t: float, rows: np.ndarray
    ) -> ShardStepResult:
        """Score one tick's rows for this shard's boards."""
        if tick <= self._tick:
            raise ConfigError(
                f"shard {self.index}: tick {tick} after {self._tick}"
            )
        self._tick = tick
        if self.timeline is not None:
            self._apply_phase(t)
        step = self.scorer.step(t, rows)
        finite = step.scores[np.isfinite(step.scores)]
        return ShardStepResult(
            shard=self.index,
            tick=tick,
            t=t,
            n_boards=self.n_boards,
            n_scored=step.n_scored,
            n_anomalous=int(step.anomalous.sum()),
            alarms=tuple(self.board_ids[i] for i in step.alarms),
            quarantined=tuple(self.board_ids[i] for i in step.quarantined),
            released=tuple(self.board_ids[i] for i in step.released),
            max_score=float(finite.max()) if len(finite) else 0.0,
            warming_up=step.warming_up,
            phase=self._phase.value if self._phase is not None else "",
            threshold_scale=self.scorer.threshold_scale,
        )

    # -- crash recovery --------------------------------------------------------

    def snapshot(self) -> ShardState:
        """Deep-copy the full mutable state (the detector is shared and
        read-only during scoring, so it stays out of the snapshot)."""
        scorer = self.scorer
        return ShardState(
            tick=self._tick,
            boards=copy.deepcopy(scorer.boards),
            stream_state=copy.deepcopy(scorer._stream_state),
            start_t=scorer._start_t,
            threshold_scale=scorer._threshold_scale,
            health=copy.deepcopy(scorer.health),
            phase=self._phase.value if self._phase is not None else None,
        )

    def restore(self, state: ShardState) -> None:
        """Restore a snapshot (deep-copied again, so one ShardState can
        seed several restores without aliasing)."""
        scorer = self.scorer
        scorer.boards = copy.deepcopy(state.boards)
        scorer._stream_state = copy.deepcopy(state.stream_state)
        scorer._start_t = state.start_t
        scorer._threshold_scale = state.threshold_scale
        scorer.health = copy.deepcopy(state.health)
        self._phase = (
            MissionPhase(state.phase) if state.phase is not None else None
        )
        self._tick = state.tick
