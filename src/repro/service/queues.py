"""Bounded per-board ingestion queues with explicit shed policies.

The mission-control service never lets one chatty (or bursty) board run
the ground station out of memory: every board owns one bounded FIFO of
telemetry frames, and when the queue is full the configured
:class:`ShedPolicy` decides *which* frame loses —

- ``DROP_OLDEST``: admit the new frame, shed the queue's oldest one
  (freshest-data-wins; the scorer sees a gap in the past);
- ``REJECT``: refuse the new frame, keep the backlog (oldest-data-wins;
  the scorer sees a gap at the front).

Both policies preserve the one invariant everything downstream relies
on: **frames within a board are never reordered** — the queue holds a
strictly-increasing run of tick indices at all times, so per-board
detector state always advances monotonically.  Conservation is exact
and checkable at any instant::

    arrivals == processed + shed + len(queue)

The hypothesis property suite (``tests/service/test_backpressure_properties.py``)
drives random burst schedules through random queue bounds and asserts
both invariants plus deadlock freedom.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections import deque

import numpy as np

from repro.errors import ConfigError


class ShedPolicy(enum.Enum):
    """What a full queue does with the next arrival."""

    DROP_OLDEST = "drop-oldest"
    REJECT = "reject"


@dataclass(frozen=True)
class Frame:
    """One telemetry frame in flight through the service.

    Attributes:
        board_id: board the row came from.
        tick: logical tick index (strictly increasing per board).
        t: simulated sample time.
        row: featurized telemetry row (NaN row = sensor dropout).
        enqueued_pc: ``perf_counter`` stamp at enqueue (decision-latency
            measurement only; never traced, traces stay clock-free).
    """

    board_id: str
    tick: int
    t: float
    row: np.ndarray
    enqueued_pc: float = 0.0


@dataclass(frozen=True)
class OfferResult:
    """Outcome of offering one frame to a bounded queue.

    Attributes:
        accepted: whether the offered frame entered the queue.
        shed: the frame that lost, if any (the offered frame itself
            under REJECT; the previous head under DROP_OLDEST).
    """

    accepted: bool
    shed: Frame | None = None


@dataclass
class BoardQueue:
    """One board's bounded FIFO of telemetry frames.

    Attributes:
        board_id: owning board.
        capacity: maximum frames held (>= 1).
        policy: what to do with an arrival when full.
        arrivals: frames ever offered.
        processed: frames ever popped.
        shed: frames ever lost to the policy.
    """

    board_id: str
    capacity: int = 64
    policy: ShedPolicy = ShedPolicy.DROP_OLDEST
    arrivals: int = 0
    processed: int = 0
    shed: int = 0
    _frames: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(
                f"queue capacity must be >= 1, got {self.capacity}"
            )
        if not isinstance(self.policy, ShedPolicy):
            self.policy = ShedPolicy(self.policy)

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        return len(self._frames) >= self.capacity

    def peek(self) -> Frame | None:
        """The next frame to pop, without popping it."""
        return self._frames[0] if self._frames else None

    def offer(self, frame: Frame) -> OfferResult:
        """Offer one frame; the policy resolves overflow.

        Ticks must arrive strictly increasing per board — reordered
        ingestion would silently corrupt sequential detector state, so
        it is a hard error rather than a shed.
        """
        if frame.board_id != self.board_id:
            raise ConfigError(
                f"frame for {frame.board_id!r} offered to queue "
                f"{self.board_id!r}"
            )
        if self._frames and frame.tick <= self._frames[-1].tick:
            raise ConfigError(
                f"out-of-order frame for {self.board_id!r}: tick "
                f"{frame.tick} after {self._frames[-1].tick}"
            )
        self.arrivals += 1
        if not self.full:
            self._frames.append(frame)
            return OfferResult(accepted=True)
        if self.policy is ShedPolicy.REJECT:
            self.shed += 1
            return OfferResult(accepted=False, shed=frame)
        oldest = self._frames.popleft()
        self.shed += 1
        self._frames.append(frame)
        return OfferResult(accepted=True, shed=oldest)

    def pop(self) -> Frame | None:
        """Remove and return the oldest frame (None when empty)."""
        if not self._frames:
            return None
        self.processed += 1
        return self._frames.popleft()

    def pop_tick(self, tick: int) -> tuple[Frame | None, list[Frame]]:
        """Pop the frame for ``tick``, discarding any staler frames.

        Returns ``(frame_or_None, stale)`` where ``stale`` are frames
        with tick < the requested one (possible when the consumer
        skipped ahead after sheds); stale frames count as processed —
        they left the queue through the consumer, not the policy.
        """
        stale: list[Frame] = []
        while self._frames and self._frames[0].tick < tick:
            stale.append(self._frames.popleft())
            self.processed += 1
        if self._frames and self._frames[0].tick == tick:
            self.processed += 1
            return self._frames.popleft(), stale
        return None, stale

    def conservation_holds(self) -> bool:
        """The exact-accounting invariant (checked by property tests)."""
        return self.arrivals == self.processed + self.shed + len(self)
