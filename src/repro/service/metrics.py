"""Decision-latency metrics for the mission-control service.

Latency is measured wall-clock (``perf_counter``) from the instant a
frame is enqueued to the instant the supervisor applies the decision
that consumed it.  Stamps live only on in-flight
:class:`~repro.service.queues.Frame` objects and in this tracker —
never in traced events, which stay clock-free and byte-identical across
runs.

Percentiles use the nearest-rank definition (ceil(p/100 * n)), so every
reported quantile is an actually-observed sample, and the edge cases
are NaN-free by contract:

- an **empty** window reports ``count == 0`` and the explicit
  ``0.0`` sentinel for mean/max and every percentile (consumers must
  key off ``count``, not the values);
- a **single-sample** window reports that sample for every percentile
  (nearest-rank of one value is that value — no interpolation, no NaN).

``tests/service/test_metrics_edge.py`` pins both contracts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.aggregate import latency_histogram

#: Value reported for mean/max/percentiles of an empty window.  Chosen
#: over NaN so summaries stay JSON-round-trippable and comparable; the
#: paired ``count == 0`` disambiguates "no data" from "zero latency".
EMPTY_SENTINEL = 0.0

#: Percentiles every summary reports.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


def nearest_rank(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over pre-sorted values.

    Returns :data:`EMPTY_SENTINEL` for an empty input; for a single
    value returns that value for every ``p``.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    n = len(sorted_values)
    if n == 0:
        return EMPTY_SENTINEL
    rank = math.ceil(p / 100.0 * n)
    return float(sorted_values[max(rank, 1) - 1])


def latency_summary(
    values: list[float],
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """NaN-free summary of a latency window (seconds).

    Non-finite samples are excluded from the statistics but reported in
    ``dropped`` so the accounting stays exact.
    """
    finite = sorted(v for v in values if math.isfinite(v))
    summary: dict[str, float] = {
        "count": len(finite),
        "dropped": len(values) - len(finite),
    }
    if finite:
        summary["mean"] = sum(finite) / len(finite)
        summary["max"] = finite[-1]
    else:
        summary["mean"] = EMPTY_SENTINEL
        summary["max"] = EMPTY_SENTINEL
    for p in percentiles:
        name = f"p{int(p)}" if float(p).is_integer() else f"p{p}"
        summary[name] = nearest_rank(finite, p)
    return summary


@dataclass
class DecisionLatencyTracker:
    """Accumulates enqueue-to-decision latencies, optionally windowed.

    Attributes:
        window_s: simulated-time width of summary windows (None keeps
            one global window).
        histogram: canonical fixed-bucket latency histogram (same
            bounds as ``fleet.score_latency_s``), mergeable with the
            rest of the observability stack.
    """

    window_s: float | None = None
    _samples: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("window_s must be positive when set")
        self.histogram = latency_histogram()

    @property
    def count(self) -> int:
        return len(self._samples)

    def record(self, t: float, latency_s: float) -> None:
        """Record one decision latency observed at simulated time ``t``."""
        self._samples.append((t, latency_s))
        if math.isfinite(latency_s):
            self.histogram.record(latency_s)

    def summary(self) -> dict[str, float]:
        """Summary over every recorded sample."""
        return latency_summary([lat for _, lat in self._samples])

    def window_summaries(self) -> dict[int, dict[str, float]]:
        """Per-window summaries keyed by window index (floor(t / width)).

        Without a configured window everything lands in window 0.
        Windows that received no samples are simply absent — callers
        probing a missing window get the same empty-window sentinel
        contract via :func:`latency_summary` on an empty list.
        """
        buckets: dict[int, list[float]] = {}
        for t, lat in self._samples:
            index = (
                0 if self.window_s is None else int(t // self.window_s)
            )
            buckets.setdefault(index, []).append(lat)
        return {
            index: latency_summary(values)
            for index, values in sorted(buckets.items())
        }


def rows_per_second(n_rows: int, elapsed_s: float) -> float:
    """Throughput with a zero-elapsed guard (0.0, never inf/NaN)."""
    if elapsed_s <= 0 or n_rows <= 0:
        return 0.0
    return n_rows / elapsed_s
