"""Fleet supervision across shard boundaries.

Shards score; the supervisor *decides*.  It is the single owner of every
side effect a shard decision implies — per-board power-cycle escalation
(the board's :class:`~repro.core.sel.policy.PowerCycleController`, whose
cooldown must survive shard crashes), the authoritative cross-shard
quarantine set, the per-board alarm history, and the latest state
snapshot of every shard (the crash-recovery anchor).  Because all of
that lives here, in the parent process, a shard worker is pure
compute: killing one loses nothing that cannot be rebuilt from the
supervisor's snapshot plus the replay buffer.

Per shard result it emits one :class:`~repro.obs.events.FleetDecision`
(scoped to that shard's boards) and one
:class:`~repro.obs.events.BoardPowerCycle` per commanded reboot, so the
per-board alarm/escalation history is reconstructible from the JSONL
trace alone (``repro.service.replay.service_history``) — the same
replayability contract the synchronous service has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sel.fleet import FleetMember
from repro.errors import ConfigError
from repro.obs.events import BoardPowerCycle, FleetDecision, Tracer
from repro.service.shard import ShardState, ShardStepResult


@dataclass
class ShardCheckpoint:
    """The supervisor's latest recovery anchor for one shard."""

    tick: int
    state: ShardState


@dataclass
class FleetSupervisor:
    """Owns escalation, quarantine and recovery state for the fleet.

    Attributes:
        members: all fleet members, in fleet order (shared with the
            ingestion side; controllers and boards are mutated here
            only).
        tracer: optional event bus.
        alarm_history: per-board alarm times, in application order.
        quarantined: boards currently quarantined, fleet-wide.
        checkpoints: latest snapshot per shard index.
    """

    members: list[FleetMember]
    tracer: Tracer | None = None
    alarm_history: dict[str, list[float]] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    checkpoints: dict[int, ShardCheckpoint] = field(default_factory=dict)
    ticks_applied: int = 0

    def __post_init__(self) -> None:
        self._by_id = {m.board_id: m for m in self.members}
        if len(self._by_id) != len(self.members):
            raise ConfigError("board ids must be unique")

    def member(self, board_id: str) -> FleetMember:
        member = self._by_id.get(board_id)
        if member is None:
            raise ConfigError(f"unknown board id {board_id!r}")
        return member

    def apply(self, result: ShardStepResult) -> list[str]:
        """Apply one shard decision; returns the boards power-cycled.

        Escalation runs in fleet member order *within* the result (the
        shard already reports alarms in its board order), and each
        board's controller sees exactly the alarm sequence it would see
        under the synchronous service — alarms are per-board events and
        boards never migrate between shards mid-run.
        """
        self.ticks_applied += 1
        for board_id in result.quarantined:
            self.quarantined.add(board_id)
        for board_id in result.released:
            self.quarantined.discard(board_id)
        rebooted: list[str] = []
        for board_id in result.alarms:
            self.alarm_history.setdefault(board_id, []).append(result.t)
            member = self.member(board_id)
            had_latchup = bool(member.board.active_latchups)
            if member.controller.on_alarm(result.t):
                rebooted.append(board_id)
                if self.tracer is not None:
                    self.tracer.emit(
                        BoardPowerCycle(
                            t=result.t,
                            board_id=board_id,
                            shard=result.shard,
                            had_latchup=had_latchup,
                        )
                    )
        if self.tracer is not None:
            self.tracer.emit(
                FleetDecision(
                    t=result.t,
                    n_boards=result.n_boards,
                    n_scored=result.n_scored,
                    n_anomalous=result.n_anomalous,
                    alarms=",".join(result.alarms),
                    quarantined=",".join(result.quarantined),
                    released=",".join(result.released),
                    max_score=result.max_score,
                    warming_up=result.warming_up,
                )
            )
        return rebooted

    def checkpoint(self, shard: int, tick: int, state: ShardState) -> None:
        """Record a shard's latest snapshot (the recovery anchor)."""
        self.checkpoints[shard] = ShardCheckpoint(tick=tick, state=state)

    def recovery_anchor(self, shard: int) -> ShardCheckpoint:
        anchor = self.checkpoints.get(shard)
        if anchor is None:
            raise ConfigError(
                f"no snapshot recorded for shard {shard}; cannot recover"
            )
        return anchor

    # -- histories (the byte-identity surface) ---------------------------------

    def alarm_times(self) -> dict[str, list[float]]:
        """Per-board alarm times (compare with
        :meth:`repro.core.sel.fleet.SelFleetService.alarm_times`)."""
        return {
            board_id: list(times)
            for board_id, times in self.alarm_history.items()
            if times
        }

    def reboot_times(self) -> dict[str, list[float]]:
        """Per-board commanded power-cycle times, from the controllers."""
        return {
            m.board_id: list(m.controller.reboots)
            for m in self.members
            if m.controller.reboots
        }
