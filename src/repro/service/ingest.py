"""Telemetry sources and the queue-fronted ingestion of one shard.

Two ways telemetry enters the service:

- :class:`LiveBoardSource` — sample the simulated boards themselves,
  replicating the synchronous service's per-board semantics exactly:
  each board draws only from its own RNG, a destroyed board yields NaN
  rows forever after, and sampling order across boards is immaterial.
  This is the mode the byte-identity soak test runs, because escalation
  (power cycles) feeds back into what the next sample reads.
- :class:`ReplaySource` — a pre-recorded ``(n_ticks, n_boards, d)``
  telemetry tensor, the load generator's saturation mode: frames are
  served as fast as the pipeline will take them, with no feedback into
  the recording.

:class:`ShardIngest` fronts one shard's boards with bounded
:class:`~repro.service.queues.BoardQueue`\\ s: ``produce`` samples and
offers one tick's frames (emitting a traced
:class:`~repro.obs.events.QueueShed` per shed), ``assemble`` pops one
tick back out as the row matrix the shard scorer consumes — a board
whose frame was shed scores as a sensor dropout (NaN row) for that
tick, which is exactly how the fleet scorer treats a failed sensor.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sel.featurizer import Featurizer
from repro.core.sel.fleet import FleetMember
from repro.errors import ConfigError, DeviceDestroyed
from repro.obs.events import QueueShed, Tracer
from repro.service.queues import BoardQueue, Frame, ShedPolicy
from repro.telemetry.sampler import sample_fleet_tick


class LiveBoardSource:
    """Samples live simulated boards (escalation feedback included)."""

    def __init__(self, members: list[FleetMember]) -> None:
        if not members:
            raise ConfigError("live source needs at least one member")
        n_cores = members[0].board.spec.n_cores
        if any(m.board.spec.n_cores != n_cores for m in members):
            raise ConfigError("fleet members must share a core count")
        self.members = members
        self.featurizer = Featurizer(n_cores=n_cores)

    @property
    def n_columns(self) -> int:
        return self.featurizer.n_columns

    def row(self, index: int, tick: int, t: float) -> np.ndarray:
        """One board's featurized row at ``t`` (NaN once destroyed)."""
        member = self.members[index]
        if member.dead:
            return np.full(self.n_columns, np.nan)
        try:
            samples = sample_fleet_tick(
                [member.board], [member.schedule], t
            )
        except DeviceDestroyed:
            member.dead = True
            return np.full(self.n_columns, np.nan)
        return self.featurizer.row(samples[0])


class ReplaySource:
    """Serves a pre-recorded telemetry tensor (saturation mode)."""

    def __init__(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 3:
            raise ConfigError(
                f"replay tensor must be (ticks, boards, d), got {rows.shape}"
            )
        self.rows = rows

    @property
    def n_ticks(self) -> int:
        return self.rows.shape[0]

    @property
    def n_columns(self) -> int:
        return self.rows.shape[2]

    def row(self, index: int, tick: int, t: float) -> np.ndarray:
        if tick >= self.n_ticks:
            raise ConfigError(
                f"replay exhausted: tick {tick} of {self.n_ticks}"
            )
        return self.rows[tick, index]


class ShardIngest:
    """One shard's bounded ingestion front: produce frames, assemble ticks.

    Attributes:
        shard: shard index (trace labeling only).
        board_indices: fleet member indices of this shard's boards.
        board_ids: ids, index-aligned with ``board_indices``.
        queues: one bounded queue per board.
    """

    def __init__(
        self,
        shard: int,
        board_indices: list[int],
        board_ids: list[str],
        source,
        capacity: int = 64,
        policy: ShedPolicy = ShedPolicy.DROP_OLDEST,
        tracer: Tracer | None = None,
    ) -> None:
        if len(board_indices) != len(board_ids):
            raise ConfigError("one id per board index required")
        self.shard = shard
        self.board_indices = list(board_indices)
        self.board_ids = list(board_ids)
        self.source = source
        self.tracer = tracer
        self.queues = {
            board_id: BoardQueue(board_id, capacity=capacity, policy=policy)
            for board_id in board_ids
        }

    @property
    def n_boards(self) -> int:
        return len(self.board_ids)

    def produce(self, tick: int, t: float) -> int:
        """Sample and offer one tick's frame for every board.

        Returns the number of frames shed by the policy this call.
        """
        sheds = 0
        stamp = time.perf_counter()
        for index, board_id in zip(self.board_indices, self.board_ids):
            row = self.source.row(index, tick, t)
            queue = self.queues[board_id]
            outcome = queue.offer(
                Frame(
                    board_id=board_id, tick=tick, t=t, row=row,
                    enqueued_pc=stamp,
                )
            )
            if outcome.shed is not None:
                sheds += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        QueueShed(
                            t=outcome.shed.t,
                            board_id=board_id,
                            tick=outcome.shed.tick,
                            policy=queue.policy.value,
                            queue_len=len(queue),
                        )
                    )
        return sheds

    def assemble(
        self, tick: int
    ) -> tuple[np.ndarray, dict[str, Frame]]:
        """Pop tick ``tick``'s frames into the shard's row matrix.

        Boards with no frame for the tick (shed under either policy)
        contribute a NaN row — a sensor dropout, exactly as the fleet
        scorer models a failed sensor.
        """
        rows = np.full((self.n_boards, self.source.n_columns), np.nan)
        frames: dict[str, Frame] = {}
        for i, board_id in enumerate(self.board_ids):
            frame, _stale = self.queues[board_id].pop_tick(tick)
            if frame is not None:
                rows[i] = frame.row
                frames[board_id] = frame
        return rows, frames

    def counters(self) -> dict[str, int]:
        """Summed queue accounting across the shard's boards."""
        totals = {"arrivals": 0, "processed": 0, "shed": 0, "queued": 0}
        for queue in self.queues.values():
            totals["arrivals"] += queue.arrivals
            totals["processed"] += queue.processed
            totals["shed"] += queue.shed
            totals["queued"] += len(queue)
        return totals
