"""Execution backends: where a shard's scoring actually runs.

Three strategies, one contract.  A backend owns ``n_shards`` scoring
workers; the service calls :meth:`ShardBackend.step` with one tick's
rows and gets a :class:`~repro.service.shard.ShardStepResult` back, and
the per-shard call sequence is strictly ordered (the service never
pipelines two ticks of the *same* shard).  Strategies:

- ``sequential`` — scorers live in-process, steps run inline on the
  event loop.  The determinism baseline.
- ``thread`` — same in-process scorers, but the service runs each step
  in a thread-pool executor so shards overlap during numpy sections
  that release the GIL.
- ``process`` — one long-lived worker process per shard (forked once,
  like the PR 7 warm pool), each holding its shard's scorer with the
  shared fitted detector copied at fork.  Tick rows travel through a
  preallocated ``multiprocessing.shared_memory`` buffer per shard (the
  same result-buffer idiom as ``repro.perf.pool``), with a pickled-pipe
  fallback when shared memory is unavailable; results return over the
  pipe as small scalar-only dataclasses.

Every backend implements the same crash-recovery surface: ``crash``
(test hook: the worker dies), ``restart`` (fresh worker, blank scorer)
and ``restore`` (load a :class:`~repro.service.shard.ShardState`
snapshot) — the service composes them into snapshot/replay recovery
that provably loses no quarantine state.
"""

from __future__ import annotations

from multiprocessing import get_context, shared_memory
from typing import Callable

import numpy as np

from repro.errors import ConfigError, ServiceError, ShardCrashed
from repro.service.shard import ShardScorer, ShardState, ShardStepResult

#: Recognized execution strategies.
STRATEGIES = ("sequential", "thread", "process")


def _fork_context():
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return get_context("spawn")


class ShardBackend:
    """Common surface; concrete backends override the worker plumbing."""

    strategy: str = ""

    def __init__(
        self, make_scorer: Callable[[int], ShardScorer], n_shards: int
    ) -> None:
        if n_shards < 1:
            raise ConfigError(f"need at least one shard, got {n_shards}")
        self.make_scorer = make_scorer
        self.n_shards = n_shards

    def start(self) -> None:
        raise NotImplementedError

    def step(
        self, shard: int, tick: int, t: float, rows: np.ndarray
    ) -> ShardStepResult:
        raise NotImplementedError

    def snapshot(self, shard: int) -> ShardState:
        raise NotImplementedError

    def restore(self, shard: int, state: ShardState) -> None:
        raise NotImplementedError

    def crash(self, shard: int) -> None:
        raise NotImplementedError

    def restart(self, shard: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InProcessBackend(ShardBackend):
    """Scorers in this process; ``sequential`` and ``thread`` strategies
    share it (the service decides whether steps run on an executor)."""

    def __init__(
        self,
        make_scorer: Callable[[int], ShardScorer],
        n_shards: int,
        strategy: str = "sequential",
    ) -> None:
        super().__init__(make_scorer, n_shards)
        if strategy not in ("sequential", "thread"):
            raise ConfigError(f"unknown in-process strategy {strategy!r}")
        self.strategy = strategy
        self._scorers: list[ShardScorer | None] = [None] * n_shards

    def start(self) -> None:
        self._scorers = [self.make_scorer(i) for i in range(self.n_shards)]

    def _scorer(self, shard: int) -> ShardScorer:
        scorer = self._scorers[shard]
        if scorer is None:
            raise ShardCrashed(f"shard {shard} worker is down")
        return scorer

    def step(
        self, shard: int, tick: int, t: float, rows: np.ndarray
    ) -> ShardStepResult:
        return self._scorer(shard).step_tick(tick, t, rows)

    def snapshot(self, shard: int) -> ShardState:
        return self._scorer(shard).snapshot()

    def restore(self, shard: int, state: ShardState) -> None:
        self._scorer(shard).restore(state)

    def crash(self, shard: int) -> None:
        self._scorers[shard] = None

    def restart(self, shard: int) -> None:
        self._scorers[shard] = self.make_scorer(shard)

    def close(self) -> None:
        self._scorers = [None] * self.n_shards


# -- process backend -----------------------------------------------------------


def _shard_worker(conn, scorer: ShardScorer, rows_view) -> None:
    """Worker loop: step/snapshot/restore/stop over the pipe.

    ``rows_view`` is the forked-in numpy view over the shard's shared
    row buffer (None in pickled-pipe fallback mode).  Every reply is
    ``("ok", payload)`` or ``("err", message)``; unexpected worker death
    surfaces in the parent as :class:`ShardCrashed` via EOF.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        try:
            cmd = msg[0]
            if cmd == "step":
                _, tick, t, rows = msg
                if isinstance(rows, int):
                    # Rows live in the shared buffer; the int is the
                    # true column count to slice out of the wide view.
                    rows = rows_view[:, :rows].copy()
                conn.send(("ok", scorer.step_tick(tick, t, rows)))
            elif cmd == "snapshot":
                conn.send(("ok", scorer.snapshot()))
            elif cmd == "restore":
                scorer.restore(msg[1])
                conn.send(("ok", None))
            elif cmd == "stop":
                conn.send(("ok", None))
                return
            else:
                conn.send(("err", f"unknown command {cmd!r}"))
        except Exception as exc:  # noqa: BLE001 - forwarded to parent
            conn.send(("err", f"{type(exc).__name__}: {exc}"))


#: Widest row the shared buffers preallocate for (columns).  Featurized
#: rows are n_cores + 3 software features + current; 64 covers any SoC
#: in the spec sheet with room to spare at 512 bytes per board.
_ROW_COLUMNS_MAX = 64


class _ShardWorkerHandle:
    """One worker process plus its pipe and shared row buffer.

    The buffer is created before the fork, so the child inherits the
    mapping directly (no attach, no resource-tracker double-count);
    the parent alone closes and unlinks it.
    """

    def __init__(self, ctx, index: int, scorer: ShardScorer, use_shm: bool):
        self.index = index
        self.shm = None
        self.rows_view = None
        if use_shm:
            try:
                self.shm = shared_memory.SharedMemory(
                    create=True,
                    size=scorer.n_boards * _ROW_COLUMNS_MAX * 8,
                )
                self.rows_view = np.ndarray(
                    (scorer.n_boards, _ROW_COLUMNS_MAX),
                    dtype=np.float64,
                    buffer=self.shm.buf,
                )
            except OSError:  # pragma: no cover - /dev/shm unavailable
                self.shm = None
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(child_conn, scorer, self.rows_view),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def close(self, terminate: bool = False) -> None:
        if terminate and self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)
        self.conn.close()
        if self.shm is not None:
            self.rows_view = None
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.shm = None


class ProcessBackend(ShardBackend):
    """One forked worker process per shard, rows via shared memory."""

    strategy = "process"

    def __init__(
        self,
        make_scorer: Callable[[int], ShardScorer],
        n_shards: int,
        use_shm: bool = True,
    ) -> None:
        super().__init__(make_scorer, n_shards)
        self.use_shm = use_shm
        self._ctx = _fork_context()
        self._handles: list[_ShardWorkerHandle | None] = [None] * n_shards

    def start(self) -> None:
        for i in range(self.n_shards):
            self._handles[i] = _ShardWorkerHandle(
                self._ctx, i, self.make_scorer(i), self.use_shm
            )

    def _handle(self, shard: int) -> _ShardWorkerHandle:
        handle = self._handles[shard]
        if handle is None or not handle.proc.is_alive():
            raise ShardCrashed(f"shard {shard} worker is down")
        return handle

    def _call(self, shard: int, msg: tuple):
        handle = self._handle(shard)
        try:
            handle.conn.send(msg)
            status, payload = handle.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ShardCrashed(
                f"shard {shard} worker died mid-call: {exc}"
            ) from exc
        if status != "ok":
            raise ServiceError(f"shard {shard} worker error: {payload}")
        return payload

    def step(
        self, shard: int, tick: int, t: float, rows: np.ndarray
    ) -> ShardStepResult:
        handle = self._handle(shard)
        if handle.rows_view is not None and (
            rows.shape[1] <= _ROW_COLUMNS_MAX
        ):
            n, d = rows.shape
            handle.rows_view[:n, :d] = rows
            # Worker slices its (n, d) view; send the width only.
            return self._call(shard, ("step", tick, t, d))
        return self._call(shard, ("step", tick, t, rows))

    def snapshot(self, shard: int) -> ShardState:
        return self._call(shard, ("snapshot",))

    def restore(self, shard: int, state: ShardState) -> None:
        self._call(shard, ("restore", state))

    def crash(self, shard: int) -> None:
        handle = self._handles[shard]
        if handle is not None and handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(timeout=5.0)

    def restart(self, shard: int) -> None:
        handle = self._handles[shard]
        if handle is not None:
            handle.close(terminate=True)
        self._handles[shard] = _ShardWorkerHandle(
            self._ctx, shard, self.make_scorer(shard), self.use_shm
        )

    def close(self) -> None:
        for i, handle in enumerate(self._handles):
            if handle is not None:
                try:
                    if handle.proc.is_alive():
                        handle.conn.send(("stop",))
                        handle.conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                handle.close(terminate=True)
            self._handles[i] = None


def make_backend(
    strategy: str,
    make_scorer: Callable[[int], ShardScorer],
    n_shards: int,
) -> ShardBackend:
    """Backend factory keyed by strategy name."""
    if strategy in ("sequential", "thread"):
        return InProcessBackend(make_scorer, n_shards, strategy=strategy)
    if strategy == "process":
        return ProcessBackend(make_scorer, n_shards)
    raise ConfigError(
        f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
    )
