"""Rebuild a service run's history from its JSONL trace alone.

The replayability contract: everything the byte-identity gate compares
— per-board alarm times, commanded power-cycles, shed accounting,
shard restarts — is reconstructible from the clock-free event trace,
with no access to the live objects.  :func:`service_history` walks a
:class:`~repro.obs.query.TraceIndex` (or a trace file) and returns the
same per-board history shape the live
:class:`~repro.service.service.AsyncFleetService` reports, so

``service_history(trace).alarm_times == service.alarm_times()``

is a gate in the soak test, not just documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.query import TraceIndex
from repro.obs.report import read_trace


@dataclass
class ServiceHistory:
    """A service run as reconstructed from its trace.

    Attributes:
        alarm_times: per-board alarm times (FleetDecision events).
        reboot_times: per-board power-cycle times (BoardPowerCycle).
        sheds: per-board shed counts (QueueShed).
        restarts: (shard, snapshot_tick, replayed_ticks) per recovery.
        decisions: FleetDecision count (one per shard per tick).
    """

    alarm_times: dict[str, list[float]] = field(default_factory=dict)
    reboot_times: dict[str, list[float]] = field(default_factory=dict)
    sheds: dict[str, int] = field(default_factory=dict)
    restarts: list[tuple[int, int, int]] = field(default_factory=list)
    decisions: int = 0


def service_history(
    trace: TraceIndex | str | Path,
) -> ServiceHistory:
    """Reconstruct per-board histories from a service trace.

    Accepts a built :class:`TraceIndex` or a JSONL trace path.  Alarm
    times come from ``fleet-decision`` events (the supervisor emits one
    per shard result; the ``alarms`` field carries comma-joined board
    ids), reboots from ``board-power-cycle``, sheds from ``queue-shed``.

    Events are replayed in ``(t, seq)`` order so histories are stable
    even when concurrent shard pipelines interleaved their emissions —
    per-board sequences are unambiguous because one board's events all
    come from one shard's strictly ordered loop.
    """
    if not isinstance(trace, TraceIndex):
        trace = TraceIndex(read_trace(trace))
    history = ServiceHistory()

    def ordered(kind: str):
        pairs = trace.by_kind.get(kind, [])
        return sorted(pairs, key=lambda pair: (pair[1].t, pair[0]))

    for _, event in ordered("fleet-decision"):
        history.decisions += 1
        if not event.alarms:
            continue
        for board_id in event.alarms.split(","):
            history.alarm_times.setdefault(board_id, []).append(event.t)
    for _, event in ordered("board-power-cycle"):
        history.reboot_times.setdefault(event.board_id, []).append(event.t)
    for _, event in ordered("queue-shed"):
        history.sheds[event.board_id] = (
            history.sheds.get(event.board_id, 0) + 1
        )
    for _, event in ordered("shard-restart"):
        history.restarts.append(
            (event.shard, event.snapshot_tick, event.replayed_ticks)
        )
    return history
