"""Deterministic load generation for the mission-control service.

Everything here is a pure function of seeds: :func:`make_members`
builds a reproducible fleet, :func:`storm_timeline` a bursty mission
profile (a forced solar particle event driving a latch-up burst into an
otherwise quiet window), and :func:`record_fleet_telemetry` replays the
window open-loop — timeline-scheduled latch-ups via the shared
:func:`~repro.core.sel.fleet.schedule_fleet_latchups`, no escalation —
into a ``(n_ticks, n_boards, d)`` telemetry tensor.  Feeding that
tensor through :class:`~repro.service.ingest.ReplaySource` saturates
the service pipeline (frames arrive as fast as the loop takes them),
which is how the benchmark measures rows/s and decision-latency
percentiles without the board simulation on the hot path.

:func:`run_replay_reference` is the synchronous ground truth for replay
runs: one whole-fleet scorer, one supervisor, a plain loop — no
asyncio, no queues, no backends — producing the alarm/reboot histories
and health rollup every strategy/shard-count cell must match
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sel.fleet import FleetMember, schedule_fleet_latchups
from repro.detect.base import AnomalyDetector
from repro.detect.fleet import FleetConfig
from repro.errors import ConfigError
from repro.hw.board import Board
from repro.hw.specs import RASPBERRY_PI_4
from repro.obs.aggregate import Rollup
from repro.radiation.schedule import (
    EnvironmentTimeline,
    MissionPhase,
    SpeModel,
)
from repro.service.ingest import LiveBoardSource
from repro.service.shard import ShardScorer
from repro.service.supervisor import FleetSupervisor
from repro.workloads.stress import cpu_memory_stress_schedule


def make_members(
    n_boards: int, seed: int = 200, spec=RASPBERRY_PI_4
) -> list[FleetMember]:
    """A reproducible fleet: one board per member, seeded ``seed + i``."""
    if n_boards < 1:
        raise ConfigError(f"need >= 1 board, got {n_boards}")
    return [
        FleetMember(
            board_id=f"board-{i:03d}",
            board=Board(spec=spec, seed=seed + i),
            schedule=cpu_memory_stress_schedule(spec.n_cores),
        )
        for i in range(n_boards)
    ]


def storm_timeline(
    seed: int = 3,
    onset_s: float = 30.0,
    peak_storm_scale: float = 50.0,
    decay_tau_s: float = 1800.0,
) -> EnvironmentTimeline:
    """A bursty mission profile: quiet, then one forced SPE at
    ``onset_s`` spiking the fleet latch-up rate ``peak_storm_scale``-fold
    — the load generator's saturation burst."""
    return EnvironmentTimeline(
        spe=SpeModel(
            onset_rate_per_day=0.0,
            forced_onsets=(onset_s,),
            peak_storm_scale=peak_storm_scale,
            decay_tau_s=decay_tau_s,
        ),
        seed=seed,
    )


def record_fleet_telemetry(
    members: list[FleetMember],
    duration_s: float,
    rate_hz: float = 10.0,
    t_start: float = 0.0,
    timeline: EnvironmentTimeline | None = None,
    sel_rate_per_board_day: float = 0.05,
    timeline_seed: int = 0,
) -> np.ndarray:
    """Record the fleet's telemetry open-loop (no escalation feedback).

    With a timeline, the window's latch-ups are scheduled through the
    same pure function the live services use, so a recording at a given
    (seed, window) is byte-stable.  Mutates the members' boards — pass
    a dedicated fleet, not one you will also run live.
    """
    if rate_hz <= 0 or duration_s <= 0:
        raise ConfigError("duration and rate must be positive")
    if timeline is not None:
        schedule_fleet_latchups(
            members, timeline, sel_rate_per_board_day, timeline_seed,
            t_start, t_start + duration_s,
        )
    source = LiveBoardSource(members)
    n_ticks = int(duration_s * rate_hz)
    rows = np.empty((n_ticks, len(members), source.n_columns))
    for tick in range(n_ticks):
        t = t_start + tick / rate_hz
        for i in range(len(members)):
            rows[tick, i] = source.row(i, tick, t)
    return rows


@dataclass
class ReferenceRun:
    """The synchronous ground truth for one replay window.

    Attributes:
        alarm_times: per-board alarm times.
        reboot_times: per-board commanded power-cycle times.
        health: the whole-fleet scorer's health rollup.
    """

    alarm_times: dict[str, list[float]] = field(default_factory=dict)
    reboot_times: dict[str, list[float]] = field(default_factory=dict)
    health: Rollup = field(default_factory=Rollup)


def run_replay_reference(
    detector: AnomalyDetector,
    members: list[FleetMember],
    rows: np.ndarray,
    config: FleetConfig = FleetConfig(),
    rate_hz: float = 10.0,
    t_start: float = 0.0,
    timeline: EnvironmentTimeline | None = None,
    threshold_scales: dict[MissionPhase, float] | None = None,
) -> ReferenceRun:
    """Score a recorded tensor synchronously with one whole-fleet scorer.

    The members' controllers take the escalation (open-loop: reboots do
    not change the recording) so the histories are directly comparable
    with an :class:`~repro.service.service.AsyncFleetService` replay
    run over the same tensor — pass freshly built members.
    """
    if rows.ndim != 3 or rows.shape[1] != len(members):
        raise ConfigError(
            f"tensor shape {rows.shape} does not match {len(members)} boards"
        )
    scorer = ShardScorer(
        0,
        detector,
        [m.board_id for m in members],
        config,
        timeline=timeline,
        threshold_scales=threshold_scales,
    )
    supervisor = FleetSupervisor(members)
    for tick in range(rows.shape[0]):
        supervisor.apply(
            scorer.step_tick(tick, t_start + tick / rate_hz, rows[tick])
        )
    return ReferenceRun(
        alarm_times=supervisor.alarm_times(),
        reboot_times=supervisor.reboot_times(),
        health=scorer.scorer.health,
    )
