"""The constellation-scale async mission-control service.

:class:`AsyncFleetService` is the asyncio front-end tying the package
together: per shard it runs a producer/consumer pipeline — the producer
samples telemetry into bounded per-board queues
(:class:`~repro.service.ingest.ShardIngest`), the consumer assembles one
tick's rows, steps the shard's scorer on the configured backend, and
hands the decision to the cross-shard
:class:`~repro.service.supervisor.FleetSupervisor` for escalation.

**Byte-identity.**  With ``max_inflight_ticks=1`` (the default) each
shard's loop is strictly ``sample(k) -> score(k) -> escalate(k) ->
sample(k+1)`` — the exact dataflow of the synchronous
:class:`~repro.core.sel.fleet.SelFleetService.tick` — and since every
per-board quantity (board RNG, detector stream state, alarm/quarantine
streaks, controller cooldown) evolves independently of other boards,
the sharded run's per-board histories are byte-identical to the
synchronous single-scorer run at any shard count and on any backend.
Raising ``max_inflight_ticks`` pipelines sampling ahead of scoring
*within* a shard (saturation/load-test mode); identity is then only
guaranteed for replay sources, where there is no escalation feedback
into sampling.

**Crash recovery.**  The supervisor holds the latest state snapshot per
shard plus a replay buffer of the rows since it.  When a backend step
raises :class:`~repro.errors.ShardCrashed`, the service restarts the
worker, restores the snapshot, re-steps the buffered ticks (discarding
their outputs — they were already applied), emits a traced
:class:`~repro.obs.events.ShardRestart`, and re-dispatches the current
tick.  No quarantine or escalation state lives in the worker, so the
recovery is lossless by construction.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.sel.fleet import (
    FleetMember,
    schedule_fleet_latchups,
)
from repro.detect.base import AnomalyDetector
from repro.detect.fleet import FleetConfig
from repro.errors import ConfigError, ServiceError, ShardCrashed
from repro.obs.aggregate import Rollup
from repro.obs.events import ShardRestart, Tracer
from repro.radiation.schedule import EnvironmentTimeline, MissionPhase
from repro.service.backend import STRATEGIES, make_backend
from repro.service.ingest import LiveBoardSource, ShardIngest
from repro.service.metrics import DecisionLatencyTracker, rows_per_second
from repro.service.queues import ShedPolicy
from repro.service.shard import ShardScorer, shard_boards
from repro.service.supervisor import FleetSupervisor


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the async service (scoring knobs live in FleetConfig).

    Attributes:
        n_shards: worker shards requested (clamped to fleet size).
        strategy: execution backend — sequential | thread | process.
        queue_capacity: bounded per-board queue depth.
        shed_policy: what a full queue does with the next arrival.
        max_inflight_ticks: per-shard ticks sampled ahead of the
            decision loop.  1 (default) = lockstep, the byte-identity
            mode for live boards; >1 pipelines ingestion (replay /
            saturation mode), and beyond ``queue_capacity`` the
            producer overruns the bounded queues — this is how
            backpressure sheds are actually exercised, with the shed
            frames scoring as sensor dropouts.
        snapshot_every: checkpoint cadence in ticks (the crash-recovery
            anchor; also bounds the replay buffer length).
        latency_window_s: simulated-time window for latency summaries
            (None = one global window).
    """

    n_shards: int = 1
    strategy: str = "sequential"
    queue_capacity: int = 64
    shed_policy: ShedPolicy = ShedPolicy.DROP_OLDEST
    max_inflight_ticks: int = 1
    snapshot_every: int = 50
    latency_window_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(f"need >= 1 shard, got {self.n_shards}")
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.queue_capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        if self.max_inflight_ticks < 1:
            raise ConfigError("max_inflight_ticks must be >= 1")
        if self.snapshot_every < 1:
            raise ConfigError("snapshot_every must be >= 1")


@dataclass(frozen=True)
class ServiceRunReport:
    """What one service run measured.

    Attributes:
        n_ticks: ticks driven per shard.
        n_boards: fleet size.
        n_shards: effective shard count (after clamping).
        strategy: backend strategy used.
        rows_processed: frames that reached a scorer.
        rows_shed: frames lost to backpressure policies.
        restarts: shard crash-recoveries performed.
        elapsed_s: wall-clock time inside the event loop.
        rows_per_s: throughput over ``elapsed_s``.
        latency: NaN-free decision-latency summary (see
            :func:`repro.service.metrics.latency_summary`).
    """

    n_ticks: int
    n_boards: int
    n_shards: int
    strategy: str
    rows_processed: int
    rows_shed: int
    restarts: int
    elapsed_s: float
    rows_per_s: float
    latency: dict = field(default_factory=dict)
    latency_windows: dict = field(default_factory=dict)
    shard_counters: list = field(default_factory=list)


class AsyncFleetService:
    """Sharded async counterpart of
    :class:`~repro.core.sel.fleet.SelFleetService`.

    One-shot: construct, :meth:`run`, then read histories/health.
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        members: list[FleetMember],
        config: FleetConfig = FleetConfig(),
        service: ServiceConfig = ServiceConfig(),
        tracer: Tracer | None = None,
        timeline: EnvironmentTimeline | None = None,
        sel_rate_per_board_day: float = 0.05,
        timeline_seed: int = 0,
        threshold_scales: dict[MissionPhase, float] | None = None,
        source=None,
        crash_at: dict[int, int] | None = None,
    ) -> None:
        if not members:
            raise ConfigError("fleet service needs at least one member")
        self.detector = detector
        self.members = members
        self.config = config
        self.service = service
        self.tracer = tracer
        self.timeline = timeline
        self.sel_rate_per_board_day = sel_rate_per_board_day
        self.timeline_seed = timeline_seed
        self.threshold_scales = threshold_scales
        self.source = source if source is not None else LiveBoardSource(
            members
        )
        self.live_source = isinstance(self.source, LiveBoardSource)
        #: test hook: shard -> tick at which the worker is killed just
        #: before that tick's dispatch (consumed once).
        self.crash_at = dict(crash_at or {})

        board_ids = [m.board_id for m in members]
        self.shard_ids = shard_boards(board_ids, service.n_shards)
        self.n_shards = len(self.shard_ids)
        index_of = {board_id: i for i, board_id in enumerate(board_ids)}
        self.shard_indices = [
            [index_of[board_id] for board_id in ids]
            for ids in self.shard_ids
        ]
        self.supervisor = FleetSupervisor(members, tracer=tracer)
        self.backend = make_backend(
            service.strategy, self._make_scorer, self.n_shards
        )
        self.latency = DecisionLatencyTracker(
            window_s=service.latency_window_s
        )
        self.restarts = 0
        self._rows_processed = 0
        self._ingests: list[ShardIngest] = []
        self._buffers: list[list[tuple[int, float, np.ndarray]]] = []
        self._final_states: list = []
        self._ran = False

    def _make_scorer(self, shard: int) -> ShardScorer:
        return ShardScorer(
            shard,
            self.detector,
            self.shard_ids[shard],
            self.config,
            timeline=self.timeline,
            threshold_scales=self.threshold_scales,
        )

    # -- run -------------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        rate_hz: float = 10.0,
        t_start: float = 0.0,
        inject_latchups: bool = True,
    ) -> ServiceRunReport:
        """Drive the fleet for ``duration_s`` simulated seconds.

        Mirrors :meth:`SelFleetService.run`: with a timeline attached
        and a live source, the window's timeline-driven latch-ups are
        scheduled first via the shared
        :func:`~repro.core.sel.fleet.schedule_fleet_latchups`.
        """
        if rate_hz <= 0 or duration_s <= 0:
            raise ConfigError("duration and rate must be positive")
        if self._ran:
            raise ServiceError("service runs are one-shot; build a new one")
        self._ran = True
        n_ticks = int(duration_s * rate_hz)
        if (
            self.timeline is not None
            and inject_latchups
            and self.live_source
        ):
            schedule_fleet_latchups(
                self.members, self.timeline, self.sel_rate_per_board_day,
                self.timeline_seed, t_start, t_start + duration_s,
            )
        self.backend.start()
        try:
            # Initial anchors: recovery is possible from tick 0 on.
            for shard in range(self.n_shards):
                self.supervisor.checkpoint(
                    shard, -1, self.backend.snapshot(shard)
                )
            started = time.perf_counter()
            asyncio.run(self._run(n_ticks, rate_hz, t_start))
            elapsed = time.perf_counter() - started
            self._final_states = [
                self.backend.snapshot(shard)
                for shard in range(self.n_shards)
            ]
        finally:
            self.backend.close()
        rows = self._rows_processed
        shed = sum(
            ingest.counters()["shed"] for ingest in self._ingests
        )
        return ServiceRunReport(
            n_ticks=n_ticks,
            n_boards=len(self.members),
            n_shards=self.n_shards,
            strategy=self.service.strategy,
            rows_processed=rows,
            rows_shed=shed,
            restarts=self.restarts,
            elapsed_s=elapsed,
            rows_per_s=rows_per_second(rows, elapsed),
            latency=self.latency.summary(),
            latency_windows=self.latency.window_summaries(),
            shard_counters=[
                ingest.counters() for ingest in self._ingests
            ],
        )

    async def _run(
        self, n_ticks: int, rate_hz: float, t_start: float
    ) -> None:
        executor = None
        if self.service.strategy in ("thread", "process"):
            executor = ThreadPoolExecutor(
                max_workers=self.n_shards,
                thread_name_prefix="shard-step",
            )
        self._executor = executor
        self._ingests = [
            ShardIngest(
                shard,
                self.shard_indices[shard],
                self.shard_ids[shard],
                self.source,
                capacity=self.service.queue_capacity,
                policy=self.service.shed_policy,
                tracer=self.tracer,
            )
            for shard in range(self.n_shards)
        ]
        self._buffers = [[] for _ in range(self.n_shards)]
        try:
            await asyncio.gather(
                *(
                    self._shard_pipeline(shard, n_ticks, rate_hz, t_start)
                    for shard in range(self.n_shards)
                )
            )
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

    async def _shard_pipeline(
        self, shard: int, n_ticks: int, rate_hz: float, t_start: float
    ) -> None:
        """One shard's producer/consumer pair, inflight-gated.

        The semaphore (initial value ``max_inflight_ticks``) is the
        lockstep contract: the producer may only sample tick ``k + w``
        after the consumer has *applied* tick ``k`` for window ``w``.
        """
        ingest = self._ingests[shard]
        gate = asyncio.Semaphore(self.service.max_inflight_ticks)
        ready: asyncio.Queue = asyncio.Queue()

        async def producer() -> None:
            for tick in range(n_ticks):
                await gate.acquire()
                t = t_start + tick / rate_hz
                ingest.produce(tick, t)
                await ready.put((tick, t))

        async def consumer() -> None:
            for _ in range(n_ticks):
                tick, t = await ready.get()
                rows, frames = ingest.assemble(tick)
                self._buffers[shard].append((tick, t, rows))
                result = await self._step_with_recovery(
                    shard, tick, t, rows
                )
                self.supervisor.apply(result)
                done = time.perf_counter()
                for frame in frames.values():
                    self.latency.record(t, done - frame.enqueued_pc)
                self._rows_processed += len(frames)
                if (tick + 1) % self.service.snapshot_every == 0:
                    state = await self._offload(
                        self.backend.snapshot, shard
                    )
                    self.supervisor.checkpoint(shard, tick, state)
                    self._buffers[shard] = [
                        entry
                        for entry in self._buffers[shard]
                        if entry[0] > tick
                    ]
                gate.release()

        await asyncio.gather(producer(), consumer())

    async def _offload(self, fn, *args):
        """Run a backend call off-loop when an executor is configured."""
        if self._executor is None:
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _step_with_recovery(
        self, shard: int, tick: int, t: float, rows: np.ndarray
    ):
        if self.crash_at.get(shard) == tick:
            del self.crash_at[shard]
            self.backend.crash(shard)
        try:
            return await self._offload(
                self.backend.step, shard, tick, t, rows
            )
        except ShardCrashed:
            return await self._recover_and_step(shard, tick, t, rows)

    async def _recover_and_step(
        self, shard: int, tick: int, t: float, rows: np.ndarray
    ):
        """Restart -> restore snapshot -> re-step buffer -> step tick."""
        anchor = self.supervisor.recovery_anchor(shard)
        self.backend.restart(shard)
        await self._offload(self.backend.restore, shard, anchor.state)
        replayed = 0
        for rtick, rt, rrows in self._buffers[shard]:
            if anchor.tick < rtick < tick:
                # Outputs discarded: these decisions were applied
                # before the crash; re-stepping only rebuilds state.
                await self._offload(
                    self.backend.step, shard, rtick, rt, rrows
                )
                replayed += 1
        self.restarts += 1
        if self.tracer is not None:
            self.tracer.emit(
                ShardRestart(
                    t=t,
                    shard=shard,
                    snapshot_tick=anchor.tick,
                    replayed_ticks=replayed,
                )
            )
        return await self._offload(self.backend.step, shard, tick, t, rows)

    # -- post-run surfaces -----------------------------------------------------

    def alarm_times(self) -> dict[str, list[float]]:
        """Per-board alarm times (byte-identity surface vs the
        synchronous service's :meth:`alarm_times`)."""
        return self.supervisor.alarm_times()

    def reboot_times(self) -> dict[str, list[float]]:
        return self.supervisor.reboot_times()

    def health_rollup(self) -> Rollup:
        """Shard-merged health rollup (equals the synchronous scorer's
        whole-fleet rollup by the mergeability contract)."""
        if not self._final_states:
            raise ServiceError("run the service before reading health")
        merged = Rollup()
        for state in self._final_states:
            merged.merge(state.health)
        return merged

    def health_snapshot(self) -> dict:
        rollup = self.health_rollup()
        return rollup.snapshot()
