"""Constellation-scale async mission-control service.

Sharded, backpressured fleet ingestion with byte-identical decisions:
an asyncio front-end (:class:`AsyncFleetService`) over bounded
per-board queues, a deterministic shard router, pluggable execution
backends (sequential / thread / forked process workers), a supervisor
owning escalation and crash recovery across shard boundaries, and a
seeded load generator for saturation benchmarks — all gated to produce
per-board alarm/escalation histories byte-identical to the synchronous
:class:`~repro.core.sel.fleet.SelFleetService`.
"""

from repro.detect.fleet import FleetConfig, FleetScorer
from repro.service.backend import (
    InProcessBackend,
    ProcessBackend,
    ShardBackend,
    STRATEGIES,
    make_backend,
)
from repro.service.ingest import LiveBoardSource, ReplaySource, ShardIngest
from repro.service.loadgen import (
    ReferenceRun,
    make_members,
    record_fleet_telemetry,
    run_replay_reference,
    storm_timeline,
)
from repro.service.metrics import (
    DecisionLatencyTracker,
    EMPTY_SENTINEL,
    latency_summary,
    nearest_rank,
    rows_per_second,
)
from repro.service.queues import BoardQueue, Frame, OfferResult, ShedPolicy
from repro.service.replay import ServiceHistory, service_history
from repro.service.service import (
    AsyncFleetService,
    ServiceConfig,
    ServiceRunReport,
)
from repro.service.shard import (
    ShardScorer,
    ShardState,
    ShardStepResult,
    shard_boards,
)
from repro.service.supervisor import FleetSupervisor, ShardCheckpoint

__all__ = [
    "AsyncFleetService",
    "BoardQueue",
    "DecisionLatencyTracker",
    "EMPTY_SENTINEL",
    "FleetSupervisor",
    "Frame",
    "InProcessBackend",
    "LiveBoardSource",
    "OfferResult",
    "ProcessBackend",
    "ReferenceRun",
    "ReplaySource",
    "STRATEGIES",
    "ServiceConfig",
    "ServiceHistory",
    "ServiceRunReport",
    "ShardBackend",
    "ShardCheckpoint",
    "ShardIngest",
    "ShardScorer",
    "ShardState",
    "ShardStepResult",
    "ShedPolicy",
    "FleetConfig",
    "FleetScorer",
    "latency_summary",
    "make_backend",
    "make_members",
    "nearest_rank",
    "record_fleet_telemetry",
    "rows_per_second",
    "run_replay_reference",
    "service_history",
    "shard_boards",
    "storm_timeline",
]
