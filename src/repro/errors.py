"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Base class for errors in the IR substrate."""


class IRTypeError(IRError):
    """An IR value or instruction was used with an incompatible type."""


class IRVerificationError(IRError):
    """The IR module violates a structural invariant (SSA, CFG, types)."""


class IRParseError(IRError):
    """Textual IR could not be parsed."""


class InterpreterError(ReproError):
    """The IR interpreter encountered an unrecoverable condition."""


class TrapError(InterpreterError):
    """The interpreted program executed a trap (e.g. division by zero)."""


class DetectionTrap(TrapError):
    """A protection pass's check fired: an injected error was detected."""


class FuelExhausted(InterpreterError):
    """Execution exceeded its instruction budget (likely a hang)."""


class WatchdogTimeout(FuelExhausted):
    """A supervisor watchdog expired before the task made progress.

    Subclasses :class:`FuelExhausted` so the interpreter classifies a
    watchdog bite as a hang; the machine emulator catches it separately.
    """


class MachineError(ReproError):
    """Base class for errors in the machine emulator."""


class InvalidInstruction(MachineError):
    """The emulator decoded an instruction it cannot execute."""


class MemoryFault(MachineError):
    """An access touched an unmapped or misaligned machine address."""


class MachineHalted(MachineError):
    """An operation was attempted on a halted machine."""


class AssemblerError(MachineError):
    """Assembly source could not be assembled."""


class EccError(ReproError):
    """Base class for ECC codec errors."""


class UncorrectableError(EccError):
    """The codeword contains more errors than the code can correct."""


class MemError(ReproError):
    """Base class for errors in the paged-memory substrate."""


class PageFault(MemError):
    """An access referenced an unmapped page."""


class HardwareError(ReproError):
    """Base class for errors in the hardware models."""


class DeviceDestroyed(HardwareError):
    """The simulated device suffered permanent (thermal/latch-up) damage."""


class DetectorError(ReproError):
    """An anomaly detector was misused (e.g. scored before fitting)."""


class ConfigError(ReproError):
    """A component received an invalid configuration value."""


class FaultInjectionError(ReproError):
    """A fault could not be injected as specified."""


class RecoveryError(ReproError):
    """The recovery subsystem was misused or could not proceed."""


class CheckpointError(RecoveryError):
    """A checkpoint could not be taken, verified, or restored."""


class ServiceError(ReproError):
    """The mission-control service was misused or failed internally."""


class ShardCrashed(ServiceError):
    """A shard worker died mid-run (recoverable via snapshot restore)."""
