"""CUSUM change-point detector over the current channel.

The classic sequential test for a sustained mean shift: accumulate
deviations beyond a slack ``k``; alarm when the accumulation passes ``h``.
Detects small persistent steps (the few-mA latch-up case) at the cost of
latency proportional to h / shift.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class CusumDetector(AnomalyDetector):
    """One-sided (upward) CUSUM on current, standardized by training stats.

    Stateful across ``score`` calls; call :meth:`reset` between traces.
    """

    def __init__(self, k_sigma: float = 0.5, h_sigma: float = 8.0) -> None:
        super().__init__()
        if k_sigma < 0 or h_sigma <= 0:
            raise ConfigError("k must be >= 0 and h > 0")
        self.k_sigma = k_sigma
        self.h_sigma = h_sigma
        self._mean = 0.0
        self._sigma = 1.0
        self._s = 0.0

    def reset(self) -> None:
        """Clear the accumulated statistic (start of a new trace)."""
        self._s = 0.0

    def _fit(self, rows: np.ndarray) -> None:
        current = rows[:, -1]
        self._mean = float(current.mean())
        self._sigma = float(max(current.std(), 1e-9))
        self.reset()

    def _score(self, rows: np.ndarray) -> np.ndarray:
        # Standardization is vectorized; the clipped accumulation is the
        # only sequential part (and must stay a scalar loop to keep the
        # bitwise batch-equals-per-sample contract).
        zs = (rows[:, -1] - self._mean) / self._sigma
        scores = np.empty(len(rows))
        s = self._s
        k = self.k_sigma
        for i, z in enumerate(zs.tolist()):
            s = max(0.0, s + z - k)
            scores[i] = s
        self._s = s
        return scores

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Sequential recursion with vectorized per-row preparation."""
        return self.score(rows)

    def make_stream_state(self, n_streams: int) -> np.ndarray:
        """One CUSUM accumulator per stream (board)."""
        return np.zeros(n_streams)

    def step_streams(self, rows, state):
        """Advance every stream's CUSUM by one sample, elementwise."""
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        zs = (rows[:, -1] - self._mean) / self._sigma
        state = np.maximum(0.0, state + zs - self.k_sigma)
        return state.copy(), state

    @property
    def threshold(self) -> float:
        return self.h_sigma
