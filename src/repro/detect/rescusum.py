"""Residual-CUSUM: the library's strongest SEL detector.

Combines the paper's two ideas: model expected current from software
features (the metric-aware residual), then run a clipped one-sided CUSUM on
the residual stream.  A latch-up is a *sustained positive* residual step,
so the CUSUM accumulates it linearly and crosses the alarm level even for
few-mA deltas; DVFS spikes are brief, and clipping each sample's
contribution bounds how far a spike can push the statistic before it decays
away.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.detect.regression import LinearResidualDetector
from repro.errors import ConfigError


class ResidualCusumDetector(AnomalyDetector):
    """Clipped one-sided CUSUM over linear-model current residuals.

    Attributes:
        k_sigma: per-sample slack (drift allowance) in residual sigmas.
        h_sigma: alarm level of the accumulated statistic.
        clip_sigma: per-sample contribution cap; must satisfy
            (clip - k) * spike_samples < h so a lone DVFS spike cannot
            alarm.
    """

    def __init__(
        self,
        k_sigma: float = 0.5,
        h_sigma: float = 16.0,
        clip_sigma: float = 4.0,
        ridge: float = 1e-6,
    ) -> None:
        super().__init__()
        if not 0 <= k_sigma < clip_sigma:
            raise ConfigError("need 0 <= k < clip")
        if h_sigma <= 0:
            raise ConfigError("alarm level h must be positive")
        self.k_sigma = k_sigma
        self.h_sigma = h_sigma
        self.clip_sigma = clip_sigma
        self._model = LinearResidualDetector(ridge=ridge)
        self._s = 0.0

    def reset(self) -> None:
        """Clear the accumulated statistic (start of a new trace)."""
        self._s = 0.0

    def _fit(self, rows: np.ndarray) -> None:
        self._model.fit(rows)
        self.reset()

    def _score(self, rows: np.ndarray) -> np.ndarray:
        expected = self._model.expected_current(rows)
        sigma = self._model.residual_sigma_a
        scores = np.empty(len(rows))
        for i, row in enumerate(rows):
            z = (row[-1] - expected[i]) / sigma
            z = min(z, self.clip_sigma)
            self._s = max(0.0, self._s + z - self.k_sigma)
            scores[i] = self._s
        return scores

    @property
    def threshold(self) -> float:
        return self.h_sigma

    @property
    def residual_sigma_a(self) -> float:
        return self._model.residual_sigma_a
