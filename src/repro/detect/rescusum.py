"""Residual-CUSUM: the library's strongest SEL detector.

Combines the paper's two ideas: model expected current from software
features (the metric-aware residual), then run a clipped one-sided CUSUM on
the residual stream.  A latch-up is a *sustained positive* residual step,
so the CUSUM accumulates it linearly and crosses the alarm level even for
few-mA deltas; DVFS spikes are brief, and clipping each sample's
contribution bounds how far a spike can push the statistic before it decays
away.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.detect.regression import LinearResidualDetector
from repro.errors import ConfigError


class ResidualCusumDetector(AnomalyDetector):
    """Clipped one-sided CUSUM over linear-model current residuals.

    Attributes:
        k_sigma: per-sample slack (drift allowance) in residual sigmas.
        h_sigma: alarm level of the accumulated statistic.
        clip_sigma: per-sample contribution cap; must satisfy
            (clip - k) * spike_samples < h so a lone DVFS spike cannot
            alarm.
    """

    def __init__(
        self,
        k_sigma: float = 0.5,
        h_sigma: float = 16.0,
        clip_sigma: float = 4.0,
        ridge: float = 1e-6,
    ) -> None:
        super().__init__()
        if not 0 <= k_sigma < clip_sigma:
            raise ConfigError("need 0 <= k < clip")
        if h_sigma <= 0:
            raise ConfigError("alarm level h must be positive")
        self.k_sigma = k_sigma
        self.h_sigma = h_sigma
        self.clip_sigma = clip_sigma
        self._model = LinearResidualDetector(ridge=ridge)
        self._s = 0.0

    def reset(self) -> None:
        """Clear the accumulated statistic (start of a new trace)."""
        self._s = 0.0

    def _fit(self, rows: np.ndarray) -> None:
        self._model.fit(rows)
        self.reset()

    def _score(self, rows: np.ndarray) -> np.ndarray:
        # Model prediction and standardization are vectorized; only the
        # clipped accumulation runs sequentially (scalar loop, to keep
        # the bitwise batch-equals-per-sample contract).
        expected = self._model.expected_current(rows)
        sigma = self._model.residual_sigma_a
        zs = (rows[:, -1] - expected) / sigma
        scores = np.empty(len(rows))
        s = self._s
        k, clip = self.k_sigma, self.clip_sigma
        for i, z in enumerate(zs.tolist()):
            z = min(z, clip)
            s = max(0.0, s + z - k)
            scores[i] = s
        self._s = s
        return scores

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Sequential recursion with vectorized residual preparation."""
        return self.score(rows)

    def partial_fit(self, rows: np.ndarray, forgetting: float = 1.0) -> None:
        """Warm-started update of the underlying linear current model."""
        self._model.partial_fit(rows, forgetting=forgetting)

    def make_stream_state(self, n_streams: int) -> np.ndarray:
        """One CUSUM accumulator per stream (board)."""
        return np.zeros(n_streams)

    def step_streams(self, rows, state):
        """Advance every stream's residual CUSUM by one sample."""
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        expected = self._model.expected_current(rows)
        zs = (rows[:, -1] - expected) / self._model.residual_sigma_a
        zs = np.minimum(zs, self.clip_sigma)
        state = np.maximum(0.0, state + zs - self.k_sigma)
        return state.copy(), state

    @property
    def threshold(self) -> float:
        return self.h_sigma

    @property
    def residual_sigma_a(self) -> float:
        return self._model.residual_sigma_a
