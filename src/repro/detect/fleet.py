"""Fleet-scale scoring: ensemble voting and multi-board multiplexing.

One ground-side service scores telemetry from a *fleet* of boards, not
one daemon per board.  Two pieces:

- :class:`EnsembleDetector` combines several detectors behind the
  standard :class:`~repro.detect.base.AnomalyDetector` interface.  Member
  scores live on wildly different scales (amperes above a ceiling,
  sigmas, chi-square distances), so each member is normalized against its
  own clean-score distribution such that its calibrated threshold maps to
  1.0; votes are then combined **weighted** (weighted mean of normalized
  scores, alarm above 1.0) or by **majority** (weighted fraction of
  members past their own threshold, alarm above 0.5).
- :class:`FleetScorer` multiplexes N boards through one shared fitted
  detector using the batched ``step_streams`` fast path, with per-board
  alarm persistence and per-board **quarantine** on sensor dropout
  (non-finite telemetry rows) so one failed sensor degrades one board's
  coverage instead of raising a fleet-wide alarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detect.base import AnomalyDetector, FittedState
from repro.detect.evaluate import roc_auc
from repro.errors import ConfigError, DetectorError
from repro.obs.aggregate import SCORE_BOUNDS, Rollup

#: Recognized ensemble voting modes.
VOTE_MODES = ("weighted", "majority")


def _reset_if_stateful(detector: AnomalyDetector) -> None:
    reset = getattr(detector, "reset", None)
    if callable(reset):
        reset()


class EnsembleDetector(AnomalyDetector):
    """Votes several detectors into one anomaly score.

    Attributes:
        members: the member detectors (share training rows).
        vote: "weighted" or "majority".
        weights: per-member weights (normalized to sum to 1).
    """

    def __init__(
        self,
        members: list[AnomalyDetector],
        vote: str = "weighted",
        weights: list[float] | None = None,
    ) -> None:
        super().__init__()
        if not members:
            raise ConfigError("ensemble needs at least one member")
        if vote not in VOTE_MODES:
            raise ConfigError(f"unknown vote mode {vote!r}")
        if weights is None:
            weights = [1.0] * len(members)
        if len(weights) != len(members):
            raise ConfigError("one weight per member required")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigError("weights must be non-negative with positive sum")
        total = float(sum(weights))
        self.members = list(members)
        self.vote = vote
        self.weights = [w / total for w in weights]
        self._centers = [0.0] * len(members)
        self._scales = [1.0] * len(members)

    @classmethod
    def from_fitted(
        cls,
        members: list[AnomalyDetector],
        clean_rows: np.ndarray,
        vote: str = "weighted",
        weights: list[float] | None = None,
    ) -> "EnsembleDetector":
        """Wrap already-fitted members; calibrates normalization only."""
        ensemble = cls(members, vote=vote, weights=weights)
        for member in members:
            if member.state is not FittedState.FITTED:
                raise DetectorError("from_fitted requires fitted members")
        ensemble._calibrate(
            np.atleast_2d(np.asarray(clean_rows, dtype=float))
        )
        ensemble.state = FittedState.FITTED
        return ensemble

    def _calibrate(self, rows: np.ndarray) -> None:
        """Per-member normalization: clean median -> 0, threshold -> 1."""
        for i, member in enumerate(self.members):
            scores = member.score_batch(rows)
            _reset_if_stateful(member)
            center = float(np.median(scores))
            span = member.threshold - center
            if span <= 0:
                # Threshold at/below the clean median (degenerate member):
                # fall back to a robust scale so scores stay finite.
                mad = float(np.median(np.abs(scores - center)))
                span = max(mad * 1.4826, 1e-9)
            self._centers[i] = center
            self._scales[i] = span

    def _fit(self, rows: np.ndarray) -> None:
        for member in self.members:
            member.fit(rows)
        self._calibrate(rows)

    def _normalized(self, index: int, raw: np.ndarray) -> np.ndarray:
        return (raw - self._centers[index]) / self._scales[index]

    def _combine(self, member_scores: list[np.ndarray]) -> np.ndarray:
        combined = np.zeros_like(member_scores[0], dtype=float)
        for i, raw in enumerate(member_scores):
            normalized = self._normalized(i, raw)
            if self.vote == "majority":
                combined += self.weights[i] * (normalized > 1.0)
            else:
                combined += self.weights[i] * normalized
        return combined

    def _score(self, rows: np.ndarray) -> np.ndarray:
        return self._combine([m.score(rows) for m in self.members])

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized: every member's batched fast path, combined once."""
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.size == 0:
            return np.empty(0)
        return self._combine([m.score_batch(rows) for m in self.members])

    @property
    def threshold(self) -> float:
        return 0.5 if self.vote == "majority" else 1.0

    def reset(self) -> None:
        """Reset every stateful member (start of a new trace)."""
        for member in self.members:
            _reset_if_stateful(member)

    def make_stream_state(self, n_streams: int) -> list:
        """Per-member stream states (stateless members contribute None)."""
        return [m.make_stream_state(n_streams) for m in self.members]

    def step_streams(self, rows, state):
        """Advance every member on every stream; combine the votes."""
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        member_scores = []
        new_state = []
        for member, member_state in zip(self.members, state):
            scores, member_state = member.step_streams(rows, member_state)
            member_scores.append(scores)
            new_state.append(member_state)
        return self._combine(member_scores), new_state


def auc_weights(
    members: list[AnomalyDetector],
    clean_rows: np.ndarray,
    anomalous_rows: np.ndarray,
    sharpness: float = 4.0,
) -> list[float]:
    """Validation-calibrated ensemble weights from per-member ROC-AUC.

    Scores each *fitted* member on labeled validation rows and weights it
    by ``max(auc - 0.5, 0) ** sharpness``: members near chance contribute
    nothing, and a clearly dominant member dominates the vote — which is
    what lets the ensemble match its best member when the others only add
    noise.  Falls back to equal weights when every member is at chance.
    """
    clean_rows = np.atleast_2d(np.asarray(clean_rows, dtype=float))
    anomalous_rows = np.atleast_2d(np.asarray(anomalous_rows, dtype=float))
    rows = np.vstack([clean_rows, anomalous_rows])
    labels = np.concatenate(
        [np.zeros(len(clean_rows), int), np.ones(len(anomalous_rows), int)]
    )
    weights = []
    for member in members:
        _reset_if_stateful(member)
        scores = member.score_batch(rows)
        _reset_if_stateful(member)
        weights.append(max(roc_auc(scores, labels) - 0.5, 0.0) ** sharpness)
    if sum(weights) <= 0:
        return [1.0] * len(members)
    return weights


# -- fleet multiplexing --------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """Fleet scoring policy.

    Attributes:
        consecutive_hits: anomalous samples required before a board alarms
            (same spike filter as the single-board daemon).
        warmup_s: time before any board may be scored.
        quarantine_after: consecutive non-finite rows before a board is
            quarantined (scored no more, alarms suppressed).
        release_after: consecutive finite rows before a quarantined board
            rejoins scoring.
    """

    consecutive_hits: int = 8
    warmup_s: float = 5.0
    quarantine_after: int = 3
    release_after: int = 50

    def __post_init__(self) -> None:
        if self.consecutive_hits < 1:
            raise ConfigError("consecutive_hits must be >= 1")
        if self.quarantine_after < 1 or self.release_after < 1:
            raise ConfigError("quarantine streaks must be >= 1")


@dataclass
class BoardScoringState:
    """Per-board alarm/quarantine bookkeeping inside the fleet scorer."""

    board_id: str
    hits: int = 0
    quarantined: bool = False
    bad_streak: int = 0
    good_streak: int = 0
    alarms: list[float] = field(default_factory=list)
    samples_scored: int = 0
    samples_dropped: int = 0


@dataclass
class FleetStep:
    """Result of scoring one fleet tick.

    Attributes:
        t: tick time.
        scores: per-board scores (NaN for unscored boards).
        anomalous: per-board anomaly flags.
        alarms: indices of boards whose alarm fired this tick.
        quarantined: indices newly quarantined this tick.
        released: indices released from quarantine this tick.
        warming_up: whether the fleet is still inside warmup.
    """

    t: float
    scores: np.ndarray
    anomalous: np.ndarray
    alarms: list[int]
    quarantined: list[int]
    released: list[int]
    warming_up: bool = False

    @property
    def n_scored(self) -> int:
        return int(np.isfinite(self.scores).sum())


def _state_select(state, idx: np.ndarray):
    if state is None:
        return None
    if isinstance(state, np.ndarray):
        return state[idx]
    return [_state_select(s, idx) for s in state]


def _state_assign(state, idx: np.ndarray, sub) -> None:
    if state is None:
        return
    if isinstance(state, np.ndarray):
        state[idx] = sub
        return
    for child, new_child in zip(state, sub):
        _state_assign(child, idx, new_child)


class FleetScorer:
    """Scores N telemetry streams through one shared fitted detector.

    Each board keeps its own alarm persistence counter, quarantine state
    and (for sequential detectors) scoring state, but the trained model —
    coefficients, covariance, thresholds — is shared, so a fleet costs
    one fitted detector plus O(n_boards) scalars.  Every board evolves
    exactly as it would under a dedicated single-board daemon; the fleet
    pipeline test pins that equivalence down.

    Attributes:
        detector: shared fitted detector.
        boards: per-board bookkeeping, index-aligned with score rows.
        health: mergeable rollup (:class:`repro.obs.aggregate.Rollup`) of
            per-board and fleet-wide scoring activity.  Every entry is
            additive over boards — counters per board, fixed-bucket score
            histogram — so scorers sharding one fleet's boards merge
            their health rollups into *exactly* the rollup one scorer
            over the whole fleet would hold (the sharded mission-control
            property).
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        board_ids: list[str],
        config: FleetConfig = FleetConfig(),
    ) -> None:
        if detector.state is not FittedState.FITTED:
            raise DetectorError("fleet scorer needs a fitted detector")
        if not board_ids:
            raise ConfigError("fleet needs at least one board")
        if len(set(board_ids)) != len(board_ids):
            raise ConfigError("board ids must be unique")
        self.detector = detector
        self.config = config
        self.boards = [BoardScoringState(board_id=b) for b in board_ids]
        self.health = Rollup()
        self._stream_state = detector.make_stream_state(len(board_ids))
        self._start_t: float | None = None
        self._threshold_scale = 1.0

    @property
    def threshold_scale(self) -> float:
        """Scale on the shared detector threshold (< 1 tightens)."""
        return self._threshold_scale

    def set_threshold_scale(self, scale: float) -> None:
        """Tighten (< 1) or relax (> 1) alarming fleet-wide.

        The phase-adaptive degradation controller drives this on phase
        boundaries: an elevated-flux phase lowers the bar so small
        latch-ups alarm sooner, at the cost of more false positives —
        an acceptable trade while the SEL arrival rate is itself up.
        """
        if not np.isfinite(scale) or scale <= 0:
            raise ConfigError(f"threshold scale must be positive, got {scale}")
        self._threshold_scale = float(scale)

    @property
    def n_boards(self) -> int:
        return len(self.boards)

    def board(self, board_id: str) -> BoardScoringState:
        for state in self.boards:
            if state.board_id == board_id:
                return state
        raise ConfigError(f"unknown board id {board_id!r}")

    def _update_quarantine(
        self, finite: np.ndarray
    ) -> tuple[list[int], list[int]]:
        newly_quarantined: list[int] = []
        released: list[int] = []
        config = self.config
        for i, board in enumerate(self.boards):
            if not finite[i]:
                board.bad_streak += 1
                board.good_streak = 0
                board.hits = 0
                board.samples_dropped += 1
                if (
                    not board.quarantined
                    and board.bad_streak >= config.quarantine_after
                ):
                    board.quarantined = True
                    newly_quarantined.append(i)
            else:
                board.bad_streak = 0
                board.good_streak += 1
                if (
                    board.quarantined
                    and board.good_streak >= config.release_after
                ):
                    board.quarantined = False
                    released.append(i)
        return newly_quarantined, released

    def step(self, t: float, rows: np.ndarray) -> FleetStep:
        """Score one row per board at time ``t``.

        ``rows`` is an (n_boards, d) matrix; a row with any non-finite
        entry counts as a sensor dropout for that board.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] != self.n_boards:
            raise ConfigError(
                f"expected {self.n_boards} rows, got {rows.shape[0]}"
            )
        if self._start_t is None:
            self._start_t = t
        finite = np.isfinite(rows).all(axis=1)
        newly_quarantined, released = self._update_quarantine(finite)
        scores = np.full(self.n_boards, np.nan)
        anomalous = np.zeros(self.n_boards, dtype=bool)
        warming_up = (t - self._start_t) < self.config.warmup_s
        alarms: list[int] = []
        if not warming_up:
            scoreable = finite & np.array(
                [not b.quarantined for b in self.boards]
            )
            idx = np.nonzero(scoreable)[0]
            if len(idx):
                sub_state = _state_select(self._stream_state, idx)
                sub_scores, sub_state = self.detector.step_streams(
                    rows[idx], sub_state
                )
                _state_assign(self._stream_state, idx, sub_state)
                scores[idx] = sub_scores
                flags = sub_scores > self.detector.threshold * self._threshold_scale
                anomalous[idx] = flags
                for pos, i in enumerate(idx.tolist()):
                    board = self.boards[i]
                    board.samples_scored += 1
                    self.health.inc("fleet.scored")
                    self.health.inc(f"board.{board.board_id}.scored")
                    self.health.observe(
                        "fleet.score", float(sub_scores[pos]),
                        bounds=SCORE_BOUNDS,
                    )
                    if flags[pos]:
                        board.hits += 1
                        self.health.inc("fleet.anomalous")
                    else:
                        board.hits = 0
                    if board.hits >= self.config.consecutive_hits:
                        board.alarms.append(t)
                        board.hits = 0
                        alarms.append(i)
                        self.health.inc("fleet.alarms")
                        self.health.inc(f"board.{board.board_id}.alarms")
        for i in newly_quarantined:
            self.health.inc("fleet.quarantines")
            self.health.inc(f"board.{self.boards[i].board_id}.quarantines")
        for i in released:
            self.health.inc("fleet.releases")
            self.health.inc(f"board.{self.boards[i].board_id}.releases")
        self.health.inc("fleet.dropped", int((~finite).sum()))
        return FleetStep(
            t=t,
            scores=scores,
            anomalous=anomalous,
            alarms=alarms,
            quarantined=newly_quarantined,
            released=released,
            warming_up=warming_up,
        )

    def health_snapshot(self) -> dict:
        """JSON-friendly view of the health rollup."""
        return self.health.snapshot()

    def reset(self) -> None:
        """Clear all per-board state (new trace); keeps the detector."""
        self.boards = [
            BoardScoringState(board_id=b.board_id) for b in self.boards
        ]
        self.health = Rollup()
        self._stream_state = self.detector.make_stream_state(self.n_boards)
        self._start_t = None
        self._threshold_scale = 1.0
        _reset_if_stateful(self.detector)
