"""Black-box fixed current threshold — the industry baseline.

"State-of-the-art software methods include setting a maximum current draw
before power cycling the device" (sect. 1).  The threshold is calibrated
from clean training data as a quantile plus margin; the detector sees only
the current column.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class CurrentThresholdDetector(AnomalyDetector):
    """Flags any sample whose current exceeds a calibrated ceiling.

    Attributes:
        quantile: training-current quantile used as the base level.
        margin_a: additional headroom above the base level.
    """

    def __init__(self, quantile: float = 0.999, margin_a: float = 0.05) -> None:
        super().__init__()
        if not 0.0 < quantile <= 1.0:
            raise ConfigError(f"quantile {quantile} outside (0, 1]")
        self.quantile = quantile
        self.margin_a = margin_a
        self._ceiling = float("inf")

    def _fit(self, rows: np.ndarray) -> None:
        current = rows[:, -1]
        self._ceiling = float(np.quantile(current, self.quantile)) + self.margin_a

    def _score(self, rows: np.ndarray) -> np.ndarray:
        return rows[:, -1] - self._ceiling

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized: one elementwise subtraction for the whole batch."""
        return self.score(rows)

    @property
    def threshold(self) -> float:
        return 0.0

    @property
    def ceiling_a(self) -> float:
        """The calibrated absolute current ceiling."""
        return self._ceiling
