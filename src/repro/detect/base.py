"""Detector interface.

All detectors share a two-phase life cycle: ``fit`` on clean training
telemetry (rows = samples; the last column is measured current, preceding
columns are software features), then ``score`` new rows — higher scores
mean more anomalous.  ``predict`` applies the detector's calibrated
threshold.

Two batched fast paths extend the per-sample contract:

- :meth:`AnomalyDetector.score_batch` scores one *stream* of rows and must
  be numerically identical to scoring them one at a time (the default
  implementation literally loops; vectorized overrides keep bitwise
  equality by using batch-size-invariant reductions such as ``einsum``).
- :meth:`AnomalyDetector.step_streams` scores one row from each of N
  *independent* streams (one per fleet board) in a single call,
  threading per-stream detector state through an opaque handle from
  :meth:`AnomalyDetector.make_stream_state`.  Stateless detectors ignore
  the state; sequential detectors (EWMA, CUSUM) vectorize their
  recursion elementwise across streams.
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import DetectorError


class FittedState(enum.Enum):
    """Whether a detector has been trained."""

    UNFITTED = "unfitted"
    FITTED = "fitted"


class AnomalyDetector(abc.ABC):
    """Base class for all SEL detectors."""

    def __init__(self) -> None:
        self.state = FittedState.UNFITTED

    @abc.abstractmethod
    def _fit(self, rows: np.ndarray) -> None:
        """Train on clean telemetry rows."""

    @abc.abstractmethod
    def _score(self, rows: np.ndarray) -> np.ndarray:
        """Anomaly score per row (higher = more anomalous)."""

    @property
    @abc.abstractmethod
    def threshold(self) -> float:
        """Score above which a row is flagged."""

    def fit(self, rows: np.ndarray) -> "AnomalyDetector":
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] < 2:
            raise DetectorError("need at least two training rows")
        self._fit(rows)
        self.state = FittedState.FITTED
        return self

    def score(self, rows: np.ndarray) -> np.ndarray:
        if self.state is not FittedState.FITTED:
            raise DetectorError(f"{type(self).__name__} is not fitted")
        return self._score(np.atleast_2d(np.asarray(rows, dtype=float)))

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Boolean anomaly flags per row."""
        return self.score(rows) > self.threshold

    def score_one(self, row: np.ndarray) -> float:
        return float(self.score(row.reshape(1, -1))[0])

    # -- batched fast paths ----------------------------------------------------

    def _require_fitted(self) -> None:
        if self.state is not FittedState.FITTED:
            raise DetectorError(f"{type(self).__name__} is not fitted")

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Score a batch of rows from one stream.

        Contract: numerically identical to calling :meth:`score` on each
        row in order (including state advancement for sequential
        detectors).  The base implementation loops; subclasses override
        with vectorized math that preserves bitwise equality.
        """
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.size == 0:
            return np.empty(0)
        return np.concatenate(
            [self._score(rows[i:i + 1]) for i in range(rows.shape[0])]
        )

    def predict_batch(self, rows: np.ndarray) -> np.ndarray:
        """Boolean anomaly flags via the batched fast path."""
        return self.score_batch(rows) > self.threshold

    def make_stream_state(self, n_streams: int):
        """Fresh per-stream scoring state for :meth:`step_streams`.

        ``None`` means the detector is stateless across samples and the
        default :meth:`step_streams` just batch-scores the rows.
        """
        return None

    def step_streams(self, rows, state):
        """Score row ``i`` with stream ``i``'s state; one row per stream.

        Returns ``(scores, new_state)``.  Each stream must evolve exactly
        as if it were scored alone with a dedicated detector instance —
        the property the fleet scorer's equivalence tests pin down.
        """
        return self.score_batch(rows), state
