"""Detector interface.

All detectors share a two-phase life cycle: ``fit`` on clean training
telemetry (rows = samples; the last column is measured current, preceding
columns are software features), then ``score`` new rows — higher scores
mean more anomalous.  ``predict`` applies the detector's calibrated
threshold.
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import DetectorError


class FittedState(enum.Enum):
    """Whether a detector has been trained."""

    UNFITTED = "unfitted"
    FITTED = "fitted"


class AnomalyDetector(abc.ABC):
    """Base class for all SEL detectors."""

    def __init__(self) -> None:
        self.state = FittedState.UNFITTED

    @abc.abstractmethod
    def _fit(self, rows: np.ndarray) -> None:
        """Train on clean telemetry rows."""

    @abc.abstractmethod
    def _score(self, rows: np.ndarray) -> np.ndarray:
        """Anomaly score per row (higher = more anomalous)."""

    @property
    @abc.abstractmethod
    def threshold(self) -> float:
        """Score above which a row is flagged."""

    def fit(self, rows: np.ndarray) -> "AnomalyDetector":
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] < 2:
            raise DetectorError("need at least two training rows")
        self._fit(rows)
        self.state = FittedState.FITTED
        return self

    def score(self, rows: np.ndarray) -> np.ndarray:
        if self.state is not FittedState.FITTED:
            raise DetectorError(f"{type(self).__name__} is not fitted")
        return self._score(np.atleast_2d(np.asarray(rows, dtype=float)))

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Boolean anomaly flags per row."""
        return self.score(rows) > self.threshold

    def score_one(self, row: np.ndarray) -> float:
        return float(self.score(row.reshape(1, -1))[0])
