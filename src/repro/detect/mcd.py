"""FAST-MCD: minimum covariance determinant robust estimator.

The paper's proposed detector is sklearn's elliptic envelope, which fits a
robust location/covariance via the Minimum Covariance Determinant.  sklearn
is not available offline, so this is a from-scratch FAST-MCD (Rousseeuw &
Van Driessen): draw small random subsets, iterate concentration steps
(re-estimate from the h points with smallest Mahalanobis distance), keep
the lowest-determinant solution, then reweight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import DetectorError
from repro.rng import make_rng


@dataclass
class McdResult:
    """A robust location/scatter estimate.

    Attributes:
        location: robust mean (d,).
        covariance: robust covariance (d, d).
        precision: inverse covariance.
        support: boolean mask of inlier training rows.
    """

    location: np.ndarray
    covariance: np.ndarray
    precision: np.ndarray
    support: np.ndarray

    def mahalanobis_sq(self, rows: np.ndarray) -> np.ndarray:
        """Squared Mahalanobis distance of each row.

        Computed with elementwise column operations in a fixed order, so
        the result for any row is bitwise independent of how many rows
        share the batch (einsum/BLAS pick batch-size-dependent reduction
        strategies) — the property the batched scoring contract relies on.
        """
        centered = np.atleast_2d(rows) - self.location
        n, d = centered.shape
        total = np.zeros(n)
        for j in range(d):
            inner = np.zeros(n)
            for k in range(d):
                inner += self.precision[j, k] * centered[:, k]
            total += centered[:, j] * inner
        return total


def _c_step(
    x: np.ndarray, subset: np.ndarray, h: int
) -> tuple[np.ndarray, float]:
    """One concentration step; returns (new subset indices, determinant)."""
    mean = x[subset].mean(axis=0)
    cov = np.cov(x[subset], rowvar=False, bias=False)
    cov = _regularize(cov)
    precision = np.linalg.inv(cov)
    centered = x - mean
    dist = np.einsum("ij,jk,ik->i", centered, precision, centered)
    new_subset = np.argsort(dist)[:h]
    _, logdet = np.linalg.slogdet(cov)
    return new_subset, logdet


def _regularize(cov: np.ndarray) -> np.ndarray:
    d = cov.shape[0]
    trace = np.trace(cov)
    scale = trace / d if trace > 0 else 1.0
    return cov + np.eye(d) * max(scale, 1e-12) * 1e-9


def fast_mcd(
    x: np.ndarray,
    support_fraction: float = 0.75,
    n_trials: int = 30,
    n_c_steps: int = 12,
    seed: int | np.random.Generator | None = None,
) -> McdResult:
    """Robust location/covariance of the rows of ``x``."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n, d = x.shape
    if n < d + 2:
        raise DetectorError(f"need more rows ({n}) than dimensions ({d})")
    h = max(int(np.ceil(support_fraction * n)), d + 1)
    rng = make_rng(seed)

    best_logdet = np.inf
    best_subset: np.ndarray | None = None
    for _ in range(n_trials):
        seed_subset = rng.choice(n, size=min(d + 1, n), replace=False)
        subset = seed_subset
        if len(subset) < h:
            # Expand the seed to h points via one distance ranking.
            subset, _ = _c_step(x, subset, h)
        logdet = np.inf
        for _ in range(n_c_steps):
            new_subset, new_logdet = _c_step(x, subset, h)
            if np.array_equal(np.sort(new_subset), np.sort(subset)):
                logdet = new_logdet
                break
            subset, logdet = new_subset, new_logdet
        if logdet < best_logdet:
            best_logdet = logdet
            best_subset = subset
    assert best_subset is not None

    location = x[best_subset].mean(axis=0)
    covariance = _regularize(np.cov(x[best_subset], rowvar=False, bias=False))
    # Consistency correction: the h-subset covariance underestimates scatter
    # for Gaussian data; rescale by the standard MCD consistency factor.
    alpha = h / n
    chi2_q = stats.chi2.ppf(alpha, df=d)
    consistency = alpha / stats.chi2.cdf(chi2_q, df=d + 2)
    covariance = covariance * consistency

    precision = np.linalg.inv(covariance)
    centered = x - location
    dist = np.einsum("ij,jk,ik->i", centered, precision, centered)
    cutoff = stats.chi2.ppf(0.975, df=d)
    support = dist <= cutoff

    # Reweighted estimate from the support set.
    if support.sum() > d + 1:
        location = x[support].mean(axis=0)
        covariance = _regularize(np.cov(x[support], rowvar=False, bias=False))
        precision = np.linalg.inv(covariance)
    return McdResult(
        location=location,
        covariance=covariance,
        precision=precision,
        support=support,
    )
