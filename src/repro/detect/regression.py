"""Metric-aware linear residual detector.

Implements the paper's core move directly: "extract features accessible to
the OS ... to model the current draw" (sect. 3.1).  Expected current is a
least-squares linear function of the software features; the anomaly score
is the standardized *residual* (measured minus expected).  A latch-up adds
current that no feature explains, so the residual jumps by the full latch-up
delta — regardless of what the workload is doing.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class LinearResidualDetector(AnomalyDetector):
    """Standardized residual of current against a linear feature model.

    Attributes:
        z_threshold: flag when |residual| exceeds this many residual sigmas.
        ridge: L2 regularization on the fit (stabilizes collinear features,
            e.g. cpu_util vs per-core utils).
    """

    def __init__(self, z_threshold: float = 5.0, ridge: float = 1e-6) -> None:
        super().__init__()
        if z_threshold <= 0:
            raise ConfigError(f"z threshold must be positive: {z_threshold}")
        self.z_threshold = z_threshold
        self.ridge = ridge
        self._coef: np.ndarray | None = None
        self._sigma = 1.0
        # Accumulated normal equations (without the ridge term), kept so
        # partial_fit can warm-start instead of re-solving full history.
        self._gram: np.ndarray | None = None
        self._xty: np.ndarray | None = None

    def _design(self, rows: np.ndarray) -> np.ndarray:
        features = rows[:, :-1]
        return np.column_stack([np.ones(len(features)), features])

    def _solve(self) -> None:
        assert self._gram is not None and self._xty is not None
        gram = self._gram + self.ridge * np.eye(self._gram.shape[0])
        self._coef = np.linalg.solve(gram, self._xty)

    def _fit(self, rows: np.ndarray) -> None:
        design = self._design(rows)
        current = rows[:, -1]
        self._gram = design.T @ design
        self._xty = design.T @ current
        self._solve()
        residuals = current - design @ self._coef
        # Robust scale: MAD * 1.4826.  Training traces contain DVFS spikes;
        # a plain std would inflate sigma and desensitize the detector.
        mad = float(np.median(np.abs(residuals - np.median(residuals))))
        self._sigma = max(mad * 1.4826, 1e-9)

    def partial_fit(self, rows: np.ndarray, forgetting: float = 1.0) -> None:
        """Warm-started update from new clean rows.

        Decays the accumulated normal equations by ``forgetting`` and adds
        the new rows' contribution, then re-solves — O(d^2) per row and no
        stall on storing or re-scanning full history, so the model can
        track slow DVFS/thermal drift online.  The residual scale blends
        toward the new rows' robust estimate at the same rate.
        """
        if self._gram is None:
            raise ConfigError("detector is not fitted")
        if not 0.0 < forgetting <= 1.0:
            raise ConfigError(f"forgetting {forgetting} outside (0, 1]")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape[0] == 0:
            return
        design = self._design(rows)
        current = rows[:, -1]
        self._gram = forgetting * self._gram + design.T @ design
        self._xty = forgetting * self._xty + design.T @ current
        self._solve()
        residuals = current - design @ self._coef
        mad = float(np.median(np.abs(residuals - np.median(residuals))))
        new_sigma = max(mad * 1.4826, 1e-9)
        self._sigma = max(
            forgetting * self._sigma + (1.0 - forgetting) * new_sigma, 1e-9
        )

    def expected_current(self, rows: np.ndarray) -> np.ndarray:
        """Model-predicted current for each row.

        Uses an ``einsum`` row reduction rather than ``@``: BLAS matmul
        picks different blocking for different batch sizes, while einsum
        reduces each row identically — which is what makes the batched
        score path bitwise equal to per-sample scoring.
        """
        if self._coef is None:
            raise ConfigError("detector is not fitted")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        return np.einsum("ij,j->i", self._design(rows), self._coef)

    def _score(self, rows: np.ndarray) -> np.ndarray:
        expected = self.expected_current(rows)
        return np.abs(rows[:, -1] - expected) / self._sigma

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized: one design-matrix reduction for the whole batch."""
        return self.score(rows)

    @property
    def threshold(self) -> float:
        return self.z_threshold

    @property
    def residual_sigma_a(self) -> float:
        """Training residual scale in amperes (detection floor ~ z*sigma)."""
        return self._sigma
