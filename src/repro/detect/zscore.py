"""Black-box rolling z-score over current — a smarter naive baseline.

Scores each sample by how many standard deviations its current sits from
the training-current mean.  Still blind to workload: a legitimate 4-core
burst looks exactly like a fault.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class RollingZScoreDetector(AnomalyDetector):
    """|z| of the current channel against the training distribution."""

    def __init__(self, z_threshold: float = 4.0) -> None:
        super().__init__()
        if z_threshold <= 0:
            raise ConfigError(f"z threshold must be positive: {z_threshold}")
        self.z_threshold = z_threshold
        self._mean = 0.0
        self._std = 1.0

    def _fit(self, rows: np.ndarray) -> None:
        current = rows[:, -1]
        self._mean = float(current.mean())
        self._std = float(max(current.std(), 1e-9))

    def _score(self, rows: np.ndarray) -> np.ndarray:
        return np.abs(rows[:, -1] - self._mean) / self._std

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized: elementwise |z| over the whole batch at once."""
        return self.score(rows)

    @property
    def threshold(self) -> float:
        return self.z_threshold
