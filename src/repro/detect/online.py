"""Online operation: drift tracking and incremental refit.

A detector trained once on clean telemetry slowly goes stale: DVFS
governors retune, thermal state shifts the leakage floor, sensors drift.
Refitting from scratch on full history stalls the scoring path and needs
unbounded memory.  :class:`OnlineRefit` wraps any detector with

- a bounded **window buffer** of recent rows the detector itself judged
  clean (anomalous rows are excluded, so an active latch-up can neither
  poison the training window nor trigger a refit that absorbs it);
- cheap **warm-started updates** every ``refit_every`` clean rows for
  detectors exposing ``partial_fit`` (the linear residual family decays
  its accumulated normal equations and folds the new rows in — O(d^2)
  per row, no history re-scan);
- a **drift statistic** (EWMA of the standardized clean score) that
  triggers a full :meth:`refresh` — for the elliptic envelope, a
  FAST-MCD re-estimate — only when the score distribution has actually
  moved, so the expensive path runs rarely and never on a schedule.

Refit triggers are evaluated once per ``score`` call, i.e. at batch
granularity: a daemon feeding one sample at a time gets per-sample
triggering, while a batched caller gets it between batches.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError

#: Scale floor as a fraction of (threshold - center): keeps the drift
#: statistic meaningful for one-sided scores (CUSUM) whose clean MAD is 0.
_SCALE_FLOOR_FRACTION = 0.05


class OnlineRefit(AnomalyDetector):
    """Wraps a detector with windowed, drift-triggered incremental refit.

    Attributes:
        detector: the wrapped detector (scores pass straight through).
        window_rows: capacity of the clean-row window buffer.
        refit_every: clean rows between warm-started partial updates.
        drift_alpha: EWMA weight of the drift statistic.
        drift_sigmas: |drift| level that triggers a full refresh.
        forgetting: decay passed to ``partial_fit`` on warm updates.
        partial_updates: warm updates performed so far.
        refreshes: full refreshes performed so far.
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        window_rows: int = 600,
        refit_every: int = 200,
        drift_alpha: float = 0.02,
        drift_sigmas: float = 1.5,
        forgetting: float = 0.98,
    ) -> None:
        super().__init__()
        if window_rows < 2:
            raise ConfigError(f"window_rows must be >= 2, got {window_rows}")
        if refit_every < 1:
            raise ConfigError(f"refit_every must be >= 1, got {refit_every}")
        if not 0.0 < drift_alpha <= 1.0:
            raise ConfigError(f"drift_alpha {drift_alpha} outside (0, 1]")
        if drift_sigmas <= 0:
            raise ConfigError("drift_sigmas must be positive")
        self.detector = detector
        self.window_rows = window_rows
        self.refit_every = refit_every
        self.drift_alpha = drift_alpha
        self.drift_sigmas = drift_sigmas
        self.forgetting = forgetting
        self.partial_updates = 0
        self.refreshes = 0
        self._buffer: deque[np.ndarray] = deque(maxlen=window_rows)
        self._pending: list[np.ndarray] = []
        self._drift = 0.0
        self._center = 0.0
        self._scale = 1.0
        self._clean_since_update = 0

    # -- calibration -----------------------------------------------------------

    def _reset_inner(self) -> None:
        reset = getattr(self.detector, "reset", None)
        if callable(reset):
            reset()

    def _calibrate_drift_scale(self, rows: np.ndarray) -> None:
        """Center/scale of the wrapped detector's clean-score distribution."""
        scores = self.detector.score_batch(rows)
        self._reset_inner()
        self._center = float(np.median(scores))
        mad = float(np.median(np.abs(scores - self._center)))
        floor = _SCALE_FLOOR_FRACTION * (
            self.detector.threshold - self._center
        )
        self._scale = max(mad * 1.4826, floor, 1e-9)

    def _fit(self, rows: np.ndarray) -> None:
        self.detector.fit(rows)
        self._buffer = deque(
            (row.copy() for row in rows), maxlen=self.window_rows
        )
        self._pending = []
        self._drift = 0.0
        self._clean_since_update = 0
        self._calibrate_drift_scale(rows)

    # -- scoring with online bookkeeping ---------------------------------------

    def _observe(self, rows: np.ndarray, scores: np.ndarray) -> None:
        """Fold scored rows into the window buffer and drift statistic."""
        clean = scores <= self.detector.threshold
        alpha = self.drift_alpha
        drift = self._drift
        for i in np.nonzero(clean)[0].tolist():
            row = rows[i].copy()
            self._buffer.append(row)
            self._pending.append(row)
            standardized = (float(scores[i]) - self._center) / self._scale
            drift = alpha * standardized + (1 - alpha) * drift
        self._drift = drift
        self._clean_since_update += int(clean.sum())
        self._maybe_refit()

    def _score(self, rows: np.ndarray) -> np.ndarray:
        scores = self.detector.score_batch(rows)
        self._observe(rows, scores)
        return scores

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Single code path: the wrapped detector's batched fast path."""
        return self.score(rows)

    def _maybe_refit(self) -> None:
        if abs(self._drift) >= self.drift_sigmas and self.window_full:
            self.refresh()
            return
        if self._clean_since_update >= self.refit_every and self._pending:
            partial = getattr(self.detector, "partial_fit", None)
            if callable(partial):
                partial(np.stack(self._pending), forgetting=self.forgetting)
                self.partial_updates += 1
            self._pending = []
            self._clean_since_update = 0

    # -- explicit refit --------------------------------------------------------

    @property
    def window_full(self) -> bool:
        return len(self._buffer) >= self.window_rows

    @property
    def drift(self) -> float:
        """Current standardized-score drift (EWMA)."""
        return self._drift

    def window_matrix(self) -> np.ndarray:
        """Current clean-row window as an (n, d) matrix."""
        if not self._buffer:
            raise ConfigError("refit window is empty")
        return np.stack(tuple(self._buffer))

    def refresh(self) -> None:
        """Full refit of the wrapped detector on the buffered window.

        For the elliptic envelope this is the FAST-MCD refresh; for the
        linear residual family a full re-solve.  Idempotent: refreshing
        twice on an unchanged window yields an identical detector (the
        wrapped fits are deterministic under their stored seeds).
        """
        window = self.window_matrix()
        if window.shape[0] < 2:
            raise ConfigError("refit window needs at least two rows")
        self.detector.fit(window)
        self._calibrate_drift_scale(window)
        self._drift = 0.0
        self._pending = []
        self._clean_since_update = 0
        self.refreshes += 1

    # -- passthrough -----------------------------------------------------------

    @property
    def threshold(self) -> float:
        return self.detector.threshold

    def reset(self) -> None:
        """Reset the wrapped detector's trace state (not the window)."""
        self._reset_inner()

    def make_stream_state(self, n_streams: int):
        return self.detector.make_stream_state(n_streams)

    def step_streams(self, rows, state):
        """Stream scoring passes through; bookkeeping stays per-call.

        Fleet callers score one row per board; the clean-row window and
        drift statistic update exactly as in :meth:`_score`.
        """
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        scores, state = self.detector.step_streams(rows, state)
        self._observe(rows, scores)
        return scores, state
