"""EWMA drift detector over a scalar stream (usually the model residual).

Latch-ups are *sustained* shifts; DVFS spikes are brief.  An exponentially
weighted moving average of the residual integrates out spikes but tracks a
persistent step, making it a good post-filter behind the residual model.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class EwmaDetector(AnomalyDetector):
    """EWMA of the current channel's deviation from its training mean.

    Stateful: ``score`` processes rows in order and carries the EWMA
    across calls.  Call :meth:`reset` between independent traces.
    """

    def __init__(self, alpha: float = 0.08, z_threshold: float = 4.0) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha {alpha} outside (0, 1]")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self._mean = 0.0
        self._sigma = 1.0
        self._ewma = 0.0

    def reset(self) -> None:
        """Clear the running average (start of a new trace)."""
        self._ewma = 0.0

    def _fit(self, rows: np.ndarray) -> None:
        current = rows[:, -1]
        self._mean = float(current.mean())
        self._sigma = float(max(current.std(), 1e-9))
        self.reset()

    def _ewma_sigma(self) -> float:
        # Steady-state EWMA std of iid input is sigma * sqrt(a / (2 - a)).
        return self._sigma * np.sqrt(self.alpha / (2.0 - self.alpha))

    def _score(self, rows: np.ndarray) -> np.ndarray:
        # Deviations are computed in one vectorized pass; only the EWMA
        # recursion itself runs as a scalar loop (it is inherently
        # sequential, and reassociating it would break the bitwise
        # batch-equals-per-sample contract).
        ewma_sigma = self._ewma_sigma()
        deviations = rows[:, -1] - self._mean
        scores = np.empty(len(rows))
        ewma = self._ewma
        alpha = self.alpha
        for i, deviation in enumerate(deviations.tolist()):
            ewma = alpha * deviation + (1 - alpha) * ewma
            scores[i] = abs(ewma) / ewma_sigma
        self._ewma = ewma
        return scores

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Sequential recursion with vectorized per-row preparation."""
        return self.score(rows)

    def make_stream_state(self, n_streams: int) -> np.ndarray:
        """One EWMA accumulator per stream (board)."""
        return np.zeros(n_streams)

    def step_streams(self, rows, state):
        """Advance every stream's EWMA by one sample, elementwise."""
        self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        deviations = rows[:, -1] - self._mean
        state = self.alpha * deviations + (1 - self.alpha) * state
        return np.abs(state) / self._ewma_sigma(), state

    @property
    def threshold(self) -> float:
        return self.z_threshold
