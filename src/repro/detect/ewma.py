"""EWMA drift detector over a scalar stream (usually the model residual).

Latch-ups are *sustained* shifts; DVFS spikes are brief.  An exponentially
weighted moving average of the residual integrates out spikes but tracks a
persistent step, making it a good post-filter behind the residual model.
"""

from __future__ import annotations

import numpy as np

from repro.detect.base import AnomalyDetector
from repro.errors import ConfigError


class EwmaDetector(AnomalyDetector):
    """EWMA of the current channel's deviation from its training mean.

    Stateful: ``score`` processes rows in order and carries the EWMA
    across calls.  Call :meth:`reset` between independent traces.
    """

    def __init__(self, alpha: float = 0.08, z_threshold: float = 4.0) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha {alpha} outside (0, 1]")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self._mean = 0.0
        self._sigma = 1.0
        self._ewma = 0.0

    def reset(self) -> None:
        """Clear the running average (start of a new trace)."""
        self._ewma = 0.0

    def _fit(self, rows: np.ndarray) -> None:
        current = rows[:, -1]
        self._mean = float(current.mean())
        self._sigma = float(max(current.std(), 1e-9))
        self.reset()

    def _score(self, rows: np.ndarray) -> np.ndarray:
        # Steady-state EWMA std of iid input is sigma * sqrt(a / (2 - a)).
        ewma_sigma = self._sigma * np.sqrt(self.alpha / (2.0 - self.alpha))
        scores = np.empty(len(rows))
        for i, row in enumerate(rows):
            deviation = row[-1] - self._mean
            self._ewma = self.alpha * deviation + (1 - self.alpha) * self._ewma
            scores[i] = abs(self._ewma) / ewma_sigma
        return scores

    @property
    def threshold(self) -> float:
        return self.z_threshold
