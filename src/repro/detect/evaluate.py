"""Detector evaluation: ROC curves and detection-latency measurement."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


def roc_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) over all distinct score cutoffs.

    ``labels`` are 1 for anomalous samples.  Thresholds descend; a sample
    is flagged when its score strictly exceeds the threshold.  Tied
    scores share one operating point (the whole tie group enters the
    confusion matrix together): no threshold can split a tie, so walking
    the curve through per-sample points inside a tie group fabricates
    unreachable operating points — and biases the AUC of tied scores
    away from the Mann-Whitney value.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if scores.shape != labels.shape:
        raise ConfigError("scores and labels must align")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ConfigError("need both positive and negative samples")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1 - sorted_labels)
    last = np.concatenate(
        [np.nonzero(np.diff(sorted_scores))[0], [len(sorted_scores) - 1]]
    )
    tpr = np.concatenate([[0.0], tp[last] / n_pos])
    fpr = np.concatenate([[0.0], fp[last] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[last]])
    return fpr, tpr, thresholds


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(scores, labels)
    return float(np.trapezoid(tpr, fpr))


def tpr_at_fpr(
    scores: np.ndarray, labels: np.ndarray, max_fpr: float
) -> float:
    """Best achievable TPR subject to FPR <= max_fpr."""
    fpr, tpr, _ = roc_curve(scores, labels)
    feasible = tpr[fpr <= max_fpr]
    return float(feasible.max()) if len(feasible) else 0.0


@dataclass(frozen=True)
class DetectionTrial:
    """One latch-up detection trial.

    Attributes:
        delta_current_a: injected latch-up magnitude.
        onset_s: injection time.
        detected_at_s: first alarm at/after onset (None = missed).
        deadline_s: damage deadline after onset.
    """

    delta_current_a: float
    onset_s: float
    detected_at_s: float | None
    deadline_s: float = 180.0

    @property
    def latency_s(self) -> float | None:
        if self.detected_at_s is None:
            return None
        return self.detected_at_s - self.onset_s

    @property
    def saved(self) -> bool:
        """Whether the board was power-cycled before permanent damage."""
        latency = self.latency_s
        return latency is not None and latency <= self.deadline_s


def detection_latency(
    alarm_times: np.ndarray, onset_s: float
) -> float | None:
    """First alarm at or after ``onset_s`` (None when never alarmed)."""
    alarm_times = np.asarray(alarm_times, dtype=float)
    after = alarm_times[alarm_times >= onset_s]
    if len(after) == 0:
        return None
    return float(after.min())
