"""Anomaly-detection algorithms for SEL detection.

Two families:

- *Black-box* detectors that see only the current channel — the prior art
  the paper criticizes (fixed thresholds, rolling z-scores).
- *Metric-aware* detectors that model current jointly with (or conditioned
  on) software-extractable features — the paper's contribution: a linear
  residual model of expected current, and an elliptic envelope (robust
  Mahalanobis gate over a FAST-MCD covariance estimate, implemented from
  scratch; the paper cites sklearn's EllipticEnvelope).

Fleet-scale operation layers on top: :class:`OnlineRefit` keeps a fitted
detector fresh against slow drift, :class:`EnsembleDetector` votes several
detectors into one score, and :class:`FleetScorer` multiplexes N boards
through one shared fitted detector via the ``step_streams`` fast path.
"""

from repro.detect.base import AnomalyDetector, FittedState
from repro.detect.threshold import CurrentThresholdDetector
from repro.detect.zscore import RollingZScoreDetector
from repro.detect.regression import LinearResidualDetector
from repro.detect.mcd import fast_mcd, McdResult
from repro.detect.elliptic import EllipticEnvelopeDetector
from repro.detect.ewma import EwmaDetector
from repro.detect.cusum import CusumDetector
from repro.detect.rescusum import ResidualCusumDetector
from repro.detect.evaluate import (
    roc_curve, roc_auc, DetectionTrial, detection_latency,
)
from repro.detect.online import OnlineRefit
from repro.detect.fleet import (
    EnsembleDetector, FleetConfig, FleetScorer, FleetStep,
    BoardScoringState, auc_weights,
)

__all__ = [
    "AnomalyDetector", "FittedState",
    "CurrentThresholdDetector", "RollingZScoreDetector",
    "LinearResidualDetector", "fast_mcd", "McdResult",
    "EllipticEnvelopeDetector", "EwmaDetector", "CusumDetector",
    "ResidualCusumDetector",
    "roc_curve", "roc_auc", "DetectionTrial", "detection_latency",
    "OnlineRefit",
    "EnsembleDetector", "FleetConfig", "FleetScorer", "FleetStep",
    "BoardScoringState", "auc_weights",
]
