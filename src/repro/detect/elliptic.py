"""Elliptic-envelope detector over joint (features, current) rows.

The detector the paper proposes to train on testbed data (sect. 3.1): fit a
robust Gaussian envelope (FAST-MCD location/covariance) to clean joint
telemetry; score new samples by Mahalanobis distance.  A latch-up shifts
current without shifting features, moving the joint sample off the learned
correlation ellipsoid even when the absolute current stays within its
normal range.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.detect.base import AnomalyDetector
from repro.detect.mcd import McdResult, fast_mcd
from repro.errors import ConfigError


class EllipticEnvelopeDetector(AnomalyDetector):
    """Robust Mahalanobis gate on joint (features, current) vectors.

    Attributes:
        contamination: assumed outlier fraction in training data; sets the
            chi-square score threshold.
        support_fraction: MCD subset fraction.
    """

    def __init__(
        self,
        contamination: float = 0.02,
        support_fraction: float = 0.95,
        persistence: int = 8,
        safety_factor: float = 1.5,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        if not 0 < contamination < 0.5:
            raise ConfigError(
                f"contamination {contamination} outside (0, 0.5)"
            )
        if persistence < 1:
            raise ConfigError(f"persistence must be >= 1, got {persistence}")
        self.contamination = contamination
        self.support_fraction = support_fraction
        self.persistence = persistence
        self.safety_factor = safety_factor
        self.seed = seed
        self._mcd: McdResult | None = None
        self._threshold = np.inf

    def _fit(self, rows: np.ndarray) -> None:
        self._mcd = fast_mcd(
            rows,
            support_fraction=self.support_fraction,
            seed=self.seed,
        )
        d = rows.shape[1]
        chi2_cut = float(stats.chi2.ppf(1.0 - self.contamination, df=d))
        # Persistence-aware calibration: the daemon only alarms on
        # ``persistence`` *consecutive* exceedances, so the threshold must
        # only clear every clean run of that length.  Take the rolling
        # minimum over persistence-sized windows of the clean training
        # scores — brief DVFS spikes (shorter than the window) drop out —
        # and gate above its maximum with a safety margin.
        scores = self._score(rows)
        if len(scores) >= self.persistence:
            window = np.lib.stride_tricks.sliding_window_view(
                scores, self.persistence
            )
            sustained = float(window.min(axis=1).max())
        else:
            sustained = float(scores.max())
        self._threshold = max(chi2_cut, self.safety_factor * sustained)

    def _score(self, rows: np.ndarray) -> np.ndarray:
        assert self._mcd is not None
        return self._mcd.mahalanobis_sq(rows)

    def score_batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized: one batched Mahalanobis pass for all rows.

        The fixed-order column reduction in ``McdResult.mahalanobis_sq``
        is batch-size invariant, so batched scores are bitwise equal to
        per-sample scoring.
        """
        return self.score(rows)

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def mcd(self) -> McdResult:
        if self._mcd is None:
            raise ConfigError("detector is not fitted")
        return self._mcd
