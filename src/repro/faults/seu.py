"""SEU injectors for the IR interpreter.

Each injector is a ``step_hook`` (see :class:`repro.ir.interp.Interpreter`)
that fires once, at a chosen dynamic instruction index, and flips one bit of
live architectural state — a register (live SSA value of the executing
frame) or a heap cell.  This mirrors the paper's QEMU framework, which
"pauses the execution of the system emulation at a selected time, and uses
GDB to modify register and memory contents" (sect. 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.model import FaultSpec, FaultTarget, flip_value_bit, flip_int_bit
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.interp import Frame, Interpreter
from repro.ir.types import F64, Type, injectable_width
from repro.rng import make_rng


def _value_types(func: Function) -> dict[str, Type]:
    """Declared type of every named value (arguments + instruction results)."""
    types = {arg.name: arg.type for arg in func.args}
    for instr in func.instructions():
        if instr.defines_value:
            types[instr.name] = instr.type
    return types


class RegisterFaultInjector:
    """Flips one bit in one live register at one dynamic instruction.

    Attributes:
        spec: the fault request; unresolved fields (location/bit) are chosen
            uniformly at injection time and recorded in :attr:`resolved`.
        resolved: the fully determined fault actually injected (None until
            injection happens).
    """

    def __init__(
        self,
        spec: FaultSpec,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if spec.target is not FaultTarget.REGISTER:
            raise FaultInjectionError(
                f"RegisterFaultInjector got target {spec.target}"
            )
        self.spec = spec
        self.rng = make_rng(seed)
        self.resolved: FaultSpec | None = None
        self._type_cache: dict[str, dict[str, Type]] = {}

    def __call__(
        self,
        interp: Interpreter,
        frame: Frame,
        instr: Instruction,
        dynamic_index: int,
    ) -> None:
        if self.resolved is not None or dynamic_index < self.spec.dynamic_index:
            return
        env = frame.env
        if not env:
            return  # nothing live yet; fires at the next opportunity
        types = self._type_cache.get(frame.func.name)
        if types is None:
            types = _value_types(frame.func)
            self._type_cache[frame.func.name] = types

        if self.spec.location is not None:
            name = str(self.spec.location)
            if name not in env:
                return  # requested register not live yet; wait
        else:
            names = sorted(env)
            name = names[int(self.rng.integers(len(names)))]

        type_ = types.get(name, F64 if isinstance(env[name], float) else None)
        if type_ is None:
            from repro.ir.types import INT64

            type_ = INT64
        width = injectable_width(type_)
        bit = (
            self.spec.bit
            if self.spec.bit is not None
            else int(self.rng.integers(width))
        )
        env[name] = flip_value_bit(env[name], type_, bit)
        self.resolved = FaultSpec(
            target=FaultTarget.REGISTER,
            dynamic_index=dynamic_index,
            location=name,
            bit=bit,
        )

    @property
    def fired(self) -> bool:
        return self.resolved is not None


class HeapFaultInjector:
    """Flips one bit in one heap cell at one dynamic instruction.

    Heap cells are typeless 8-byte slots; the flip respects the runtime kind
    of the stored value (float vs integer).
    """

    def __init__(
        self,
        spec: FaultSpec,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if spec.target is not FaultTarget.MEMORY:
            raise FaultInjectionError(
                f"HeapFaultInjector got target {spec.target}"
            )
        self.spec = spec
        self.rng = make_rng(seed)
        self.resolved: FaultSpec | None = None

    def __call__(
        self,
        interp: Interpreter,
        frame: Frame,
        instr: Instruction,
        dynamic_index: int,
    ) -> None:
        if self.resolved is not None or dynamic_index < self.spec.dynamic_index:
            return
        if not interp.heap:
            return
        if self.spec.location is not None:
            address = int(self.spec.location)
            if not 0 <= address < len(interp.heap):
                raise FaultInjectionError(
                    f"heap address {address} outside heap of "
                    f"{len(interp.heap)} cells"
                )
        else:
            address = int(self.rng.integers(len(interp.heap)))
        cell = interp.heap[address]
        if isinstance(cell, float):
            bit = (
                self.spec.bit if self.spec.bit is not None
                else int(self.rng.integers(64))
            )
            interp.heap[address] = flip_value_bit(cell, F64, bit)
        else:
            bit = (
                self.spec.bit if self.spec.bit is not None
                else int(self.rng.integers(64))
            )
            interp.heap[address] = flip_int_bit(int(cell), bit, 64)
        self.resolved = FaultSpec(
            target=FaultTarget.MEMORY,
            dynamic_index=dynamic_index,
            location=address,
            bit=bit,
        )

    @property
    def fired(self) -> bool:
        return self.resolved is not None
