"""Single-event latch-up events.

An SEL is modelled by its observable signature (sect. 3): a step increase in
current draw — possibly as small as 5 mA, far below normal load swings —
starting at a random onset and persisting until the device is power-cycled.
If it persists past the damage deadline (~3 minutes: "destroying the gate
within around 3 minutes"), the device is permanently destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import make_rng

#: Time from latch-up onset to permanent damage (sect. 3: ~3 minutes).
DEFAULT_DAMAGE_DEADLINE_S = 180.0


@dataclass(frozen=True)
class LatchupEvent:
    """One latch-up.

    Attributes:
        onset_s: simulation time at which the short-circuit forms.
        delta_current_a: additional current drawn while latched.
        damage_deadline_s: seconds after onset at which the part is
            permanently destroyed unless power-cycled.
    """

    onset_s: float
    delta_current_a: float
    damage_deadline_s: float = DEFAULT_DAMAGE_DEADLINE_S

    @property
    def destruction_time_s(self) -> float:
        return self.onset_s + self.damage_deadline_s

    def current_at(self, t: float, cleared_at: float | None = None) -> float:
        """Additional current at time ``t`` (0 before onset / after clear)."""
        if t < self.onset_s:
            return 0.0
        if cleared_at is not None and t >= cleared_at:
            return 0.0
        return self.delta_current_a


class LatchupGenerator:
    """Draws latch-up events with configurable severity.

    The severity range defaults to the paper's span of interest: from the
    nearly invisible 5 mA case up to a full ampere.
    """

    def __init__(
        self,
        min_delta_a: float = 0.005,
        max_delta_a: float = 1.0,
        damage_deadline_s: float = DEFAULT_DAMAGE_DEADLINE_S,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if min_delta_a <= 0 or max_delta_a < min_delta_a:
            raise ConfigError(
                f"invalid delta-current range [{min_delta_a}, {max_delta_a}]"
            )
        self.min_delta_a = min_delta_a
        self.max_delta_a = max_delta_a
        self.damage_deadline_s = damage_deadline_s
        self.rng = make_rng(seed)

    def sample(self, onset_s: float) -> LatchupEvent:
        """One latch-up at ``onset_s`` with log-uniform severity.

        Log-uniform sampling spreads probability across decades, so the
        hard-to-detect few-mA events are as represented as ampere-scale
        ones.
        """
        log_lo = np.log(self.min_delta_a)
        log_hi = np.log(self.max_delta_a)
        delta = float(np.exp(self.rng.uniform(log_lo, log_hi)))
        return LatchupEvent(
            onset_s=onset_s,
            delta_current_a=delta,
            damage_deadline_s=self.damage_deadline_s,
        )
