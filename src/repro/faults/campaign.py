"""Fault-injection campaigns: many randomized trials, classified outcomes.

A campaign fixes a program and its inputs, takes one golden (fault-free)
run, then repeatedly re-executes with a single random SEU — uniform over
dynamic instruction index, live register (or heap cell) and bit — and
classifies each outcome.  This reproduces the methodology of the paper's
QEMU experiments at the granularity it argues is sufficient: faults between
instructions (sect. 4.2).

Performance plumbing (the ROADMAP's "as fast as the hardware allows"):

* golden runs are served from the process-global
  :data:`repro.perf.cache.GOLDEN_CACHE`, keyed by a content fingerprint of
  the printed IR, so sweeps over the same module + args derive the
  reference run once;
* every trial of a campaign shares one compiled-block ``code_cache``, so
  the interpreter lowers each basic block once per campaign instead of
  once per trial;
* ``run_campaign(c, seed, workers=n)`` fans trials out across a process
  pool via :func:`repro.faults.parallel.run_campaign_parallel`, with
  results byte-identical to the serial loop at any worker count.

Observability (``tracer=``): every stage emits typed events — campaign
start/end, golden-cache hit/miss, trial start, resolved injection site +
bit, classified trial end, optionally per-block transitions — through a
:class:`repro.obs.events.Tracer`.  Tracing only observes: it never draws
from an RNG or mutates engine state, so traced results are byte-identical
to untraced ones, and with ``tracer=None`` the cost is one pointer test
per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.model import FaultSpec, FaultTarget
from repro.faults.outcomes import FaultOutcome, OutcomeCounts, TrialResult, classify
from repro.faults.seu import HeapFaultInjector, RegisterFaultInjector
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.interp import ExecutionResult, ExecutionStatus, Interpreter
from repro.ir.module import Module
from repro.obs.events import (
    BlockTransition,
    CampaignEnd,
    CampaignStart,
    GoldenCacheLookup,
    Injection,
    Tracer,
    TrialEnd,
    TrialStart,
)
from repro.obs.spans import ROOT, SpanEnd, SpanStart, campaign_root, span_id
from repro.perf.cache import GOLDEN_CACHE
from repro.rng import fork, make_rng


@dataclass
class Campaign:
    """Configuration of one fault-injection campaign.

    Attributes:
        module: module containing the program (possibly instrumented).
        func_name: entry function.
        args: arguments passed on every run.
        n_trials: number of injected faults.
        target: REGISTER or MEMORY faults.
        sdc_tolerance: relative output error treated as benign.
        fuel: instruction budget per run (hang detection).
        cost_model: cycle cost model used for overhead accounting.
    """

    module: Module
    func_name: str
    args: tuple[int | float, ...]
    n_trials: int = 200
    target: FaultTarget = FaultTarget.REGISTER
    sdc_tolerance: float = 0.0
    fuel: int = 2_000_000
    cost_model: CostModel = CORTEX_A53


@dataclass
class CampaignResult:
    """Outcome of a campaign.

    Attributes:
        golden: the fault-free reference run.
        counts: aggregated outcome tallies.
        trials: per-trial records.
        mean_faulty_cycles: average cycles across faulted runs.
    """

    golden: ExecutionResult
    counts: OutcomeCounts
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def mean_faulty_cycles(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.cycles for t in self.trials]))


def rank_sites(campaign: Campaign) -> list[str]:
    """Register injection sites of ``campaign``, most vulnerable first.

    Bridges the static analyses into the injection engine: sites are the
    SSA value names :class:`repro.faults.seu.RegisterFaultInjector`
    resolves ``FaultSpec.location`` against, ordered by the ACE-style
    score of :func:`repro.analysis.vulnerability.analyze_function`.  Use
    it to spend a trial budget where flips are predicted to hurt most
    (targeted campaigns) instead of uniformly; E14 validates the ordering
    against empirical per-site harm.

    Imported lazily so the injection engine keeps working without the
    analysis package (e.g. in stripped-down deployments).
    """
    from repro.analysis.vulnerability import analyze_function

    func = campaign.module.function(campaign.func_name)
    report = analyze_function(func, campaign.cost_model)
    return [site.name for site in report.ranked()]


def run_golden(
    campaign: Campaign,
    use_cache: bool = True,
    tracer: Tracer | None = None,
) -> ExecutionResult:
    """The campaign's fault-free reference run (validated).

    Served from :data:`repro.perf.cache.GOLDEN_CACHE` when an identical
    module (by printed-IR fingerprint), entry point, args and cost model
    were already golden-run with a sufficient fuel budget; pass
    ``use_cache=False`` to force re-execution.  With a tracer, the cache
    consultation is recorded as a :class:`GoldenCacheLookup` event.
    """
    key = None
    if use_cache:
        key = GOLDEN_CACHE.key_for(
            campaign.module, campaign.func_name, campaign.args,
            campaign.cost_model,
        )
        cached = GOLDEN_CACHE.get(key, fuel=campaign.fuel)
        if tracer is not None:
            tracer.emit(GoldenCacheLookup(
                hit=cached is not None,
                instructions=cached.instructions if cached is not None else 0,
            ))
        if cached is not None:
            return cached
    golden_interp = Interpreter(
        campaign.module, cost_model=campaign.cost_model, fuel=campaign.fuel
    )
    golden = golden_interp.run(campaign.func_name, list(campaign.args))
    if golden.status is ExecutionStatus.HANG:
        raise FaultInjectionError(
            f"golden run of @{campaign.func_name} exhausted the campaign "
            f"fuel of {campaign.fuel} before completing — every faulted "
            f"trial would be classified HANG; raise Campaign.fuel above "
            f"the program's dynamic instruction count"
        )
    if not golden.ok:
        raise FaultInjectionError(
            f"golden run of @{campaign.func_name} failed: "
            f"{golden.status.value} ({golden.trap_reason})"
        )
    if golden.instructions == 0:
        raise FaultInjectionError("golden run executed no instructions")
    if key is not None:
        GOLDEN_CACHE.put(key, golden)
    return golden


def trial_fuel_for(campaign: Campaign, golden: ExecutionResult) -> int:
    """Per-trial instruction budget derived from the golden run.

    A fault can only lengthen a loop's trip count, not turn a terminating
    program into one that needs unbounded fuel to *detect* as hung.  Cap
    per-trial fuel at a generous multiple of the golden run so hang trials
    don't dominate campaign wall time.

    The campaign's own fuel must cover the golden run: a budget below the
    golden instruction count would classify every trial as HANG (the
    fault-free path itself cannot finish), which is a configuration error,
    not a measurement.
    """
    if golden.instructions > campaign.fuel:
        raise FaultInjectionError(
            f"campaign fuel {campaign.fuel} is below the golden run's "
            f"{golden.instructions} dynamic instructions — every trial "
            f"would hang; raise Campaign.fuel"
        )
    return min(campaign.fuel, golden.instructions * 50 + 2_000)


def make_injector(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_rng: np.random.Generator,
) -> RegisterFaultInjector | HeapFaultInjector:
    """Draw one trial's fault (uniform dynamic index) and build its injector."""
    index = int(trial_rng.integers(golden.instructions))
    spec = FaultSpec(target=campaign.target, dynamic_index=index)
    if campaign.target is FaultTarget.REGISTER:
        return RegisterFaultInjector(spec, seed=trial_rng)
    if campaign.target is FaultTarget.MEMORY:
        return HeapFaultInjector(spec, seed=trial_rng)
    raise FaultInjectionError(
        f"interpreter campaigns support REGISTER/MEMORY targets, "
        f"not {campaign.target}"
    )


def begin_campaign_span(
    tracer: Tracer,
    campaign: Campaign,
    seed: int | np.random.Generator | None,
) -> str:
    """Open the campaign's root span; returns its deterministic id.

    Called before :func:`emit_campaign_start` so the campaign lifecycle
    events themselves are attributed to the span.  The id is a pure
    function of the campaign identity and the integer seed (see
    :func:`repro.obs.spans.campaign_root`), so every execution mode —
    serial, parallel at any worker count, lockstep — derives the same
    root and emits the same span events.
    """
    root = campaign_root(
        campaign.module.name, campaign.func_name, seed, campaign.n_trials
    )
    tracer.emit(SpanStart(
        span=root,
        parent=ROOT,
        name="campaign",
        index=seed if isinstance(seed, int) else 0,
        detail=f"{campaign.module.name}:@{campaign.func_name}",
    ))
    return root


def end_campaign_span(
    tracer: Tracer, span_root: str, campaign: Campaign
) -> None:
    """Close the campaign's root span (after :func:`emit_campaign_end`)."""
    tracer.emit(SpanEnd(
        span=span_root, status="ok", count=campaign.n_trials
    ))


def begin_trial_span(tracer: Tracer, span_root: str, index: int) -> str:
    """Open trial ``index``'s span under the campaign root."""
    span = span_id(span_root, "trial", index)
    tracer.emit(SpanStart(
        span=span, parent=span_root, name="trial", index=index
    ))
    return span


def end_trial_span(
    tracer: Tracer, span: str, trial: TrialResult
) -> None:
    """Close a trial span with the classified outcome and cycle cost."""
    tracer.emit(SpanEnd(
        span=span, status=trial.outcome.value, cycles=trial.cycles
    ))


def emit_trial_events(
    tracer: Tracer,
    trial_index: int,
    trial: TrialResult,
    fired: bool = True,
) -> None:
    """Emit the injection + classification events of one finished trial.

    Shared by the serial loop, the supervisor, and the parallel workers
    so every execution mode produces the identical per-trial event
    sequence (the order-stable-merge invariant rests on this).
    """
    spec = trial.spec
    tracer.emit(Injection(
        trial=trial_index,
        target=spec.target.value,
        dynamic_index=spec.dynamic_index,
        location=spec.location,
        bit=spec.bit,
        fired=fired,
    ))
    tracer.emit(TrialEnd(
        trial=trial_index,
        outcome=trial.outcome.value,
        cycles=trial.cycles,
        rel_error=trial.rel_error,
    ))


def run_trial(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_fuel: int,
    trial_rng: np.random.Generator,
    code_cache: dict | None = None,
    tracer: Tracer | None = None,
    trial_index: int = 0,
    trace_blocks: bool = False,
    span_root: str = "",
) -> TrialResult:
    """Execute and classify one faulted trial.

    This is the single trial body shared by the serial loop, the parallel
    worker pool, and the ``workers=1`` fallback — byte-identical results
    across all of them follow from sharing this code and the per-trial
    forked generators.  A tracer adds trial start / injection / end
    events (and per-block transitions when ``trace_blocks``) without
    touching the trial's RNG stream.  With a ``span_root``, the trial's
    events are additionally bracketed by a deterministic trial span
    (id derived from root + index, never from any clock).
    """
    trace_hook = None
    trial_span = ""
    if tracer is not None:
        if span_root:
            trial_span = begin_trial_span(tracer, span_root, trial_index)
        tracer.emit(TrialStart(trial=trial_index))
        if trace_blocks:
            emit = tracer.emit

            def trace_hook(func: str, block: str) -> None:
                emit(BlockTransition(func=func, block=block))

    injector = make_injector(campaign, golden, trial_rng)
    interp = Interpreter(
        campaign.module,
        cost_model=campaign.cost_model,
        fuel=trial_fuel,
        step_hook=injector,
        code_cache=code_cache,
        trace_hook=trace_hook,
        # Both SEU injectors are pure no-ops before their drawn dynamic
        # index and after firing, so the interpreter may run batched
        # superblocks outside the live injection window.
        hook_index=injector.spec.dynamic_index,
    )
    result = interp.run(campaign.func_name, list(campaign.args))
    trial = classify_trial(campaign, golden, injector, result)
    if tracer is not None:
        emit_trial_events(tracer, trial_index, trial, fired=injector.fired)
        if trial_span:
            end_trial_span(tracer, trial_span, trial)
    return trial


def emit_lockstep_trial(
    tracer: Tracer,
    index: int,
    trial: TrialResult,
    fired: bool,
    block_trace: list[tuple[str, str]],
    span_root: str = "",
) -> None:
    """Re-emit one lockstep trial's events post-hoc, in per-trial order.

    The lockstep engines classify whole batches before any event can be
    emitted, then replay each trial's stream — start, block transitions,
    injection, classified end, bracketed by the trial span when a
    ``span_root`` is given — exactly as the per-trial loop would have.
    Shared by the serial lockstep campaign, the parallel in-process
    fallback and the traced worker chunks, so all three re-emission
    sites stay byte-identical by construction.
    """
    trial_span = ""
    if span_root:
        trial_span = begin_trial_span(tracer, span_root, index)
    tracer.emit(TrialStart(trial=index))
    for func_name, block_name in block_trace:
        tracer.emit(BlockTransition(func=func_name, block=block_name))
    emit_trial_events(tracer, index, trial, fired=fired)
    if trial_span:
        end_trial_span(tracer, trial_span, trial)


def classify_trial(
    campaign: Campaign,
    golden: ExecutionResult,
    injector: RegisterFaultInjector | HeapFaultInjector,
    result: ExecutionResult,
) -> TrialResult:
    """Build the :class:`TrialResult` of one finished faulted execution.

    Shared by :func:`run_trial` and the lockstep engine so every
    execution mode classifies identically.
    """
    outcome, rel_error = classify(
        result, golden.value, campaign.sdc_tolerance
    )
    if not injector.fired:
        # The fault never landed (e.g. MEMORY target but the program
        # allocated nothing).  Count it as benign: the particle missed.
        outcome, rel_error = FaultOutcome.BENIGN, 0.0
    return TrialResult(
        spec=injector.resolved or injector.spec,
        outcome=outcome,
        value=result.value,
        rel_error=rel_error,
        cycles=result.cycles,
    )


def emit_campaign_start(
    tracer: Tracer, campaign: Campaign, supervised: bool = False
) -> None:
    tracer.emit(CampaignStart(
        program=campaign.module.name,
        func=campaign.func_name,
        n_trials=campaign.n_trials,
        target=campaign.target.value,
        supervised=supervised,
    ))


def emit_campaign_end(
    tracer: Tracer,
    campaign: Campaign,
    golden: ExecutionResult,
    counts: OutcomeCounts,
) -> None:
    tracer.emit(CampaignEnd(
        program=campaign.module.name,
        func=campaign.func_name,
        counts=counts.as_dict(),
        golden_cycles=golden.cycles,
        golden_instructions=golden.instructions,
    ))


@dataclass
class TimelineCampaignResult:
    """A campaign whose trial count and timing came from a timeline.

    Attributes:
        result: the underlying classified campaign.
        arrivals: fault arrival times (mission seconds), one per trial,
            index-aligned with ``result.trials``.
        phases: the mission phase each arrival landed in (same order).
        window: the ``(t0, t1)`` mission window that was simulated.
        expected_trials: analytic expectation of the arrival count
            (``rate × ∫ multiplier dt``) — what the Poisson draw was
            aimed at.
    """

    result: CampaignResult
    arrivals: np.ndarray
    phases: list
    window: tuple[float, float]
    expected_trials: float

    def trials_in_phase(self, phase) -> list[TrialResult]:
        """The trial records whose arrivals landed in ``phase``."""
        return [
            trial
            for trial, p in zip(self.result.trials, self.phases)
            if p is phase
        ]


def sample_trial_arrivals(
    timeline,
    t0: float,
    t1: float,
    arrival_rate_per_s: float,
    rng: np.random.Generator,
    subsystem: str = "register",
) -> np.ndarray:
    """Draw one campaign's fault arrival times from a timeline.

    Thin wrapper over :func:`repro.radiation.schedule.sample_arrivals`
    (non-homogeneous Poisson thinning) kept here so both the serial and
    parallel engines draw arrivals through the same entry point — the
    draw happens once, in the parent, *before* per-trial generators are
    forked, which is what keeps serial and parallel timeline campaigns
    byte-identical.
    """
    from repro.radiation.schedule import sample_arrivals

    return sample_arrivals(
        timeline, t0, t1, arrival_rate_per_s, rng, subsystem
    )


def run_timeline_campaign(
    campaign: Campaign,
    timeline,
    t0: float,
    t1: float,
    arrival_rate_per_s: float,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
    subsystem: str = "register",
) -> TimelineCampaignResult:
    """Run a campaign whose faults arrive per an environment timeline.

    Instead of a flat ``campaign.n_trials``, the trial count and times
    come from non-homogeneous Poisson thinning of the timeline's
    ``subsystem`` multiplier over ``[t0, t1)``: SAA passes and solar
    particle events concentrate trials exactly where the environment
    concentrates upsets.  The arrival draw consumes the master generator
    first; the per-trial generators are then forked from the same
    generator exactly as in :func:`run_campaign`, so for a fixed seed the
    result is byte-identical at any worker count (the property the
    E16 gate asserts).
    """
    rng = make_rng(seed)
    arrivals = sample_trial_arrivals(
        timeline, t0, t1, arrival_rate_per_s, rng, subsystem
    )
    expected = timeline.expected_events(arrival_rate_per_s, t0, t1, subsystem)
    timed = replace(campaign, n_trials=len(arrivals))
    result = run_campaign(
        timed, seed=rng, workers=workers, tracer=tracer,
        trace_blocks=trace_blocks, trace_spans=trace_spans,
    )
    phases = [timeline.phase_at(float(t)) for t in arrivals]
    return TimelineCampaignResult(
        result=result,
        arrivals=arrivals,
        phases=phases,
        window=(t0, t1),
        expected_trials=expected,
    )


def run_campaign(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
) -> CampaignResult:
    """Execute ``campaign`` and classify every trial.

    With ``workers`` > 1, trials fan out across a process pool (see
    :func:`repro.faults.parallel.run_campaign_parallel`); the result is
    byte-identical to the serial loop for the same seed, traced or not.
    A ``tracer`` receives the structured event stream (campaign bounds,
    cache lookups, per-trial start / injection / end; per-block
    transitions when ``trace_blocks``); parallel runs merge their
    workers' per-trial events back in trial order so the traced stream is
    identical at every worker count.  ``trace_spans`` additionally
    brackets the campaign and every trial with deterministic causal
    spans (:mod:`repro.obs.spans`) — still byte-identical across modes,
    because span ids derive from seed + index, never from a clock.
    """
    if workers is not None and workers > 1:
        from repro.faults.parallel import run_campaign_parallel

        return run_campaign_parallel(
            campaign, seed=seed, workers=workers, tracer=tracer,
            trace_blocks=trace_blocks, trace_spans=trace_spans,
        )
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign)
    golden = run_golden(campaign, tracer=tracer)
    trial_fuel = trial_fuel_for(campaign, golden)

    counts = OutcomeCounts()
    trials: list[TrialResult] = []
    code_cache: dict = {}
    for index, trial_rng in enumerate(fork(rng, campaign.n_trials)):
        trial = run_trial(
            campaign, golden, trial_fuel, trial_rng, code_cache,
            tracer=tracer, trial_index=index, trace_blocks=trace_blocks,
            span_root=span_root,
        )
        counts.record(trial.outcome)
        trials.append(trial)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return CampaignResult(golden=golden, counts=counts, trials=trials)
