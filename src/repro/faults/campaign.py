"""Fault-injection campaigns: many randomized trials, classified outcomes.

A campaign fixes a program and its inputs, takes one golden (fault-free)
run, then repeatedly re-executes with a single random SEU — uniform over
dynamic instruction index, live register (or heap cell) and bit — and
classifies each outcome.  This reproduces the methodology of the paper's
QEMU experiments at the granularity it argues is sufficient: faults between
instructions (sect. 4.2).

Performance plumbing (the ROADMAP's "as fast as the hardware allows"):

* golden runs are served from the process-global
  :data:`repro.perf.cache.GOLDEN_CACHE`, keyed by a content fingerprint of
  the printed IR, so sweeps over the same module + args derive the
  reference run once;
* every trial of a campaign shares one compiled-block ``code_cache``, so
  the interpreter lowers each basic block once per campaign instead of
  once per trial;
* ``run_campaign(c, seed, workers=n)`` fans trials out across a process
  pool via :func:`repro.faults.parallel.run_campaign_parallel`, with
  results byte-identical to the serial loop at any worker count.

Observability (``tracer=``): every stage emits typed events — campaign
start/end, golden-cache hit/miss, trial start, resolved injection site +
bit, classified trial end, optionally per-block transitions — through a
:class:`repro.obs.events.Tracer`.  Tracing only observes: it never draws
from an RNG or mutates engine state, so traced results are byte-identical
to untraced ones, and with ``tracer=None`` the cost is one pointer test
per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.model import FaultSpec, FaultTarget
from repro.faults.outcomes import FaultOutcome, OutcomeCounts, TrialResult, classify
from repro.faults.seu import HeapFaultInjector, RegisterFaultInjector, _value_types
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.interp import ExecutionResult, ExecutionStatus, Interpreter
from repro.ir.module import Module
from repro.ir.types import F64, INT64, injectable_width
from repro.obs.events import (
    BlockTransition,
    CampaignEnd,
    CampaignStart,
    GoldenCacheLookup,
    Injection,
    Tracer,
    TrialEnd,
    TrialStart,
)
from repro.obs.spans import ROOT, SpanEnd, SpanStart, campaign_root, span_id
from repro.perf.cache import GOLDEN_CACHE
from repro.rng import fork, make_rng


@dataclass
class Campaign:
    """Configuration of one fault-injection campaign.

    Attributes:
        module: module containing the program (possibly instrumented).
        func_name: entry function.
        args: arguments passed on every run.
        n_trials: number of injected faults.
        target: REGISTER or MEMORY faults.
        sdc_tolerance: relative output error treated as benign.
        fuel: instruction budget per run (hang detection).
        cost_model: cycle cost model used for overhead accounting.
    """

    module: Module
    func_name: str
    args: tuple[int | float, ...]
    n_trials: int = 200
    target: FaultTarget = FaultTarget.REGISTER
    sdc_tolerance: float = 0.0
    fuel: int = 2_000_000
    cost_model: CostModel = CORTEX_A53


@dataclass
class CampaignResult:
    """Outcome of a campaign.

    Attributes:
        golden: the fault-free reference run.
        counts: aggregated outcome tallies.
        trials: per-trial records.
        mean_faulty_cycles: average cycles across faulted runs.
    """

    golden: ExecutionResult
    counts: OutcomeCounts
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def mean_faulty_cycles(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.cycles for t in self.trials]))


def rank_sites(campaign: Campaign) -> list[str]:
    """Register injection sites of ``campaign``, most vulnerable first.

    Bridges the static analyses into the injection engine: sites are the
    SSA value names :class:`repro.faults.seu.RegisterFaultInjector`
    resolves ``FaultSpec.location`` against, ordered by the ACE-style
    score of :func:`repro.analysis.vulnerability.analyze_function`.  Use
    it to spend a trial budget where flips are predicted to hurt most
    (targeted campaigns) instead of uniformly; E14 validates the ordering
    against empirical per-site harm.

    Imported lazily so the injection engine keeps working without the
    analysis package (e.g. in stripped-down deployments).
    """
    from repro.analysis.vulnerability import analyze_function

    func = campaign.module.function(campaign.func_name)
    report = analyze_function(func, campaign.cost_model)
    return [site.name for site in report.ranked()]


def run_golden(
    campaign: Campaign,
    use_cache: bool = True,
    tracer: Tracer | None = None,
) -> ExecutionResult:
    """The campaign's fault-free reference run (validated).

    Served from :data:`repro.perf.cache.GOLDEN_CACHE` when an identical
    module (by printed-IR fingerprint), entry point, args and cost model
    were already golden-run with a sufficient fuel budget; pass
    ``use_cache=False`` to force re-execution.  With a tracer, the cache
    consultation is recorded as a :class:`GoldenCacheLookup` event.
    """
    key = None
    if use_cache:
        key = GOLDEN_CACHE.key_for(
            campaign.module, campaign.func_name, campaign.args,
            campaign.cost_model,
        )
        cached = GOLDEN_CACHE.get(key, fuel=campaign.fuel)
        if tracer is not None:
            tracer.emit(GoldenCacheLookup(
                hit=cached is not None,
                instructions=cached.instructions if cached is not None else 0,
            ))
        if cached is not None:
            return cached
    golden_interp = Interpreter(
        campaign.module, cost_model=campaign.cost_model, fuel=campaign.fuel
    )
    golden = golden_interp.run(campaign.func_name, list(campaign.args))
    if golden.status is ExecutionStatus.HANG:
        raise FaultInjectionError(
            f"golden run of @{campaign.func_name} exhausted the campaign "
            f"fuel of {campaign.fuel} before completing — every faulted "
            f"trial would be classified HANG; raise Campaign.fuel above "
            f"the program's dynamic instruction count"
        )
    if not golden.ok:
        raise FaultInjectionError(
            f"golden run of @{campaign.func_name} failed: "
            f"{golden.status.value} ({golden.trap_reason})"
        )
    if golden.instructions == 0:
        raise FaultInjectionError("golden run executed no instructions")
    if key is not None:
        GOLDEN_CACHE.put(key, golden)
    return golden


def trial_fuel_for(campaign: Campaign, golden: ExecutionResult) -> int:
    """Per-trial instruction budget derived from the golden run.

    A fault can only lengthen a loop's trip count, not turn a terminating
    program into one that needs unbounded fuel to *detect* as hung.  Cap
    per-trial fuel at a generous multiple of the golden run so hang trials
    don't dominate campaign wall time.

    The campaign's own fuel must cover the golden run: a budget below the
    golden instruction count would classify every trial as HANG (the
    fault-free path itself cannot finish), which is a configuration error,
    not a measurement.
    """
    if golden.instructions > campaign.fuel:
        raise FaultInjectionError(
            f"campaign fuel {campaign.fuel} is below the golden run's "
            f"{golden.instructions} dynamic instructions — every trial "
            f"would hang; raise Campaign.fuel"
        )
    return min(campaign.fuel, golden.instructions * 50 + 2_000)


def make_injector(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_rng: np.random.Generator,
) -> RegisterFaultInjector | HeapFaultInjector:
    """Draw one trial's fault (uniform dynamic index) and build its injector."""
    index = int(trial_rng.integers(golden.instructions))
    spec = FaultSpec(target=campaign.target, dynamic_index=index)
    if campaign.target is FaultTarget.REGISTER:
        return RegisterFaultInjector(spec, seed=trial_rng)
    if campaign.target is FaultTarget.MEMORY:
        return HeapFaultInjector(spec, seed=trial_rng)
    raise FaultInjectionError(
        f"interpreter campaigns support REGISTER/MEMORY targets, "
        f"not {campaign.target}"
    )


def begin_campaign_span(
    tracer: Tracer,
    campaign: Campaign,
    seed: int | np.random.Generator | None,
) -> str:
    """Open the campaign's root span; returns its deterministic id.

    Called before :func:`emit_campaign_start` so the campaign lifecycle
    events themselves are attributed to the span.  The id is a pure
    function of the campaign identity and the integer seed (see
    :func:`repro.obs.spans.campaign_root`), so every execution mode —
    serial, parallel at any worker count, lockstep — derives the same
    root and emits the same span events.
    """
    root = campaign_root(
        campaign.module.name, campaign.func_name, seed, campaign.n_trials
    )
    tracer.emit(SpanStart(
        span=root,
        parent=ROOT,
        name="campaign",
        index=seed if isinstance(seed, int) else 0,
        detail=f"{campaign.module.name}:@{campaign.func_name}",
    ))
    return root


def end_campaign_span(
    tracer: Tracer, span_root: str, campaign: Campaign
) -> None:
    """Close the campaign's root span (after :func:`emit_campaign_end`)."""
    tracer.emit(SpanEnd(
        span=span_root, status="ok", count=campaign.n_trials
    ))


def begin_trial_span(tracer: Tracer, span_root: str, index: int) -> str:
    """Open trial ``index``'s span under the campaign root."""
    span = span_id(span_root, "trial", index)
    tracer.emit(SpanStart(
        span=span, parent=span_root, name="trial", index=index
    ))
    return span


def end_trial_span(
    tracer: Tracer, span: str, trial: TrialResult
) -> None:
    """Close a trial span with the classified outcome and cycle cost."""
    tracer.emit(SpanEnd(
        span=span, status=trial.outcome.value, cycles=trial.cycles
    ))


def emit_trial_events(
    tracer: Tracer,
    trial_index: int,
    trial: TrialResult,
    fired: bool = True,
    pruned: bool = False,
) -> None:
    """Emit the injection + classification events of one finished trial.

    Shared by the serial loop, the supervisor, and the parallel workers
    so every execution mode produces the identical per-trial event
    sequence (the order-stable-merge invariant rests on this).
    """
    spec = trial.spec
    tracer.emit(Injection(
        trial=trial_index,
        target=spec.target.value,
        dynamic_index=spec.dynamic_index,
        location=spec.location,
        bit=spec.bit,
        fired=fired,
        pruned=pruned,
    ))
    tracer.emit(TrialEnd(
        trial=trial_index,
        outcome=trial.outcome.value,
        cycles=trial.cycles,
        rel_error=trial.rel_error,
    ))


def run_trial(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_fuel: int,
    trial_rng: np.random.Generator | None,
    code_cache: dict | None = None,
    tracer: Tracer | None = None,
    trial_index: int = 0,
    trace_blocks: bool = False,
    span_root: str = "",
    injector: RegisterFaultInjector | HeapFaultInjector | None = None,
) -> TrialResult:
    """Execute and classify one faulted trial.

    This is the single trial body shared by the serial loop, the parallel
    worker pool, and the ``workers=1`` fallback — byte-identical results
    across all of them follow from sharing this code and the per-trial
    forked generators.  A tracer adds trial start / injection / end
    events (and per-block transitions when ``trace_blocks``) without
    touching the trial's RNG stream.  With a ``span_root``, the trial's
    events are additionally bracketed by a deterministic trial span
    (id derived from root + index, never from any clock).

    Pruned campaigns pass a pre-built ``injector`` whose spec is fully
    resolved (location and bit fixed by the planning replay); the trial
    then draws nothing and ``trial_rng`` may be None.
    """
    trace_hook = None
    trial_span = ""
    if tracer is not None:
        if span_root:
            trial_span = begin_trial_span(tracer, span_root, trial_index)
        tracer.emit(TrialStart(trial=trial_index))
        if trace_blocks:
            emit = tracer.emit

            def trace_hook(func: str, block: str) -> None:
                emit(BlockTransition(func=func, block=block))

    if injector is None:
        injector = make_injector(campaign, golden, trial_rng)
    interp = Interpreter(
        campaign.module,
        cost_model=campaign.cost_model,
        fuel=trial_fuel,
        step_hook=injector,
        code_cache=code_cache,
        trace_hook=trace_hook,
        # Both SEU injectors are pure no-ops before their drawn dynamic
        # index and after firing, so the interpreter may run batched
        # superblocks outside the live injection window.
        hook_index=injector.spec.dynamic_index,
    )
    result = interp.run(campaign.func_name, list(campaign.args))
    trial = classify_trial(campaign, golden, injector, result)
    if tracer is not None:
        emit_trial_events(tracer, trial_index, trial, fired=injector.fired)
        if trial_span:
            end_trial_span(tracer, trial_span, trial)
    return trial


def emit_lockstep_trial(
    tracer: Tracer,
    index: int,
    trial: TrialResult,
    fired: bool,
    block_trace: list[tuple[str, str]],
    span_root: str = "",
) -> None:
    """Re-emit one lockstep trial's events post-hoc, in per-trial order.

    The lockstep engines classify whole batches before any event can be
    emitted, then replay each trial's stream — start, block transitions,
    injection, classified end, bracketed by the trial span when a
    ``span_root`` is given — exactly as the per-trial loop would have.
    Shared by the serial lockstep campaign, the parallel in-process
    fallback and the traced worker chunks, so all three re-emission
    sites stay byte-identical by construction.
    """
    trial_span = ""
    if span_root:
        trial_span = begin_trial_span(tracer, span_root, index)
    tracer.emit(TrialStart(trial=index))
    for func_name, block_name in block_trace:
        tracer.emit(BlockTransition(func=func_name, block=block_name))
    emit_trial_events(tracer, index, trial, fired=fired)
    if trial_span:
        end_trial_span(tracer, trial_span, trial)


def classify_trial(
    campaign: Campaign,
    golden: ExecutionResult,
    injector: RegisterFaultInjector | HeapFaultInjector,
    result: ExecutionResult,
) -> TrialResult:
    """Build the :class:`TrialResult` of one finished faulted execution.

    Shared by :func:`run_trial` and the lockstep engine so every
    execution mode classifies identically.
    """
    outcome, rel_error = classify(
        result, golden.value, campaign.sdc_tolerance
    )
    if not injector.fired:
        # The fault never landed (e.g. MEMORY target but the program
        # allocated nothing).  Count it as benign: the particle missed.
        outcome, rel_error = FaultOutcome.BENIGN, 0.0
    return TrialResult(
        spec=injector.resolved or injector.spec,
        outcome=outcome,
        value=result.value,
        rel_error=rel_error,
        cycles=result.cycles,
    )


def emit_campaign_start(
    tracer: Tracer, campaign: Campaign, supervised: bool = False
) -> None:
    tracer.emit(CampaignStart(
        program=campaign.module.name,
        func=campaign.func_name,
        n_trials=campaign.n_trials,
        target=campaign.target.value,
        supervised=supervised,
    ))


def emit_campaign_end(
    tracer: Tracer,
    campaign: Campaign,
    golden: ExecutionResult,
    counts: OutcomeCounts,
) -> None:
    tracer.emit(CampaignEnd(
        program=campaign.module.name,
        func=campaign.func_name,
        counts=counts.as_dict(),
        golden_cycles=golden.cycles,
        golden_instructions=golden.instructions,
    ))


@dataclass
class TimelineCampaignResult:
    """A campaign whose trial count and timing came from a timeline.

    Attributes:
        result: the underlying classified campaign.
        arrivals: fault arrival times (mission seconds), one per trial,
            index-aligned with ``result.trials``.
        phases: the mission phase each arrival landed in (same order).
        window: the ``(t0, t1)`` mission window that was simulated.
        expected_trials: analytic expectation of the arrival count
            (``rate × ∫ multiplier dt``) — what the Poisson draw was
            aimed at.
    """

    result: CampaignResult
    arrivals: np.ndarray
    phases: list
    window: tuple[float, float]
    expected_trials: float

    def trials_in_phase(self, phase) -> list[TrialResult]:
        """The trial records whose arrivals landed in ``phase``."""
        return [
            trial
            for trial, p in zip(self.result.trials, self.phases)
            if p is phase
        ]


def sample_trial_arrivals(
    timeline,
    t0: float,
    t1: float,
    arrival_rate_per_s: float,
    rng: np.random.Generator,
    subsystem: str = "register",
) -> np.ndarray:
    """Draw one campaign's fault arrival times from a timeline.

    Thin wrapper over :func:`repro.radiation.schedule.sample_arrivals`
    (non-homogeneous Poisson thinning) kept here so both the serial and
    parallel engines draw arrivals through the same entry point — the
    draw happens once, in the parent, *before* per-trial generators are
    forked, which is what keeps serial and parallel timeline campaigns
    byte-identical.
    """
    from repro.radiation.schedule import sample_arrivals

    return sample_arrivals(
        timeline, t0, t1, arrival_rate_per_s, rng, subsystem
    )


def run_timeline_campaign(
    campaign: Campaign,
    timeline,
    t0: float,
    t1: float,
    arrival_rate_per_s: float,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
    subsystem: str = "register",
) -> TimelineCampaignResult:
    """Run a campaign whose faults arrive per an environment timeline.

    Instead of a flat ``campaign.n_trials``, the trial count and times
    come from non-homogeneous Poisson thinning of the timeline's
    ``subsystem`` multiplier over ``[t0, t1)``: SAA passes and solar
    particle events concentrate trials exactly where the environment
    concentrates upsets.  The arrival draw consumes the master generator
    first; the per-trial generators are then forked from the same
    generator exactly as in :func:`run_campaign`, so for a fixed seed the
    result is byte-identical at any worker count (the property the
    E16 gate asserts).
    """
    rng = make_rng(seed)
    arrivals = sample_trial_arrivals(
        timeline, t0, t1, arrival_rate_per_s, rng, subsystem
    )
    expected = timeline.expected_events(arrival_rate_per_s, t0, t1, subsystem)
    timed = replace(campaign, n_trials=len(arrivals))
    result = run_campaign(
        timed, seed=rng, workers=workers, tracer=tracer,
        trace_blocks=trace_blocks, trace_spans=trace_spans,
    )
    phases = [timeline.phase_at(float(t)) for t in arrivals]
    return TimelineCampaignResult(
        result=result,
        arrivals=arrivals,
        phases=phases,
        window=(t0, t1),
        expected_trials=expected,
    )


def run_campaign(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
) -> CampaignResult:
    """Execute ``campaign`` and classify every trial.

    With ``workers`` > 1, trials fan out across a process pool (see
    :func:`repro.faults.parallel.run_campaign_parallel`); the result is
    byte-identical to the serial loop for the same seed, traced or not.
    A ``tracer`` receives the structured event stream (campaign bounds,
    cache lookups, per-trial start / injection / end; per-block
    transitions when ``trace_blocks``); parallel runs merge their
    workers' per-trial events back in trial order so the traced stream is
    identical at every worker count.  ``trace_spans`` additionally
    brackets the campaign and every trial with deterministic causal
    spans (:mod:`repro.obs.spans`) — still byte-identical across modes,
    because span ids derive from seed + index, never from a clock.
    """
    if workers is not None and workers > 1:
        from repro.faults.parallel import run_campaign_parallel

        return run_campaign_parallel(
            campaign, seed=seed, workers=workers, tracer=tracer,
            trace_blocks=trace_blocks, trace_spans=trace_spans,
        )
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign)
    golden = run_golden(campaign, tracer=tracer)
    trial_fuel = trial_fuel_for(campaign, golden)

    counts = OutcomeCounts()
    trials: list[TrialResult] = []
    code_cache: dict = {}
    for index, trial_rng in enumerate(fork(rng, campaign.n_trials)):
        trial = run_trial(
            campaign, golden, trial_fuel, trial_rng, code_cache,
            tracer=tracer, trial_index=index, trace_blocks=trace_blocks,
            span_root=span_root,
        )
        counts.record(trial.outcome)
        trials.append(trial)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return CampaignResult(golden=golden, counts=counts, trials=trials)


# -- provably-benign trial pruning ---------------------------------------------
#
# A pruned campaign resolves every trial's fault (site, bit, firing point)
# with a single replay of the golden run, asks the masking analysis
# (repro.analysis.masking) which faults are EXACT_BENIGN — provably
# reproducing the golden run bit for bit — and reconstructs those trial
# records instead of executing them.  Only the prunable subset is skipped:
# CHECK_MASKED faults are proven benign-or-detected, but which of the two
# depends on dynamic values, so they still run.


@dataclass(frozen=True)
class PlannedTrial:
    """One trial of a pruned campaign, fully resolved before execution.

    Attributes:
        spec: the resolved fault (dynamic index = firing point, location
            and bit fixed) — or the unresolved request when the fault
            never fired.
        fired: whether the fault lands at all.
        func: function executing at the firing point ("" when unfired).
        block: basic block of the firing point.
        body_index: index into ``block.body`` of the instruction the hook
            fired before (-1 when unfired).
        mask_class: the masking analysis verdict
            (:class:`repro.analysis.masking.MaskClass`; None when unfired).
        pruned: True when the trial record can be reconstructed without
            execution (EXACT_BENIGN verdict, or the fault never fired).
    """

    spec: FaultSpec
    fired: bool
    func: str
    block: str
    body_index: int
    mask_class: "MaskClass | None"  # noqa: F821 - analysis import is lazy
    pruned: bool


@dataclass
class PrunedTrials:
    """The execution plan of a pruned campaign.

    Attributes:
        golden: the fault-free reference run.
        report: the masking analysis that justified each pruning verdict.
        trials: one :class:`PlannedTrial` per campaign trial, index-aligned
            with the unpruned campaign's trial sequence.
    """

    golden: ExecutionResult
    report: "MaskingReport"  # noqa: F821 - analysis import is lazy
    trials: list[PlannedTrial]

    @property
    def n_pruned(self) -> int:
        return sum(1 for trial in self.trials if trial.pruned)

    @property
    def prune_rate(self) -> float:
        if not self.trials:
            return 0.0
        return self.n_pruned / len(self.trials)


class _TrialPlanner:
    """Step hook that resolves every trial's fault in one golden replay.

    Replicates :class:`repro.faults.seu.RegisterFaultInjector`'s draw
    sequence exactly — each trial's own forked generator draws the site
    name from the sorted live environment, then the bit from the site's
    injectable width, at the first hook call at or past its drawn dynamic
    index with a non-empty environment.  The planner only *reads* the
    frame; the replay stays fault-free, which is precisely why the
    environments it observes equal the ones each faulted trial's injector
    would have seen (the fault has not fired yet at its own firing point).
    """

    def __init__(
        self, module: Module, requests: list[tuple[int, np.random.Generator]]
    ) -> None:
        self.requests = requests
        #: per-trial (resolved spec, (func, block, body_index) | None);
        #: None while (or if never) resolved.
        self.resolutions: list[
            tuple[FaultSpec, tuple[str, str, int] | None] | None
        ] = [None] * len(requests)
        # Trials in drawn-index order; all trials whose index <= the
        # current dynamic index fire at the same hook call (each from its
        # own generator, so resolution order cannot perturb the draws).
        self._order = sorted(
            range(len(requests)), key=lambda i: requests[i][0]
        )
        self._next = 0
        self._points: dict[int, tuple[str, str, int]] = {}
        for func in module:
            for block in func.blocks:
                for body_index, instr in enumerate(block.body):
                    self._points[id(instr)] = (
                        func.name, block.name, body_index
                    )
        self._type_cache: dict[str, dict] = {}

    def __call__(self, interp, frame, instr, dynamic_index: int) -> None:
        if self._next >= len(self._order):
            return
        env = frame.env
        if not env:
            return  # injectors wait for live state; so does the planner
        if self.requests[self._order[self._next]][0] > dynamic_index:
            return
        names = sorted(env)
        types = self._type_cache.get(frame.func.name)
        if types is None:
            types = _value_types(frame.func)
            self._type_cache[frame.func.name] = types
        point = self._points.get(id(instr))
        while self._next < len(self._order):
            number = self._order[self._next]
            if self.requests[number][0] > dynamic_index:
                return
            rng = self.requests[number][1]
            name = names[int(rng.integers(len(names)))]
            type_ = types.get(
                name, F64 if isinstance(env[name], float) else None
            )
            if type_ is None:
                type_ = INT64
            bit = int(rng.integers(injectable_width(type_)))
            spec = FaultSpec(
                target=FaultTarget.REGISTER,
                dynamic_index=dynamic_index,
                location=name,
                bit=bit,
            )
            self.resolutions[number] = (spec, point)
            self._next += 1


def prune_masked_trials(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    report: "MaskingReport | None" = None,  # noqa: F821
) -> PrunedTrials:
    """Plan a pruned campaign: resolve every trial, classify, mark prunable.

    Consumes the campaign RNG exactly as :func:`run_campaign` would (fork
    per trial, then the injector's index/site/bit draws), so the resolved
    specs equal the ones the unpruned campaign's injectors would resolve.
    Faults classified EXACT_BENIGN by the masking analysis — plus faults
    that never fire — are marked ``pruned``; the rest must execute.

    Register campaigns only: heap faults have no masking analysis.
    """
    from repro.analysis.masking import EXACT_BENIGN, MaskClass, analyze_masking

    if campaign.target is not FaultTarget.REGISTER:
        raise FaultInjectionError(
            f"trial pruning requires a REGISTER campaign, got "
            f"{campaign.target.value} — the masking analysis proves "
            f"register faults benign, not heap faults"
        )
    golden = run_golden(campaign)
    rng = make_rng(seed)
    requests: list[tuple[int, np.random.Generator]] = []
    for trial_rng in fork(rng, campaign.n_trials):
        index = int(trial_rng.integers(golden.instructions))
        requests.append((index, trial_rng))

    planner = _TrialPlanner(campaign.module, requests)
    replay = Interpreter(
        campaign.module,
        cost_model=campaign.cost_model,
        fuel=campaign.fuel,
        step_hook=planner,
        # hook_index=None keeps the interpreter on the per-instruction
        # path so the planner observes every firing opportunity.
        hook_index=None,
    ).run(campaign.func_name, list(campaign.args))
    if not replay.ok or replay.instructions != golden.instructions:
        raise FaultInjectionError(
            f"pruning replay of @{campaign.func_name} diverged from the "
            f"golden run ({replay.status.value}, "
            f"{replay.instructions} != {golden.instructions} instructions)"
        )

    if report is None:
        report = analyze_masking(campaign.module)

    trials: list[PlannedTrial] = []
    for number, (index, _rng) in enumerate(requests):
        resolution = planner.resolutions[number]
        if resolution is None:
            # The fault never fired: the trial re-runs the golden path
            # untouched and classifies BENIGN — reconstructible exactly.
            trials.append(PlannedTrial(
                spec=FaultSpec(
                    target=campaign.target, dynamic_index=index
                ),
                fired=False, func="", block="", body_index=-1,
                mask_class=None, pruned=True,
            ))
            continue
        spec, point = resolution
        if point is None:  # pragma: no cover - hook always passes body instrs
            trials.append(PlannedTrial(
                spec=spec, fired=True, func="", block="", body_index=-1,
                mask_class=MaskClass.POSSIBLY_ACE, pruned=False,
            ))
            continue
        func_name, block, body_index = point
        masking = report.for_function(func_name)
        mask_class = (
            masking.classify(block, body_index, str(spec.location), spec.bit)
            if masking is not None else MaskClass.POSSIBLY_ACE
        )
        trials.append(PlannedTrial(
            spec=spec, fired=True, func=func_name, block=block,
            body_index=body_index, mask_class=mask_class,
            pruned=mask_class in EXACT_BENIGN,
        ))
    return PrunedTrials(golden=golden, report=report, trials=trials)


def reconstruct_pruned_trial(
    golden: ExecutionResult, planned: PlannedTrial
) -> TrialResult:
    """The exact :class:`TrialResult` a pruned trial would have produced.

    Sound because EXACT_BENIGN faults (and faults that never fire) leave
    execution bit-identical to the golden run: same return value, same
    cycle count, relative error zero.
    """
    return TrialResult(
        spec=planned.spec,
        outcome=FaultOutcome.BENIGN,
        value=golden.value,
        rel_error=0.0,
        cycles=golden.cycles,
    )


def emit_pruned_trial(
    tracer: Tracer,
    index: int,
    trial: TrialResult,
    planned: PlannedTrial,
    span_root: str = "",
) -> None:
    """Emit a reconstructed trial's event stream (injection flagged pruned)."""
    trial_span = ""
    if span_root:
        trial_span = begin_trial_span(tracer, span_root, index)
    tracer.emit(TrialStart(trial=index))
    emit_trial_events(
        tracer, index, trial, fired=planned.fired, pruned=True
    )
    if trial_span:
        end_trial_span(tracer, trial_span, trial)


def run_campaign_pruned(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    lockstep: bool = False,
    lockstep_batch: int = 32,
    plan: PrunedTrials | None = None,
    report: "MaskingReport | None" = None,  # noqa: F821
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
) -> CampaignResult:
    """Execute ``campaign``, skipping statically-proven-benign trials.

    Produces the exact ``CampaignResult`` of ``run_campaign(campaign,
    seed)`` — byte-identical trial records and outcome counts — while
    only executing the trials the masking analysis could not prove
    EXACT_BENIGN.  Pruned trial records are reconstructed from the golden
    run; executed trials run with pre-resolved injectors (same site, bit
    and firing point the unpruned campaign would draw).  ``workers > 1``
    fans the executed subset across the warm pool; ``lockstep=True`` runs
    it through the batched lockstep engine — both still byte-identical.

    Pass a precomputed ``plan`` (from :func:`prune_masked_trials`) to
    amortize planning across repeat campaigns, or a ``report`` to reuse
    one module's masking analysis.
    """
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    if plan is None:
        plan = prune_masked_trials(campaign, seed, report=report)
    if tracer is not None:
        emit_campaign_start(tracer, campaign)
    golden = run_golden(campaign, tracer=tracer)
    trial_fuel = trial_fuel_for(campaign, golden)

    trials: list[TrialResult] | None = None
    if workers is not None and workers > 1:
        from repro.faults.parallel import planned_trials_parallel

        trials = planned_trials_parallel(
            campaign, golden, plan, workers,
            lockstep=lockstep, lockstep_batch=lockstep_batch,
            tracer=tracer, trace_blocks=trace_blocks, span_root=span_root,
        )
    if trials is None:
        code_cache: dict = {}
        trials = []
        if lockstep:
            from repro.faults.lockstep import run_planned_lockstep_trials

            indexed = [
                (i, p.spec) for i, p in enumerate(plan.trials)
                if not p.pruned
            ]
            rows = iter(run_planned_lockstep_trials(
                campaign, golden, trial_fuel, indexed, code_cache,
                batch=lockstep_batch,
                record_trace=tracer is not None and trace_blocks,
            ))
            for index, planned in enumerate(plan.trials):
                if planned.pruned:
                    trial = reconstruct_pruned_trial(golden, planned)
                    if tracer is not None:
                        emit_pruned_trial(
                            tracer, index, trial, planned,
                            span_root=span_root,
                        )
                else:
                    trial, fired, block_trace = next(rows)
                    if tracer is not None:
                        emit_lockstep_trial(
                            tracer, index, trial, fired, block_trace,
                            span_root=span_root,
                        )
                trials.append(trial)
        else:
            for index, planned in enumerate(plan.trials):
                if planned.pruned:
                    trial = reconstruct_pruned_trial(golden, planned)
                    if tracer is not None:
                        emit_pruned_trial(
                            tracer, index, trial, planned,
                            span_root=span_root,
                        )
                else:
                    trial = run_trial(
                        campaign, golden, trial_fuel, None, code_cache,
                        tracer=tracer, trial_index=index,
                        trace_blocks=trace_blocks, span_root=span_root,
                        injector=RegisterFaultInjector(planned.spec),
                    )
                trials.append(trial)

    counts = OutcomeCounts()
    for trial in trials:
        counts.record(trial.outcome)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return CampaignResult(golden=golden, counts=counts, trials=trials)
