"""Outcome classification for fault-injection trials.

Mirrors the taxonomy the paper uses for SEU effects: "crashes, hangs, and
silent data corruption" (sect. 4), plus *benign* (the flip was masked) and
*detected* (a protection pass's trap fired before the corruption escaped).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.faults.model import FaultSpec, relative_error
from repro.ir.interp import ExecutionResult, ExecutionStatus


class FaultOutcome(enum.Enum):
    """What a single injected fault did to the program."""

    BENIGN = "benign"        # output identical to golden
    SDC = "sdc"              # silent data corruption: wrong output, no signal
    CRASH = "crash"          # trap (bad address, division by zero, ...)
    HANG = "hang"            # instruction budget exhausted
    DETECTED = "detected"    # protection instrumentation trapped


@dataclass(frozen=True)
class TrialResult:
    """One fault-injection trial.

    Attributes:
        spec: the injected fault (fully resolved: location and bit chosen).
        outcome: classification against the golden run.
        value: the corrupted run's return value (None on crash/hang).
        rel_error: relative output error for numeric SDC (0 for benign).
        cycles: cycles consumed by the corrupted run.
        recovery_latency_s: failure-to-recovery wall time charged by the
            supervisor (0 for unsupervised or non-failing trials).
        attempt_latencies_s: per-ladder-attempt latency, in attempt order.
        backoff_charged_s: backoff seconds included in the latency.
    """

    spec: FaultSpec
    outcome: FaultOutcome
    value: int | float | None
    rel_error: float
    cycles: int
    recovery_latency_s: float = 0.0
    attempt_latencies_s: tuple[float, ...] = ()
    backoff_charged_s: float = 0.0


def classify(
    result: ExecutionResult,
    golden_value: int | float | None,
    sdc_tolerance: float = 0.0,
) -> tuple[FaultOutcome, float]:
    """Classify a faulted run against the golden output.

    ``sdc_tolerance`` implements the paper's "acceptable margin of error"
    tuning: numeric deviations with relative error at or below the tolerance
    count as benign.
    """
    if result.status is ExecutionStatus.DETECTED:
        return FaultOutcome.DETECTED, 0.0
    if result.status is ExecutionStatus.TRAP:
        return FaultOutcome.CRASH, 0.0
    if result.status is ExecutionStatus.HANG:
        return FaultOutcome.HANG, 0.0
    if result.value == golden_value:
        return FaultOutcome.BENIGN, 0.0
    if isinstance(result.value, float) and isinstance(golden_value, float):
        if math.isnan(result.value) and math.isnan(golden_value):
            return FaultOutcome.BENIGN, 0.0
        err = relative_error(result.value, golden_value)
        if err <= sdc_tolerance:
            return FaultOutcome.BENIGN, err
        return FaultOutcome.SDC, err
    return FaultOutcome.SDC, float("inf")


@dataclass
class OutcomeCounts:
    """Aggregated outcome tallies for a campaign."""

    counts: dict[FaultOutcome, int] = field(
        default_factory=lambda: {o: 0 for o in FaultOutcome}
    )

    def record(self, outcome: FaultOutcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: FaultOutcome) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    @property
    def sdc_rate(self) -> float:
        """Fraction of trials ending in silent data corruption."""
        return self.fraction(FaultOutcome.SDC)

    @property
    def detection_rate(self) -> float:
        """Detected / (detected + sdc): how much harm the monitor caught.

        Crashes and hangs are externally observable (a supervisor can
        restart), so the quantity of interest is how many *silent*
        corruptions were converted into detections.
        """
        caught = self.counts[FaultOutcome.DETECTED]
        escaped = self.counts[FaultOutcome.SDC]
        if caught + escaped == 0:
            return 1.0
        return caught / (caught + escaped)

    def as_dict(self) -> dict[str, int]:
        return {o.value: n for o, n in self.counts.items()}

    def __str__(self) -> str:
        parts = [f"{o.value}={n}" for o, n in self.counts.items() if n]
        return f"OutcomeCounts({', '.join(parts) or 'empty'})"
