"""Lockstep fault-injection campaigns: batched trials, identical results.

:func:`run_campaign_lockstep` classifies the same trials as
:func:`repro.faults.campaign.run_campaign` — byte-identical for the same
seed — but advances a batch of trials together through the shared
compiled superblocks (:mod:`repro.ir.lockstep`) instead of running them
one after another.  Determinism rests on the same two pillars as the
parallel engine:

* **fork-before-batch**: the per-trial generators are forked from the
  campaign RNG with the exact spawn-key scheme of the serial loop, and
  each injector only ever draws from its own generator, so the
  interleaving of lane advances cannot perturb any trial's randomness;
* **per-lane isolation**: every lane owns its environment, heap and
  counters; lanes share only immutable compiled code.

Traced campaigns run the lanes with ``record_trace`` on and re-emit each
trial's events post-hoc in trial-index order (trial start, per-block
transitions rebuilt from the lane's ``block_trace`` when requested,
injection, classified end) — the identical stream the serial traced loop
produces, because the serial loop's events are per-trial contiguous too.

With ``workers > 1`` the batch fans out across the persistent warm pool
(:mod:`repro.faults.parallel`), each worker running its chunk in
lockstep — still byte-identical at every worker count.
"""

from __future__ import annotations

import numpy as np

from repro.faults.campaign import (
    Campaign,
    CampaignResult,
    begin_campaign_span,
    classify_trial,
    emit_campaign_end,
    emit_campaign_start,
    emit_lockstep_trial,
    end_campaign_span,
    make_injector,
    run_golden,
    trial_fuel_for,
)
from repro.faults.model import FaultSpec
from repro.faults.outcomes import OutcomeCounts, TrialResult
from repro.faults.seu import RegisterFaultInjector
from repro.ir.interp import ExecutionResult
from repro.ir.lockstep import run_lockstep, start_lane
from repro.obs.events import Tracer
from repro.rng import fork, make_rng

#: Lanes advanced together per batch.  Bounds peak memory (each lane holds
#: a live environment + heap) while keeping block groups well-populated.
DEFAULT_BATCH = 32


def run_lockstep_trials(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_fuel: int,
    trial_rngs: list[np.random.Generator],
    code_cache: dict,
    batch: int = DEFAULT_BATCH,
    record_trace: bool = False,
) -> list[tuple[TrialResult, bool, list[tuple[str, str]]]]:
    """Run ``trial_rngs``'s trials in lockstep batches.

    Returns ``(trial, fired, block_trace)`` per trial in index order —
    the trial record, whether its injector fired, and the executed-block
    trace (empty unless ``record_trace``).  Shared by the serial lockstep
    campaign and the parallel workers' lockstep chunks.
    """
    out: list[tuple[TrialResult, bool, list[tuple[str, str]]]] = []
    for lo in range(0, len(trial_rngs), batch):
        chunk = trial_rngs[lo:lo + batch]
        injectors = [make_injector(campaign, golden, rng) for rng in chunk]
        lanes = [
            start_lane(
                campaign.module,
                campaign.func_name,
                list(campaign.args),
                cost_model=campaign.cost_model,
                fuel=trial_fuel,
                step_hook=injector,
                hook_index=injector.spec.dynamic_index,
                code_cache=code_cache,
                record_trace=record_trace,
            )
            for injector in injectors
        ]
        for injector, result in zip(injectors, run_lockstep(lanes)):
            trial = classify_trial(campaign, golden, injector, result)
            out.append((trial, injector.fired, result.block_trace))
    return out


def run_planned_lockstep_trials(
    campaign: Campaign,
    golden: ExecutionResult,
    trial_fuel: int,
    planned: list[tuple[int, FaultSpec]],
    code_cache: dict,
    batch: int = DEFAULT_BATCH,
    record_trace: bool = False,
) -> list[tuple[TrialResult, bool, list[tuple[str, str]]]]:
    """Run a pruned campaign's executed trials in lockstep batches.

    ``planned`` carries ``(global_trial_index, resolved_spec)`` pairs —
    the non-pruned subset of a :class:`repro.faults.campaign.PrunedTrials`
    plan.  Each lane's injector is built from its fully resolved spec
    (location and bit fixed by the planning replay), so no generator is
    consumed and results equal the per-trial pruned loop's exactly.
    Returns ``(trial, fired, block_trace)`` rows in ``planned`` order.
    """
    out: list[tuple[TrialResult, bool, list[tuple[str, str]]]] = []
    for lo in range(0, len(planned), batch):
        chunk = planned[lo:lo + batch]
        injectors = [RegisterFaultInjector(spec) for _index, spec in chunk]
        lanes = [
            start_lane(
                campaign.module,
                campaign.func_name,
                list(campaign.args),
                cost_model=campaign.cost_model,
                fuel=trial_fuel,
                step_hook=injector,
                hook_index=injector.spec.dynamic_index,
                code_cache=code_cache,
                record_trace=record_trace,
            )
            for injector in injectors
        ]
        for injector, result in zip(injectors, run_lockstep(lanes)):
            trial = classify_trial(campaign, golden, injector, result)
            out.append((trial, injector.fired, result.block_trace))
    return out


def run_campaign_lockstep(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    batch: int = DEFAULT_BATCH,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
) -> CampaignResult:
    """Execute ``campaign`` with batched lockstep trials.

    Byte-identical to ``run_campaign(campaign, seed)`` — same
    ``TrialResult`` sequence, counts and golden run — and, when traced,
    the identical event stream (spans included under ``trace_spans``).
    ``workers > 1`` additionally fans lockstep chunks across the warm
    process pool.
    """
    if workers is not None and workers > 1:
        from repro.faults.parallel import run_campaign_parallel

        return run_campaign_parallel(
            campaign, seed=seed, workers=workers, tracer=tracer,
            trace_blocks=trace_blocks, trace_spans=trace_spans,
            lockstep=True, lockstep_batch=batch,
        )
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign)
    golden = run_golden(campaign, tracer=tracer)
    trial_fuel = trial_fuel_for(campaign, golden)
    trial_rngs = fork(rng, campaign.n_trials)

    code_cache: dict = {}
    rows = run_lockstep_trials(
        campaign, golden, trial_fuel, trial_rngs, code_cache, batch=batch,
        record_trace=tracer is not None and trace_blocks,
    )

    counts = OutcomeCounts()
    trials: list[TrialResult] = []
    for index, (trial, fired, block_trace) in enumerate(rows):
        counts.record(trial.outcome)
        trials.append(trial)
        if tracer is not None:
            emit_lockstep_trial(
                tracer, index, trial, fired, block_trace,
                span_root=span_root,
            )
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return CampaignResult(golden=golden, counts=counts, trials=trials)
