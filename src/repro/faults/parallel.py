"""Parallel fault-injection campaigns: warm worker pools, shared-memory results.

Campaign trials are embarrassingly parallel — each trial re-executes the
module with one injected SEU drawn from its own forked generator — so the
engine here fans them out across a process pool while keeping the results
**byte-identical** to the serial loop:

* **fork-before-dispatch**: the parent forks the campaign RNG into one
  child generator per trial with the exact ``repro.rng.fork`` spawn-key
  scheme the serial loop uses, then ships the pre-forked generators to the
  workers.  Trial *i* sees the same generator state no matter which worker
  runs it or how many workers exist.
* **order-stable merge**: trials are dispatched as contiguous index chunks
  via ``pool.map``, whose results come back in submission order; outcome
  counts are re-tallied from the merged trial list in index order.
* **per-worker warm start**: the module is serialized once in the parent
  via the IR printer; each worker parses it once in the pool initializer,
  re-derives and validates the golden run (cross-checking value and
  instruction count against the parent's), and compiles blocks into a
  worker-local code cache reused by every trial it executes.

The pool itself is **persistent** (:data:`repro.perf.pool.POOL_REGISTRY`):
it is forked and warm-started once per campaign *shape* — module
fingerprint, entry + args, cost model, fuel, supervisor config, worker
count — and stays alive across campaigns, so repeat campaigns skip fork,
re-parse, golden re-validation and block compilation entirely and pay
only queue traffic.  Untraced unsupervised results return through a
preallocated shared-memory buffer of fixed-width records
(:data:`repro.perf.pool.TRIAL_DTYPE`) written in place at each trial's
global index — no per-trial pickling — with a pickled per-trial override
escape hatch for values a fixed-width row cannot carry (integers beyond
int64, unknown sites).  Chunk sizes adapt to the CPUs actually available
(:func:`available_cpus`), not the requested worker count, so
oversubscribed pools on small hosts stop producing straggler-heavy tiny
chunks.

When the pool cannot be created (sandboxes without POSIX semaphores,
``workers=1``, trivial campaigns) the engine falls back to an in-process
loop over the same pre-forked generators — still byte-identical.

The same machinery drives supervised campaigns
(:func:`run_supervised_campaign_parallel`): recovery trials are equally
independent, each drawing its injector, checkpoint corruption and
persistence class from its own child generator.  Their richer results
(attempt records) stay on the pickled return path.

**Lockstep campaigns** (``lockstep=True``, see
:mod:`repro.faults.lockstep`) run each worker's chunk as a batch of
lanes advancing through shared compiled superblocks; classification is
byte-identical to the per-trial loop, so serial, parallel, and lockstep
campaigns all agree at every worker count.

**Timeline campaigns** (:func:`run_timeline_campaign_parallel`) stay
byte-identical too, by construction: the non-homogeneous Poisson arrival
draw consumes the master generator *in the parent*, before the per-trial
generators are forked, so the trial count, the arrival times and every
child generator's state are fixed before any worker exists.

**Traced campaigns** stay order-stable too: each worker runs its trials
against a private in-memory collector, ships the per-trial event batches
back with the results, and the parent re-emits every batch through its
own tracer in trial-index order.  Because sequence numbers are stamped
at (re-)emit time and every execution mode shares the same per-trial
emission code, the merged event stream is byte-identical to the serial
one at any worker count.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.campaign import (
    Campaign,
    CampaignResult,
    PrunedTrials,
    begin_campaign_span,
    emit_campaign_end,
    emit_campaign_start,
    emit_lockstep_trial,
    emit_pruned_trial,
    end_campaign_span,
    reconstruct_pruned_trial,
    run_golden,
    run_trial,
    trial_fuel_for,
)
from repro.faults.model import FaultSpec, FaultTarget
from repro.faults.seu import RegisterFaultInjector
from repro.faults.outcomes import OutcomeCounts, TrialResult
from repro.ir.costmodel import CostModel
from repro.ir.interp import ExecutionResult
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.obs.events import Event, InMemorySink, Tracer
from repro.obs.spans import profile_stage
from repro.perf.cache import cost_model_key
from repro.perf.pool import (
    POOL_REGISTRY,
    TrialBuffer,
    WarmPool,
    chunk_offsets,
    decode_trial,
    encode_trial,
    site_table,
)
from repro.rng import fork, make_rng

#: Trials below this count never amortize pool startup; stay in-process.
MIN_PARALLEL_TRIALS = 8


def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.cpu_count()`` reports the host; a containerized or
    ``taskset``-restricted process may own far fewer.  Chunk sizing and
    default worker counts key off this so a 16-worker request on a
    2-CPU host is treated as 2-way parallelism, not 16.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class WireCampaign:
    """A campaign serialized for worker processes.

    The module travels as printed IR text (its canonical serialization);
    the golden value and instruction count travel along so each worker can
    cross-check that its parsed module reproduces the parent's reference
    run exactly — a print/parse infidelity must fail loudly, not skew the
    campaign.
    """

    ir_text: str
    module_name: str
    func_name: str
    args: tuple[int | float, ...]
    n_trials: int
    target: FaultTarget
    sdc_tolerance: float
    fuel: int
    cost_model: CostModel
    golden_value: int | float | None
    golden_instructions: int

    @classmethod
    def from_campaign(
        cls, campaign: Campaign, golden: ExecutionResult
    ) -> "WireCampaign":
        return cls(
            ir_text=print_module(campaign.module),
            module_name=campaign.module.name,
            func_name=campaign.func_name,
            args=tuple(campaign.args),
            n_trials=campaign.n_trials,
            target=campaign.target,
            sdc_tolerance=campaign.sdc_tolerance,
            fuel=campaign.fuel,
            cost_model=campaign.cost_model,
            golden_value=golden.value,
            golden_instructions=golden.instructions,
        )

    def to_campaign(self) -> Campaign:
        return Campaign(
            module=parse_module(self.ir_text, name=self.module_name),
            func_name=self.func_name,
            args=self.args,
            n_trials=self.n_trials,
            target=self.target,
            sdc_tolerance=self.sdc_tolerance,
            fuel=self.fuel,
            cost_model=self.cost_model,
        )


def _values_match(a: int | float | None, b: int | float | None) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


# -- worker side ---------------------------------------------------------------
#
# One warm-started state per worker process, built by the pool initializer
# and reused by every chunk the worker executes — across campaigns, for as
# long as the pool lives in the registry.

_WORKER_STATE: "_WorkerState | None" = None


@dataclass
class _WorkerState:
    campaign: Campaign
    golden: ExecutionResult
    trial_fuel: int
    code_cache: dict
    site_index: dict[str, int]
    supervisor: object | None  # repro.recover.supervisor.Supervisor


def _init_worker(wire: WireCampaign, supervisor_config) -> None:
    """Pool initializer: parse the module once, validate the golden run."""
    global _WORKER_STATE
    campaign = wire.to_campaign()
    golden = run_golden(campaign)
    if (
        not _values_match(golden.value, wire.golden_value)
        or golden.instructions != wire.golden_instructions
    ):
        raise FaultInjectionError(
            f"parallel warm start diverged for @{wire.func_name}: worker "
            f"golden (value={golden.value!r}, "
            f"instructions={golden.instructions}) != parent golden "
            f"(value={wire.golden_value!r}, "
            f"instructions={wire.golden_instructions}) — printed-IR "
            f"round-trip is not faithful for this module"
        )
    supervisor = None
    if supervisor_config is not None:
        from repro.recover.supervisor import Supervisor

        supervisor = Supervisor(campaign, golden, supervisor_config)
    _WORKER_STATE = _WorkerState(
        campaign=campaign,
        golden=golden,
        trial_fuel=trial_fuel_for(campaign, golden),
        code_cache={},
        site_index={
            name: i for i, name in enumerate(site_table(campaign.module))
        },
        supervisor=supervisor,
    )


def _worker_trials(
    trial_rngs: list[np.random.Generator], lockstep: bool, batch: int
) -> list[TrialResult]:
    """One chunk's trials via the per-trial loop or the lockstep engine."""
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    if lockstep:
        from repro.faults.lockstep import run_lockstep_trials

        rows = run_lockstep_trials(
            state.campaign, state.golden, state.trial_fuel, trial_rngs,
            state.code_cache, batch=batch,
        )
        return [trial for trial, _fired, _trace in rows]
    return [
        run_trial(
            state.campaign, state.golden, state.trial_fuel, rng,
            state.code_cache,
        )
        for rng in trial_rngs
    ]


def _run_trial_chunk(payload: tuple) -> list[TrialResult]:
    """Pickled-return chunk body (fallback when shared memory is absent)."""
    trial_rngs, lockstep, batch = payload
    return _worker_trials(trial_rngs, lockstep, batch)


def _run_trial_chunk_shm(payload: tuple) -> list[tuple[int, TrialResult]]:
    """Shared-memory chunk body: results written in place at global indices.

    Returns only the trials the fixed-width row could not carry, as
    ``(global_index, trial)`` overrides.
    """
    shm_name, offset, trial_rngs, lockstep, batch = payload
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    trials = _worker_trials(trial_rngs, lockstep, batch)
    buffer = TrialBuffer.attach(shm_name, offset + len(trials))
    overrides: list[tuple[int, TrialResult]] = []
    try:
        rows = buffer.array
        site_index = state.site_index
        for i, trial in enumerate(trials):
            if not encode_trial(rows[offset + i], trial, site_index):
                overrides.append((offset + i, trial))
    finally:
        buffer.close()
    return overrides


def _run_trial_chunk_traced(payload: tuple) -> list[tuple[TrialResult, list[Event]]]:
    """Traced chunk body: each trial's events collected for forwarding.

    Every trial gets a private collector so the parent can re-emit the
    batches in trial order regardless of which worker ran them.  With a
    ``span_root``, each trial's batch is bracketed by its deterministic
    trial span — the worker derives the exact id the serial loop would.
    """
    indexed_rngs, trace_blocks, lockstep, batch, span_root = payload
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    if lockstep:
        from repro.faults.lockstep import run_lockstep_trials

        rows = run_lockstep_trials(
            state.campaign, state.golden, state.trial_fuel,
            [rng for _i, rng in indexed_rngs], state.code_cache,
            batch=batch, record_trace=trace_blocks,
        )
        out: list[tuple[TrialResult, list[Event]]] = []
        for (index, _rng), (trial, fired, block_trace) in zip(
            indexed_rngs, rows
        ):
            sink = InMemorySink()
            emit_lockstep_trial(
                Tracer(sink), index, trial, fired, block_trace,
                span_root=span_root,
            )
            out.append((trial, sink.events))
        return out
    out = []
    for index, rng in indexed_rngs:
        sink = InMemorySink()
        trial = run_trial(
            state.campaign, state.golden, state.trial_fuel, rng,
            state.code_cache, tracer=Tracer(sink), trial_index=index,
            trace_blocks=trace_blocks, span_root=span_root,
        )
        out.append((trial, sink.events))
    return out


def _run_planned_chunk(payload: tuple) -> list[TrialResult]:
    """Pruned-campaign chunk body: pre-resolved specs, no RNG traffic.

    Each item is ``(global_trial_index, resolved_spec)``; the worker
    builds an injector from the spec (location and bit already fixed), so
    results are byte-identical to the serial pruned loop's.
    """
    indexed_specs, lockstep, batch = payload
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    if lockstep:
        from repro.faults.lockstep import run_planned_lockstep_trials

        rows = run_planned_lockstep_trials(
            state.campaign, state.golden, state.trial_fuel, indexed_specs,
            state.code_cache, batch=batch,
        )
        return [trial for trial, _fired, _trace in rows]
    return [
        run_trial(
            state.campaign, state.golden, state.trial_fuel, None,
            state.code_cache, injector=RegisterFaultInjector(spec),
        )
        for _index, spec in indexed_specs
    ]


def _run_planned_chunk_traced(
    payload: tuple,
) -> list[tuple[TrialResult, list[Event]]]:
    """Traced pruned chunk: per-trial event batches for order-stable merge."""
    indexed_specs, trace_blocks, lockstep, batch, span_root = payload
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    if lockstep:
        from repro.faults.lockstep import run_planned_lockstep_trials

        rows = run_planned_lockstep_trials(
            state.campaign, state.golden, state.trial_fuel, indexed_specs,
            state.code_cache, batch=batch, record_trace=trace_blocks,
        )
        out: list[tuple[TrialResult, list[Event]]] = []
        for (index, _spec), (trial, fired, block_trace) in zip(
            indexed_specs, rows
        ):
            sink = InMemorySink()
            emit_lockstep_trial(
                Tracer(sink), index, trial, fired, block_trace,
                span_root=span_root,
            )
            out.append((trial, sink.events))
        return out
    out = []
    for index, spec in indexed_specs:
        sink = InMemorySink()
        trial = run_trial(
            state.campaign, state.golden, state.trial_fuel, None,
            state.code_cache, tracer=Tracer(sink), trial_index=index,
            trace_blocks=trace_blocks, span_root=span_root,
            injector=RegisterFaultInjector(spec),
        )
        out.append((trial, sink.events))
    return out


def _run_supervised_chunk(trial_rngs: list[np.random.Generator]) -> list[tuple]:
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    assert state.supervisor is not None
    return [state.supervisor.run_trial(rng) for rng in trial_rngs]


def _run_supervised_chunk_traced(payload: tuple) -> list[tuple]:
    indexed_rngs, span_root = payload
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    assert state.supervisor is not None
    out = []
    for index, rng in indexed_rngs:
        sink = InMemorySink()
        trial, record = state.supervisor.run_trial(
            rng, tracer=Tracer(sink), trial_index=index,
            span_root=span_root,
        )
        out.append((trial, record, sink.events))
    return out


# -- parent side ---------------------------------------------------------------


def resolve_workers(workers: int | None) -> int:
    """Effective worker count: explicit, or one per available CPU (<=16)."""
    if workers is not None:
        if workers < 1:
            raise FaultInjectionError(
                f"worker count must be >= 1, got {workers}"
            )
        return workers
    return max(1, min(available_cpus(), 16))


def _chunk_rngs(
    trial_rngs: list, workers: int, chunk_size: int | None
) -> list[list]:
    """Contiguous index chunks (order-stable under ``pool.map``).

    Accepts bare generators (untraced path) or ``(index, generator)``
    pairs (traced path, where workers need the global trial index).
    Sizing keys off the *effective* parallelism — the smaller of the
    requested worker count and the CPUs actually available — so an
    oversubscribed pool on a small host gets fewer, larger chunks
    instead of straggler-heavy slivers.
    """
    n = len(trial_rngs)
    if chunk_size is None:
        # ~4 chunks per effective worker balances stragglers against IPC.
        effective = max(1, min(workers, available_cpus()))
        chunk_size = max(1, -(-n // (effective * 4)))
    return [
        trial_rngs[i:i + chunk_size] for i in range(0, n, chunk_size)
    ]


def _pool_key(
    wire: WireCampaign, supervisor_config, workers: int
) -> tuple:
    """Registry key: everything the worker warm-start depends on.

    ``n_trials`` is normalized out — a pool warmed for 60 trials serves
    a 6000-trial campaign of the same shape unchanged.
    """
    return (
        wire.ir_text,
        wire.module_name,
        wire.func_name,
        wire.args,
        wire.target.value,
        wire.sdc_tolerance,
        wire.fuel,
        cost_model_key(wire.cost_model),
        repr(supervisor_config),
        workers,
    )


def _get_pool(
    wire: WireCampaign, supervisor_config, workers: int
) -> WarmPool | None:
    """Fetch (or fork + warm-start) the persistent pool for this shape."""
    wire = replace(wire, n_trials=0)
    return POOL_REGISTRY.get(
        _pool_key(wire, supervisor_config, workers),
        workers,
        _init_worker,
        (wire, supervisor_config),
    )


def _pool_map(pool: WarmPool, chunk_fn, chunks: list) -> list:
    """Dispatch chunks on a warm pool; a failing pool is evicted first.

    Worker-side errors (warm-start divergence, trial bugs) surface here;
    the broken pool must not stay registered or every later campaign of
    the same shape would re-hit the corpse.
    """
    try:
        return pool.map(chunk_fn, chunks)
    except BaseException:
        POOL_REGISTRY.discard(pool)
        raise


def _trials_via_shm(
    pool: WarmPool,
    campaign: Campaign,
    chunks: list[list],
    lockstep: bool,
    batch: int,
) -> list[TrialResult] | None:
    """Untraced fan-out through the shared-memory result buffer.

    None when shared memory is unavailable on this host (caller falls
    back to pickled returns).
    """
    n = sum(len(c) for c in chunks)
    buffer = TrialBuffer.create(n)
    if buffer is None:
        return None
    try:
        payloads = [
            (buffer.name, offset, chunk, lockstep, batch)
            for offset, chunk in zip(chunk_offsets(chunks), chunks)
        ]
        override_lists = _pool_map(pool, _run_trial_chunk_shm, payloads)
        sites = site_table(campaign.module)
        trials = [decode_trial(buffer.array[i], sites) for i in range(n)]
        for overrides in override_lists:
            for index, trial in overrides:
                trials[index] = trial
        return trials
    finally:
        buffer.close()
        buffer.unlink()


def planned_trials_parallel(
    campaign: Campaign,
    golden: ExecutionResult,
    plan: PrunedTrials,
    workers: int | None,
    chunk_size: int | None = None,
    lockstep: bool = False,
    lockstep_batch: int = 32,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    span_root: str = "",
) -> list[TrialResult] | None:
    """Fan a pruned campaign's executed trials across the warm pool.

    Ships ``(global_index, resolved_spec)`` pairs — specs are plain
    frozen dataclasses, so no generator state crosses the process
    boundary — and merges worker results back with the reconstructed
    pruned trials in global trial-index order.  Returns the full merged
    trial list, or None when the pool is unavailable or the executed
    subset is too small to amortize dispatch (caller falls back to the
    serial pruned loop; results are byte-identical either way).
    """
    workers = resolve_workers(workers)
    executed: list[tuple[int, FaultSpec]] = [
        (index, planned.spec)
        for index, planned in enumerate(plan.trials)
        if not planned.pruned
    ]
    if workers <= 1 or len(executed) < MIN_PARALLEL_TRIALS:
        return None
    wire = WireCampaign.from_campaign(campaign, golden)
    with profile_stage("fork"):
        pool = _get_pool(wire, None, workers)
    if pool is None:
        return None
    chunks = _chunk_rngs(executed, workers, chunk_size)
    trials: list[TrialResult] = []
    if tracer is not None:
        payloads = [
            (chunk, trace_blocks, lockstep, lockstep_batch, span_root)
            for chunk in chunks
        ]
        with profile_stage("dispatch"):
            chunk_results = _pool_map(
                pool, _run_planned_chunk_traced, payloads
            )
        stream = iter(
            pair for chunk in chunk_results for pair in chunk
        )
        with profile_stage("merge"):
            for index, planned in enumerate(plan.trials):
                if planned.pruned:
                    trial = reconstruct_pruned_trial(golden, planned)
                    emit_pruned_trial(
                        tracer, index, trial, planned, span_root=span_root
                    )
                else:
                    trial, events = next(stream)
                    tracer.emit_all(events)
                trials.append(trial)
        return trials
    payloads = [(chunk, lockstep, lockstep_batch) for chunk in chunks]
    with profile_stage("dispatch"):
        chunk_results = _pool_map(pool, _run_planned_chunk, payloads)
    stream = iter(t for chunk in chunk_results for t in chunk)
    with profile_stage("merge"):
        for planned in plan.trials:
            trials.append(
                reconstruct_pruned_trial(golden, planned)
                if planned.pruned else next(stream)
            )
    return trials


def run_campaign_parallel(
    campaign: Campaign,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    tracer: Tracer | None = None,
    trace_blocks: bool = False,
    trace_spans: bool = False,
    lockstep: bool = False,
    lockstep_batch: int = 32,
) -> CampaignResult:
    """Execute ``campaign`` on the persistent warm pool.

    Byte-identical to ``run_campaign(campaign, seed)`` for every worker
    count: same ``TrialResult`` sequence, same ``OutcomeCounts``, same
    golden run.  Falls back to an in-process loop when the pool is
    unavailable or the campaign is too small to amortize dispatch.

    With a ``tracer``, workers collect each trial's events and the parent
    re-emits the batches in trial-index order, reproducing the serial
    event stream exactly (sequence numbers included) — including the
    deterministic causal spans under ``trace_spans``, whose ids workers
    derive from the shipped root + trial index.  ``lockstep=True`` runs
    each worker's chunk through the batched lockstep engine — results
    unchanged.  Engine stages (pool fork, chunk dispatch, result merge)
    are profiled into :data:`~repro.obs.metrics.ENGINE_METRICS` — never
    into the campaign trace, which stays clock-free.
    """
    workers = resolve_workers(workers)
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign)
    golden = run_golden(campaign, tracer=tracer)
    trial_fuel = trial_fuel_for(campaign, golden)
    trial_rngs = fork(rng, campaign.n_trials)

    trials: list[TrialResult] | None = None
    if workers > 1 and campaign.n_trials >= MIN_PARALLEL_TRIALS:
        wire = WireCampaign.from_campaign(campaign, golden)
        with profile_stage("fork"):
            pool = _get_pool(wire, None, workers)
        if pool is not None and tracer is not None:
            chunks = _chunk_rngs(
                list(enumerate(trial_rngs)), workers, chunk_size
            )
            payloads = [
                (chunk, trace_blocks, lockstep, lockstep_batch, span_root)
                for chunk in chunks
            ]
            with profile_stage("dispatch"):
                chunk_results = _pool_map(
                    pool, _run_trial_chunk_traced, payloads
                )
            trials = []
            with profile_stage("merge"):
                for trial, events in (p for c in chunk_results for p in c):
                    trials.append(trial)
                    tracer.emit_all(events)
        elif pool is not None:
            chunks = _chunk_rngs(trial_rngs, workers, chunk_size)
            with profile_stage("dispatch"):
                trials = _trials_via_shm(
                    pool, campaign, chunks, lockstep, lockstep_batch
                )
            if trials is None:
                payloads = [
                    (chunk, lockstep, lockstep_batch) for chunk in chunks
                ]
                with profile_stage("dispatch"):
                    chunk_results = _pool_map(
                        pool, _run_trial_chunk, payloads
                    )
                trials = [t for chunk in chunk_results for t in chunk]
    if trials is None:
        code_cache: dict = {}
        if lockstep:
            from repro.faults.lockstep import run_lockstep_trials

            rows = run_lockstep_trials(
                campaign, golden, trial_fuel, trial_rngs, code_cache,
                batch=lockstep_batch,
                record_trace=tracer is not None and trace_blocks,
            )
            trials = []
            for index, (trial, fired, block_trace) in enumerate(rows):
                trials.append(trial)
                if tracer is not None:
                    emit_lockstep_trial(
                        tracer, index, trial, fired, block_trace,
                        span_root=span_root,
                    )
        else:
            trials = [
                run_trial(
                    campaign, golden, trial_fuel, rng_i, code_cache,
                    tracer=tracer, trial_index=index,
                    trace_blocks=trace_blocks, span_root=span_root,
                )
                for index, rng_i in enumerate(trial_rngs)
            ]

    counts = OutcomeCounts()
    for trial in trials:
        counts.record(trial.outcome)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return CampaignResult(golden=golden, counts=counts, trials=trials)


def run_timeline_campaign_parallel(
    campaign: Campaign,
    timeline,
    t0: float,
    t1: float,
    arrival_rate_per_s: float,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    subsystem: str = "register",
):
    """Timeline-driven campaign on a process pool.

    Convenience mirror of :func:`run_supervised_campaign_parallel` for
    :func:`repro.faults.campaign.run_timeline_campaign`: resolves the
    worker count (one per CPU by default) and fans the thinned trials
    out.  Byte-identical to the serial timeline campaign for the same
    seed — the arrival draw happens in the parent before the per-trial
    fork, so the E16 serial==parallel gate holds by construction.
    """
    from repro.faults.campaign import run_timeline_campaign

    return run_timeline_campaign(
        campaign, timeline, t0, t1, arrival_rate_per_s,
        seed=seed, workers=resolve_workers(workers), tracer=tracer,
        subsystem=subsystem,
    )


def run_supervised_campaign_parallel(
    campaign: Campaign,
    config=None,
    seed: int | np.random.Generator | None = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    tracer: Tracer | None = None,
    trace_spans: bool = False,
):
    """Supervised campaign on the warm pool (see ``recover.supervisor``).

    Each trial's injector, checkpoint corruption and persistence draws all
    come from its pre-forked child generator, so results are byte-identical
    to ``run_supervised_campaign(campaign, config, seed)`` at any worker
    count.  Falls back to the in-process supervisor loop when no pool is
    available.  Traced runs forward worker events exactly like
    :func:`run_campaign_parallel`.  Supervised results carry attempt
    records, so they stay on the pickled return path; the pool itself is
    still persistent (keyed by the supervisor config).
    """
    from repro.recover.supervisor import (
        SupervisedCampaignResult,
        Supervisor,
        SupervisorConfig,
    )

    if config is None:
        config = SupervisorConfig()
    workers = resolve_workers(workers)
    span_root = ""
    if tracer is not None and trace_spans:
        span_root = begin_campaign_span(tracer, campaign, seed)
    rng = make_rng(seed)
    if tracer is not None:
        emit_campaign_start(tracer, campaign, supervised=True)
    golden = run_golden(campaign, tracer=tracer)
    trial_rngs = fork(rng, campaign.n_trials)

    results: list[tuple] | None = None
    if workers > 1 and campaign.n_trials >= MIN_PARALLEL_TRIALS:
        wire = WireCampaign.from_campaign(campaign, golden)
        with profile_stage("fork"):
            pool = _get_pool(wire, config, workers)
        if pool is not None and tracer is not None:
            chunks = _chunk_rngs(
                list(enumerate(trial_rngs)), workers, chunk_size
            )
            payloads = [(chunk, span_root) for chunk in chunks]
            with profile_stage("dispatch"):
                chunk_results = _pool_map(
                    pool, _run_supervised_chunk_traced, payloads
                )
            results = []
            with profile_stage("merge"):
                for trial, record, events in (
                    r for chunk in chunk_results for r in chunk
                ):
                    results.append((trial, record))
                    tracer.emit_all(events)
        elif pool is not None:
            chunks = _chunk_rngs(trial_rngs, workers, chunk_size)
            with profile_stage("dispatch"):
                chunk_results = _pool_map(
                    pool, _run_supervised_chunk, chunks
                )
            results = [r for chunk in chunk_results for r in chunk]
    if results is None:
        supervisor = Supervisor(campaign, golden, config)
        results = [
            supervisor.run_trial(
                rng_i, tracer=tracer, trial_index=index,
                span_root=span_root,
            )
            for index, rng_i in enumerate(trial_rngs)
        ]

    counts = OutcomeCounts()
    trials = []
    records = []
    for trial, record in results:
        counts.record(trial.outcome)
        trials.append(trial)
        records.append(record)
    if tracer is not None:
        emit_campaign_end(tracer, campaign, golden, counts)
        if span_root:
            end_campaign_span(tracer, span_root, campaign)
    return SupervisedCampaignResult(
        golden=golden,
        counts=counts,
        trials=trials,
        records=records,
        config=config,
    )
