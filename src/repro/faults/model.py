"""Fault specifications and bit-flip primitives.

SEUs flip exactly one bit (the paper's fault model: "Observational data from
Perseverance has shown only one radiation error affecting multiple bits for
its entire 25-year lifespan.  We therefore focus on single-bit rather than
multi-bit errors").  These helpers flip a chosen bit in the two machine
representations the IR uses: two's-complement integers and IEEE-754 doubles.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import FaultInjectionError
from repro.ir.types import Type


class FaultTarget(enum.Enum):
    """Where a fault lands."""

    REGISTER = "register"   # live SSA value in the executing frame
    MEMORY = "memory"       # heap cell (interpreter) / DRAM (machine)
    CACHE = "cache"         # cache-resident copy (machine emulator only)


@dataclass(frozen=True)
class FaultSpec:
    """One fully determined fault.

    Attributes:
        target: which state class the flip hits.
        dynamic_index: dynamic instruction index at which to inject.
        location: register name or memory address (resolved at runtime when
            None — the injector picks uniformly among live candidates).
        bit: bit index to flip (LSB = 0); None means pick uniformly.
    """

    target: FaultTarget
    dynamic_index: int
    location: str | int | None = None
    bit: int | None = None


# -- bit flips ----------------------------------------------------------------

def flip_int_bit(value: int, bit: int, bits: int) -> int:
    """Flip ``bit`` of a ``bits``-wide two's-complement integer."""
    if not 0 <= bit < bits:
        raise FaultInjectionError(f"bit {bit} outside width {bits}")
    mask = (1 << bits) - 1
    raw = (value & mask) ^ (1 << bit)
    if raw >= 1 << (bits - 1):
        return raw - (1 << bits)
    return raw


def flip_float_bit(value: float, bit: int) -> float:
    """Flip ``bit`` of an IEEE-754 double (bit 63 = sign, 62-52 = exponent)."""
    if not 0 <= bit < 64:
        raise FaultInjectionError(f"bit {bit} outside a 64-bit double")
    (raw,) = struct.unpack("<Q", struct.pack("<d", value))
    raw ^= 1 << bit
    (flipped,) = struct.unpack("<d", struct.pack("<Q", raw))
    return flipped


def flip_value_bit(value: int | float, type_: Type, bit: int) -> int | float:
    """Flip ``bit`` in a typed IR value."""
    if type_.is_float:
        return flip_float_bit(float(value), bit)
    if type_.is_pointer:
        return flip_int_bit(int(value), bit, 64) & ((1 << 64) - 1)
    return type_.wrap(flip_int_bit(int(value), bit, type_.bits))


def float_bit_class(bit: int) -> str:
    """Classify a double's bit: ``sign``, ``exponent`` or ``mantissa``.

    Sect. 4.1 quantifies the per-class damage: "An SEU in a float results in
    relative errors up to 2**1024 when an exponent bit is hit, 200% if the
    sign bit is hit, and 50% if a mantissa bit is hit."
    """
    if bit == 63:
        return "sign"
    if 52 <= bit <= 62:
        return "exponent"
    if 0 <= bit <= 51:
        return "mantissa"
    raise FaultInjectionError(f"bit {bit} outside a 64-bit double")


def relative_error(corrupted: float, reference: float) -> float:
    """|corrupted - reference| / |reference| (inf when reference is 0)."""
    if reference == 0:
        return float("inf") if corrupted != reference else 0.0
    return abs(corrupted - reference) / abs(reference)
