"""Fault injection: SEU bit flips and SEL current events.

This package is the library's stand-in for the paper's QEMU fault-injection
framework (sect. 4.2): faults are injected *between instructions* into live
register state or heap memory, at a precisely controlled dynamic instruction
index, and each run's outcome is classified against a golden execution.
"""

from repro.faults.model import (
    FaultTarget,
    FaultSpec,
    flip_int_bit,
    flip_float_bit,
    flip_value_bit,
    float_bit_class,
)
from repro.faults.outcomes import FaultOutcome, TrialResult, OutcomeCounts
from repro.faults.seu import RegisterFaultInjector, HeapFaultInjector
from repro.faults.campaign import (
    Campaign,
    CampaignResult,
    PlannedTrial,
    PrunedTrials,
    TimelineCampaignResult,
    prune_masked_trials,
    run_campaign,
    run_campaign_pruned,
    run_timeline_campaign,
)
from repro.faults.parallel import (
    run_campaign_parallel,
    run_supervised_campaign_parallel,
    run_timeline_campaign_parallel,
)
from repro.faults.lockstep import run_campaign_lockstep
from repro.faults.sel import LatchupEvent, LatchupGenerator

__all__ = [
    "FaultTarget", "FaultSpec",
    "flip_int_bit", "flip_float_bit", "flip_value_bit", "float_bit_class",
    "FaultOutcome", "TrialResult", "OutcomeCounts",
    "RegisterFaultInjector", "HeapFaultInjector",
    "Campaign", "CampaignResult", "run_campaign",
    "PlannedTrial", "PrunedTrials",
    "prune_masked_trials", "run_campaign_pruned",
    "TimelineCampaignResult", "run_timeline_campaign",
    "run_campaign_parallel", "run_supervised_campaign_parallel",
    "run_timeline_campaign_parallel", "run_campaign_lockstep",
    "LatchupEvent", "LatchupGenerator",
]
