"""Poisson generation of discrete radiation events.

Produces the event streams the protection systems consume: SEUs (with a
target component drawn by state size) and SELs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import make_rng


class EventKind(enum.Enum):
    """Discrete radiation event types."""

    SEU = "seu"
    SEL = "sel"


@dataclass(frozen=True)
class RadiationEvent:
    """One discrete event.

    Attributes:
        kind: SEU or SEL.
        t: event time (mission seconds).
        target: affected component ("dram", "cache", "register", "board").
    """

    kind: EventKind
    t: float
    target: str


#: Relative SEU cross-section by component, roughly proportional to state
#: size on a 2 GB commodity SoC (cache ~2 MiB, architectural registers plus
#: pipeline flip-flops a few KiB): DRAM utterly dominates; cache and
#: register upsets are rare but strike live computation directly.
DEFAULT_TARGET_WEIGHTS = {
    "dram": 0.9989,
    "cache": 1.0e-3,
    "register": 1.0e-4,
}

#: Which timeline subsystem modulates each event target: DRAM and cache
#: follow the large-array ("ram") sensitivity, register-file upsets the
#: flip-flop one, latch-ups the whole-board one.
TARGET_SUBSYSTEM = {
    "dram": "ram",
    "cache": "ram",
    "register": "register",
    "board": "board",
}


class EventGenerator:
    """Draws SEU/SEL event streams over an interval.

    Attributes:
        seu_rate_per_s: device-wide SEU rate (events/second).
        sel_rate_per_s: device-wide SEL rate (events/second).
    """

    def __init__(
        self,
        seu_rate_per_s: float,
        sel_rate_per_s: float,
        target_weights: dict[str, float] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if seu_rate_per_s < 0 or sel_rate_per_s < 0:
            raise ConfigError("rates must be non-negative")
        self.seu_rate_per_s = seu_rate_per_s
        self.sel_rate_per_s = sel_rate_per_s
        weights = target_weights or DEFAULT_TARGET_WEIGHTS
        total = sum(weights.values())
        if total <= 0:
            raise ConfigError("target weights must sum to a positive value")
        self._targets = list(weights)
        self._probs = np.array([weights[k] / total for k in self._targets])
        self.rng = make_rng(seed)

    def events_in(
        self, t_start: float, t_end: float, rate_multiplier: float = 1.0
    ) -> list[RadiationEvent]:
        """All events in [t_start, t_end), time-ordered."""
        if t_end < t_start:
            raise ConfigError("interval end precedes start")
        duration = t_end - t_start
        events: list[RadiationEvent] = []
        n_seu = self.rng.poisson(self.seu_rate_per_s * rate_multiplier * duration)
        for _ in range(n_seu):
            t = t_start + self.rng.uniform(0.0, duration)
            target = self._targets[
                int(self.rng.choice(len(self._targets), p=self._probs))
            ]
            events.append(RadiationEvent(EventKind.SEU, t, target))
        n_sel = self.rng.poisson(self.sel_rate_per_s * rate_multiplier * duration)
        for _ in range(n_sel):
            t = t_start + self.rng.uniform(0.0, duration)
            events.append(RadiationEvent(EventKind.SEL, t, "board"))
        events.sort(key=lambda e: e.t)
        return events

    def events_in_timeline(
        self, t_start: float, t_end: float, timeline
    ) -> list[RadiationEvent]:
        """Timeline-modulated events in ``[t_start, t_end)``, time-ordered.

        Each target category is an independent non-homogeneous Poisson
        process thinned against its own subsystem's multiplier (register
        upsets surge harder in an SPE than DRAM ones; latch-ups hardest),
        replacing :meth:`events_in`'s single flat ``rate_multiplier``.
        Targets are processed in a fixed order, so a given generator seed
        yields one reproducible stream for a given timeline.
        """
        from repro.radiation.schedule import sample_arrivals

        if t_end < t_start:
            raise ConfigError("interval end precedes start")
        events: list[RadiationEvent] = []
        for i, target in enumerate(self._targets):
            rate = self.seu_rate_per_s * float(self._probs[i])
            subsystem = TARGET_SUBSYSTEM.get(target, "ram")
            for t in sample_arrivals(
                timeline, t_start, t_end, rate, self.rng, subsystem
            ):
                events.append(RadiationEvent(EventKind.SEU, float(t), target))
        for t in sample_arrivals(
            timeline, t_start, t_end, self.sel_rate_per_s, self.rng,
            TARGET_SUBSYSTEM["board"],
        ):
            events.append(RadiationEvent(EventKind.SEL, float(t), "board"))
        events.sort(key=lambda e: e.t)
        return events
