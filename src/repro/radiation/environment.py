"""Named radiation environments combining flux, orbit and storm activity."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radiation.flux import FluxModel, seu_rate_per_bit_second
from repro.radiation.orbit import LeoOrbit, OrbitPhase
from repro.units import bytes_to_bits


@dataclass(frozen=True)
class Environment:
    """A radiation environment a mission flies through.

    Attributes:
        name: human label.
        flux: source mix and modulation factors.
        orbit: SAA geometry (None for deep space / planetary surface).
        storm_active: whether a solar particle event is in progress.
        sel_rate_per_device_day: latch-ups per device per day (commercial
            SmallSat experience: order 1e-2..1e-1 per day in LEO for
            unhardened parts; higher in storms).
    """

    name: str
    flux: FluxModel = field(default_factory=FluxModel)
    orbit: LeoOrbit | None = field(default_factory=LeoOrbit)
    storm_active: bool = False
    sel_rate_per_device_day: float = 0.05

    def rate_multiplier(self, t: float) -> float:
        """Instantaneous SEU-rate multiplier at mission time ``t``."""
        in_saa = (
            self.orbit is not None
            and self.orbit.phase_at(t) is OrbitPhase.SAA
        )
        return self.flux.rate_multiplier(in_saa=in_saa, in_storm=self.storm_active)

    def seu_rate_device_per_s(
        self, ram_bytes: int, rad_hard: bool, t: float = 0.0
    ) -> float:
        """Device-wide SEU rate for a given memory size at time ``t``."""
        per_bit = seu_rate_per_bit_second(
            rad_hard=rad_hard, multiplier=self.rate_multiplier(t)
        )
        return per_bit * bytes_to_bits(ram_bytes)


#: Nominal LEO: quiet sun, periodic SAA passes.
LEO_NOMINAL = Environment(name="leo-nominal")

#: LEO during a solar particle event.
SOLAR_STORM = Environment(name="leo-solar-storm", storm_active=True,
                          sel_rate_per_device_day=0.5)

#: Mars surface: no trapped-proton belt, GCR-dominated, thin atmosphere.
MARS_SURFACE = Environment(
    name="mars-surface",
    flux=FluxModel(
        trapped_fraction=0.0,
        gcr_fraction=0.85,
        solar_fraction=0.15,
        saa_multiplier=1.0,
        storm_multiplier=50.0,
    ),
    orbit=None,
    sel_rate_per_device_day=0.02,
)
