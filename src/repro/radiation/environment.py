"""Named radiation environments combining flux, orbit and storm activity."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.radiation.flux import FluxModel, seu_rate_per_bit_second
from repro.radiation.orbit import LeoOrbit, OrbitPhase
from repro.units import bytes_to_bits

_STORM_FLAG_WARNED = False


def _warn_storm_flag() -> None:
    """One-shot deprecation notice for the static storm flag."""
    global _STORM_FLAG_WARNED
    if _STORM_FLAG_WARNED:
        return
    _STORM_FLAG_WARNED = True
    warnings.warn(
        "Environment.storm_active is deprecated: a static boolean models "
        "a solar particle event as eternal and rate-flat.  Build an "
        "EnvironmentTimeline instead (Environment.timeline() keeps the "
        "old constant-storm behavior; pass spe=SpeModel(...) for "
        "stochastic onset and exponential decay).",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Environment:
    """A radiation environment a mission flies through.

    Attributes:
        name: human label.
        flux: source mix and modulation factors.
        orbit: SAA geometry (None for deep space / planetary surface).
        storm_active: **deprecated** — whether a solar particle event is
            permanently in progress.  Kept as a back-compat shim for the
            ``SOLAR_STORM`` preset and existing callers; new code should
            derive storm activity from :meth:`timeline`.
        sel_rate_per_device_day: latch-ups per device per day (commercial
            SmallSat experience: order 1e-2..1e-1 per day in LEO for
            unhardened parts; higher in storms).
    """

    name: str
    flux: FluxModel = field(default_factory=FluxModel)
    orbit: LeoOrbit | None = field(default_factory=LeoOrbit)
    storm_active: bool = False
    sel_rate_per_device_day: float = 0.05

    def rate_multiplier(self, t: float) -> float:
        """Instantaneous SEU-rate multiplier at mission time ``t``."""
        if self.storm_active:
            _warn_storm_flag()
        in_saa = (
            self.orbit is not None
            and self.orbit.phase_at(t) is OrbitPhase.SAA
        )
        return self.flux.rate_multiplier(in_saa=in_saa, in_storm=self.storm_active)

    def seu_rate_device_per_s(
        self, ram_bytes: int, rad_hard: bool, t: float = 0.0
    ) -> float:
        """Device-wide SEU rate for a given memory size at time ``t``."""
        per_bit = seu_rate_per_bit_second(
            rad_hard=rad_hard, multiplier=self.rate_multiplier(t)
        )
        return per_bit * bytes_to_bits(ram_bytes)

    def timeline(
        self,
        seed: int = 0,
        spe=None,
        sensitivity=None,
    ):
        """An :class:`~repro.radiation.schedule.EnvironmentTimeline` view.

        The deprecated ``storm_active`` flag maps to a constant-storm
        timeline (the solar term held at the flux model's full
        ``storm_multiplier``), so ``SOLAR_STORM.timeline()`` reproduces
        the legacy behavior exactly; pass ``spe=SpeModel(...)`` to model
        storms as stochastic onsets with exponential decay instead.
        """
        from repro.radiation.schedule import EnvironmentTimeline

        return EnvironmentTimeline(
            orbit=self.orbit,
            flux=self.flux,
            spe=spe,
            seed=seed,
            sensitivity=sensitivity,
            constant_storm=self.storm_active,
            name=self.name,
        )


#: Nominal LEO: quiet sun, periodic SAA passes.
LEO_NOMINAL = Environment(name="leo-nominal")

#: LEO during a solar particle event.
SOLAR_STORM = Environment(name="leo-solar-storm", storm_active=True,
                          sel_rate_per_device_day=0.5)

#: Mars surface: no trapped-proton belt, GCR-dominated, thin atmosphere.
MARS_SURFACE = Environment(
    name="mars-surface",
    flux=FluxModel(
        trapped_fraction=0.0,
        gcr_fraction=0.85,
        solar_fraction=0.15,
        saa_multiplier=1.0,
        storm_multiplier=50.0,
    ),
    orbit=None,
    sel_rate_per_device_day=0.02,
)
