"""Orbit geometry: when is the spacecraft in the South Atlantic Anomaly?

A full orbital propagator is unnecessary for rate modulation; what matters
is the duty cycle and periodicity of SAA passes.  A LEO spacecraft at
ISS-like inclination crosses the SAA on roughly 6 of its ~15.5 daily
orbits, each pass lasting 10-15 minutes.  The model exposes exactly that
structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class OrbitPhase(enum.Enum):
    """Radiation-relevant phase of the orbit."""

    QUIET = "quiet"
    SAA = "saa"


@dataclass(frozen=True)
class LeoOrbit:
    """A low-earth orbit with periodic SAA exposure.

    Attributes:
        period_s: orbital period (ISS-like: ~5580 s).
        saa_pass_duration_s: length of one SAA crossing.
        saa_orbit_stride: the SAA is crossed every k-th orbit (geometry of
            the anomaly vs the ground track).
    """

    period_s: float = 5_580.0
    saa_pass_duration_s: float = 780.0
    saa_orbit_stride: int = 3

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.saa_pass_duration_s < 0:
            raise ConfigError("orbit parameters must be positive")
        if self.saa_pass_duration_s > self.period_s:
            raise ConfigError("SAA pass cannot exceed the orbital period")
        if self.saa_orbit_stride < 1:
            raise ConfigError("SAA stride must be >= 1")

    def orbit_number(self, t: float) -> int:
        """Which orbit (0-based) contains time ``t``.

        Mission time starts at zero; a negative ``t`` would silently
        index a nonexistent "orbit -1", so it is rejected loudly.
        """
        if t < 0:
            raise ConfigError(f"mission time must be >= 0, got {t}")
        return int(t // self.period_s)

    def phase_at(self, t: float) -> OrbitPhase:
        """QUIET or SAA at mission time ``t`` (seconds)."""
        orbit = self.orbit_number(t)
        if orbit % self.saa_orbit_stride != 0:
            return OrbitPhase.QUIET
        # The SAA pass sits mid-orbit.
        offset = t - orbit * self.period_s
        start = (self.period_s - self.saa_pass_duration_s) / 2.0
        if start <= offset < start + self.saa_pass_duration_s:
            return OrbitPhase.SAA
        return OrbitPhase.QUIET

    def saa_windows(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """SAA pass intervals overlapping ``[t0, t1)``, clipped to it.

        The geometric counterpart of :meth:`phase_at`: every returned
        ``(start, end)`` satisfies ``phase_at(t) is SAA`` exactly for
        ``start <= t < end``.
        """
        if t0 < 0:
            raise ConfigError(f"mission time must be >= 0, got {t0}")
        if t1 < t0:
            raise ConfigError(f"window end {t1} precedes start {t0}")
        windows: list[tuple[float, float]] = []
        mid_offset = (self.period_s - self.saa_pass_duration_s) / 2.0
        first_orbit = int(t0 // self.period_s)
        first_orbit -= first_orbit % self.saa_orbit_stride
        orbit = first_orbit
        while orbit * self.period_s < t1:
            if orbit >= 0:
                start = orbit * self.period_s + mid_offset
                end = start + self.saa_pass_duration_s
                if end > t0 and start < t1:
                    windows.append((max(start, t0), min(end, t1)))
            orbit += self.saa_orbit_stride
        return windows

    @property
    def saa_duty_cycle(self) -> float:
        """Long-run fraction of time spent inside the SAA."""
        return self.saa_pass_duration_s / (
            self.period_s * self.saa_orbit_stride
        )
