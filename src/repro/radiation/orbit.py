"""Orbit geometry: when is the spacecraft in the South Atlantic Anomaly?

A full orbital propagator is unnecessary for rate modulation; what matters
is the duty cycle and periodicity of SAA passes.  A LEO spacecraft at
ISS-like inclination crosses the SAA on roughly 6 of its ~15.5 daily
orbits, each pass lasting 10-15 minutes.  The model exposes exactly that
structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class OrbitPhase(enum.Enum):
    """Radiation-relevant phase of the orbit."""

    QUIET = "quiet"
    SAA = "saa"


@dataclass(frozen=True)
class LeoOrbit:
    """A low-earth orbit with periodic SAA exposure.

    Attributes:
        period_s: orbital period (ISS-like: ~5580 s).
        saa_pass_duration_s: length of one SAA crossing.
        saa_orbit_stride: the SAA is crossed every k-th orbit (geometry of
            the anomaly vs the ground track).
    """

    period_s: float = 5_580.0
    saa_pass_duration_s: float = 780.0
    saa_orbit_stride: int = 3

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.saa_pass_duration_s < 0:
            raise ConfigError("orbit parameters must be positive")
        if self.saa_pass_duration_s > self.period_s:
            raise ConfigError("SAA pass cannot exceed the orbital period")
        if self.saa_orbit_stride < 1:
            raise ConfigError("SAA stride must be >= 1")

    def orbit_number(self, t: float) -> int:
        """Which orbit (0-based) contains time ``t``."""
        return int(t // self.period_s)

    def phase_at(self, t: float) -> OrbitPhase:
        """QUIET or SAA at mission time ``t`` (seconds)."""
        orbit = self.orbit_number(t)
        if orbit % self.saa_orbit_stride != 0:
            return OrbitPhase.QUIET
        # The SAA pass sits mid-orbit.
        offset = t - orbit * self.period_s
        start = (self.period_s - self.saa_pass_duration_s) / 2.0
        if start <= offset < start + self.saa_pass_duration_s:
            return OrbitPhase.SAA
        return OrbitPhase.QUIET

    @property
    def saa_duty_cycle(self) -> float:
        """Long-run fraction of time spent inside the SAA."""
        return self.saa_pass_duration_s / (
            self.period_s * self.saa_orbit_stride
        )
