"""Radiation environment model.

Calibrated event-rate models for the orbits the paper discusses (LEO with
South Atlantic Anomaly passes, solar particle events, Mars surface), and
Poisson generators for SEU/SEL event streams consumed by the mission
simulator.  Calibration anchors from the paper (sect. 4):

- Snapdragon 801 SEU probability: 1.578e-6 per bit per day (CREME-class
  simulation cited by the paper);
- Perseverance's rad-hard CPU: ~1 correctable SEU per Martian sol;
- Perseverance's commodity Snapdragon: >= 4 SEUs in 800 sols observed.
"""

from repro.radiation.flux import (
    SEU_RATE_SNAPDRAGON_PER_BIT_DAY,
    FluxModel,
    seu_rate_per_bit_day,
)
from repro.radiation.orbit import OrbitPhase, LeoOrbit
from repro.radiation.events import EventGenerator, RadiationEvent, EventKind
from repro.radiation.environment import Environment, LEO_NOMINAL, MARS_SURFACE, SOLAR_STORM
from repro.radiation.schedule import (
    DEFAULT_SENSITIVITY,
    EnvironmentTimeline,
    MissionPhase,
    PhaseProfile,
    PhaseSegment,
    SpeModel,
    SubsystemSensitivity,
    sample_arrivals,
)

__all__ = [
    "SEU_RATE_SNAPDRAGON_PER_BIT_DAY", "FluxModel", "seu_rate_per_bit_day",
    "OrbitPhase", "LeoOrbit",
    "EventGenerator", "RadiationEvent", "EventKind",
    "Environment", "LEO_NOMINAL", "MARS_SURFACE", "SOLAR_STORM",
    "EnvironmentTimeline", "MissionPhase", "SpeModel",
    "SubsystemSensitivity", "PhaseProfile", "PhaseSegment",
    "DEFAULT_SENSITIVITY", "sample_arrivals",
]
