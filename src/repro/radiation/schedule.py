"""Environment timeline: a seeded, piecewise phase schedule for a mission.

The static :class:`~repro.radiation.environment.Environment` answers "what
is the rate multiplier right now?" from a frozen configuration; campaigns
and the fleet service that want *environment-driven* fault arrivals need
more: a deterministic schedule of QUIET orbit, South Atlantic Anomaly
passes and solar particle events (SPEs) over mission time, with
per-subsystem rate modulation and an exact integrator so expected event
counts — and non-homogeneous Poisson thinning — follow from it.

Structure of the model:

* **SAA passes** come from :class:`~repro.radiation.orbit.LeoOrbit`
  geometry (deterministic, periodic).
* **SPE onsets** are a homogeneous Poisson process drawn deterministically
  per ``seed`` in fixed week-long blocks, so the schedule is identical no
  matter in which order (or how often) it is queried; each event raises
  the solar source term to ``peak_storm_scale`` and decays exponentially
  with time constant ``decay_tau_s`` (the classic fast-rise/slow-decay
  SPE profile).  Overlapping events stack additively.
* **Per-subsystem sensitivity** scales the SAA (trapped proton) and SPE
  (solar heavy ion) enhancements differently for RAM, register files,
  sensors and whole-board latch-up susceptibility.

Everything downstream keys off three queries: :meth:`phase_at` (which
phase are we in), :meth:`multiplier_at` (instantaneous rate multiplier for
one subsystem) and :meth:`phase_profile` (exact integral of the multiplier
plus per-phase occupancy over a window).  The integral is closed-form —
the storm term is a sum of exponentials — so expected event counts carry
no quadrature error, and :func:`sample_arrivals` can thin a homogeneous
candidate stream against an exact upper bound.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.radiation.flux import FluxModel
from repro.radiation.orbit import LeoOrbit
from repro.units import SECONDS_PER_DAY


class MissionPhase(enum.Enum):
    """Radiation phase of the mission at an instant.

    Precedence when conditions overlap: an active solar particle event
    dominates an SAA pass dominates quiet orbit (the *multiplier* still
    composes both enhancements; the phase label drives policy).
    """

    QUIET = "quiet"
    SAA = "saa"
    SPE = "spe"


@dataclass(frozen=True)
class SpeModel:
    """Stochastic solar-particle-event process.

    Attributes:
        onset_rate_per_day: Poisson rate of SPE onsets (solar-cycle
            average for events strong enough to matter: a few per month
            at solar max, rare at solar min).
        peak_storm_scale: solar source-term multiplier at onset (the
            :class:`FluxModel` storm multiplier is the calibration
            anchor).
        decay_tau_s: exponential decay time constant of the enhancement.
        active_scale: storm scale at or above which the mission phase
            reads SPE (below it the residual tail is background).
        forced_onsets: extra deterministic onset times (mission seconds),
            merged with the stochastic draw — the benchmark/test hook for
            "an SPE begins at day 3 sharp".
    """

    onset_rate_per_day: float = 0.02
    peak_storm_scale: float = 100.0
    decay_tau_s: float = 6 * 3600.0
    active_scale: float = 2.0
    forced_onsets: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.onset_rate_per_day < 0:
            raise ConfigError("SPE onset rate must be non-negative")
        if self.decay_tau_s <= 0:
            raise ConfigError("SPE decay constant must be positive")
        if not self.peak_storm_scale > self.active_scale > 1.0:
            raise ConfigError(
                "need peak_storm_scale > active_scale > 1 (the event must "
                "start active and eventually decay back to background)"
            )
        if any(t < 0 for t in self.forced_onsets):
            raise ConfigError("forced SPE onsets must be at t >= 0")

    @property
    def active_duration_s(self) -> float:
        """How long one isolated event stays above ``active_scale``."""
        return self.decay_tau_s * math.log(
            (self.peak_storm_scale - 1.0) / (self.active_scale - 1.0)
        )


@dataclass(frozen=True)
class SubsystemSensitivity:
    """How strongly one subsystem feels each enhancement.

    Attributes:
        saa: scale on the SAA trapped-proton enhancement (1.0 = the flux
            model's full ``saa_multiplier``).
        storm: scale on the SPE solar enhancement.
    """

    saa: float = 1.0
    storm: float = 1.0

    def __post_init__(self) -> None:
        if self.saa < 0 or self.storm < 0:
            raise ConfigError("subsystem sensitivities must be >= 0")


#: Default per-subsystem sensitivities.  Trapped protons (SAA) are felt
#: most by large DRAM arrays and analog sensors; SPE heavy ions punch
#: through to flip-flops and are the dominant latch-up ("board") driver.
DEFAULT_SENSITIVITY: dict[str, SubsystemSensitivity] = {
    "ram": SubsystemSensitivity(saa=1.0, storm=1.0),
    "register": SubsystemSensitivity(saa=0.7, storm=1.4),
    "sensor": SubsystemSensitivity(saa=1.2, storm=1.8),
    "board": SubsystemSensitivity(saa=1.0, storm=2.5),
}

#: SPE onsets are drawn in fixed blocks of this length, each from its own
#: deterministic (seed, block-index) stream — query order cannot change
#: the schedule.
ONSET_BLOCK_S = 7 * SECONDS_PER_DAY

#: Stream-domain tag separating SPE onset draws from every other consumer
#: of the same integer seed.
_SPE_STREAM = 0x5BE

#: Storm-tail contributions below this are treated as fully decayed.
_TAIL_EPS = 1e-9


@dataclass(frozen=True)
class PhaseSegment:
    """One maximal interval with a constant phase label.

    Within a segment the multiplier is monotonically non-increasing (the
    only time-varying term is storm decay), so its maximum is at ``t0``.
    """

    t0: float
    t1: float
    phase: MissionPhase
    in_saa: bool
    spe_active: bool

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


@dataclass
class PhaseProfile:
    """Exact integral of one subsystem's multiplier over a window.

    Attributes:
        t0 / t1: the window.
        subsystem: which sensitivity the numbers are for.
        seconds: occupancy per phase (sums to ``t1 - t0``).
        integral: ``∫ multiplier dt`` in multiplier-seconds — multiply by
            a base event rate (events/s) to get expected event counts.
        peak_multiplier: maximum instantaneous multiplier in the window
            (the thinning bound).
    """

    t0: float
    t1: float
    subsystem: str
    seconds: dict[MissionPhase, float] = field(
        default_factory=lambda: {p: 0.0 for p in MissionPhase}
    )
    integral: float = 0.0
    peak_multiplier: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    @property
    def mean_multiplier(self) -> float:
        return self.integral / self.duration_s if self.duration_s else 0.0

    def occupancy(self, phase: MissionPhase) -> float:
        """Fraction of the window spent in ``phase``."""
        if not self.duration_s:
            return 0.0
        return self.seconds[phase] / self.duration_s


class EnvironmentTimeline:
    """Seeded piecewise phase schedule driving rates and policies.

    Attributes:
        orbit: SAA geometry (None disables SAA passes — deep space).
        flux: source mix and enhancement anchors.
        spe: the stochastic SPE process (None disables storms).
        seed: integer seed for the onset draw (a timeline must be
            replayable from its configuration, so only plain integers are
            accepted — not live generator objects).
        sensitivity: per-subsystem sensitivity map.
        constant_storm: hold the solar term at the flux model's full
            ``storm_multiplier`` for the whole mission (the back-compat
            rendering of the deprecated ``Environment.storm_active``).
        name: label for reports and benchmark tables.
    """

    def __init__(
        self,
        orbit: LeoOrbit | None = None,
        flux: FluxModel | None = None,
        spe: SpeModel | None = None,
        seed: int = 0,
        sensitivity: dict[str, SubsystemSensitivity] | None = None,
        constant_storm: bool = False,
        name: str = "timeline",
    ) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigError(
                "timeline seed must be a plain integer (the schedule must "
                "be replayable from configuration alone)"
            )
        self.name = name
        self.orbit = orbit
        self.flux = flux if flux is not None else FluxModel()
        self.spe = spe
        self.seed = int(seed)
        self.sensitivity = dict(sensitivity or DEFAULT_SENSITIVITY)
        if not self.sensitivity:
            raise ConfigError("sensitivity map must not be empty")
        self.constant_storm = constant_storm
        self._onset_blocks: dict[int, tuple[float, ...]] = {}

    # -- SPE onset process -----------------------------------------------------

    def _block_onsets(self, block: int) -> tuple[float, ...]:
        """Stochastic onsets inside block ``block`` (cached, deterministic)."""
        cached = self._onset_blocks.get(block)
        if cached is not None:
            return cached
        assert self.spe is not None
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _SPE_STREAM, block])
        )
        rate_per_s = self.spe.onset_rate_per_day / SECONDS_PER_DAY
        n = int(rng.poisson(rate_per_s * ONSET_BLOCK_S))
        t0 = block * ONSET_BLOCK_S
        onsets = tuple(sorted(t0 + rng.uniform(0.0, ONSET_BLOCK_S, n)))
        self._onset_blocks[block] = onsets
        return onsets

    def _tail_s(self) -> float:
        """Look-back beyond which an old event's contribution is dust."""
        assert self.spe is not None
        return self.spe.decay_tau_s * math.log(
            (self.spe.peak_storm_scale - 1.0) / _TAIL_EPS
        )

    def onsets_in(self, t0: float, t1: float) -> list[float]:
        """All SPE onset times in ``[t0, t1)`` (forced + stochastic)."""
        self._check_window(t0, t1)
        if self.spe is None:
            return []
        first = max(0, int(t0 // ONSET_BLOCK_S))
        last = int(t1 // ONSET_BLOCK_S)
        onsets = [
            t
            for block in range(first, last + 1)
            for t in self._block_onsets(block)
        ]
        onsets.extend(self.spe.forced_onsets)
        return sorted(t for t in set(onsets) if t0 <= t < t1)

    def _relevant_onsets(self, t0: float, t1: float) -> list[float]:
        """Onsets whose decay tail can still matter anywhere in [t0, t1)."""
        if self.spe is None:
            return []
        return self.onsets_in(max(0.0, t0 - self._tail_s()), t1)

    def storm_scale_at(self, t: float) -> float:
        """Solar source-term multiplier at ``t`` (1.0 = quiet sun)."""
        self._check_time(t)
        if self.constant_storm:
            return self.flux.storm_multiplier
        if self.spe is None:
            return 1.0
        return 1.0 + self._storm_excess(
            t, [o for o in self._relevant_onsets(0.0, t + 1.0) if o <= t]
        )

    def _storm_excess(self, t: float, onsets_before: list[float]) -> float:
        """``storm scale - 1`` at ``t`` from the given onsets (all <= t)."""
        assert self.spe is not None
        peak, tau = self.spe.peak_storm_scale, self.spe.decay_tau_s
        return sum(
            (peak - 1.0) * math.exp(-(t - onset) / tau)
            for onset in onsets_before
        )

    def spe_intervals(self, t0: float, t1: float) -> list[tuple[float, float]]:
        """Maximal intervals of ``[t0, t1)`` where the SPE phase is active.

        Exact (closed form): with onsets :math:`o_i`, the excess scale is
        :math:`\\sum_i (P-1) e^{-(t-o_i)/\\tau}`, so the decay crossing of
        ``active_scale`` after a run of overlapping events is
        :math:`o_n + \\tau \\ln(W / (A-1))` for the accumulated weight
        ``W`` at the last onset.
        """
        self._check_window(t0, t1)
        if self.constant_storm:
            return [(t0, t1)] if t0 < t1 else []
        if self.spe is None:
            return []
        peak, tau = self.spe.peak_storm_scale, self.spe.decay_tau_s
        threshold = self.spe.active_scale - 1.0
        intervals: list[tuple[float, float]] = []
        start: float | None = None
        end = -math.inf
        weight = 0.0
        last_onset: float | None = None
        for onset in self._relevant_onsets(t0, t1):
            if last_onset is not None:
                weight *= math.exp(-(onset - last_onset) / tau)
            if onset > end and start is not None:
                intervals.append((start, end))
                start = None
            if onset > end:
                weight = 0.0
            weight += peak - 1.0
            last_onset = onset
            if start is None:
                start = onset
            end = onset + tau * math.log(weight / threshold)
        if start is not None:
            intervals.append((start, end))
        clipped = [
            (max(a, t0), min(b, t1))
            for a, b in intervals
            if b > t0 and a < t1
        ]
        return [(a, b) for a, b in clipped if b > a]

    # -- instantaneous queries -------------------------------------------------

    def _check_time(self, t: float) -> None:
        if t < 0:
            raise ConfigError(f"mission time must be >= 0, got {t}")

    def _check_window(self, t0: float, t1: float) -> None:
        self._check_time(t0)
        if t1 < t0:
            raise ConfigError(f"window end {t1} precedes start {t0}")

    def _in_saa(self, t: float) -> bool:
        from repro.radiation.orbit import OrbitPhase

        return (
            self.orbit is not None
            and self.orbit.phase_at(t) is OrbitPhase.SAA
        )

    def _spe_active(self, t: float) -> bool:
        if self.constant_storm:
            return True
        if self.spe is None:
            return False
        return self.storm_scale_at(t) >= self.spe.active_scale

    def phase_at(self, t: float) -> MissionPhase:
        """Phase label at mission time ``t`` (SPE > SAA > QUIET)."""
        self._check_time(t)
        if self._spe_active(t):
            return MissionPhase.SPE
        if self._in_saa(t):
            return MissionPhase.SAA
        return MissionPhase.QUIET

    def _sensitivity_for(self, subsystem: str) -> SubsystemSensitivity:
        try:
            return self.sensitivity[subsystem]
        except KeyError:
            raise ConfigError(
                f"unknown subsystem {subsystem!r}; configured: "
                f"{sorted(self.sensitivity)}"
            ) from None

    def multiplier_at(self, t: float, subsystem: str = "ram") -> float:
        """Instantaneous rate multiplier for ``subsystem`` at ``t``."""
        self._check_time(t)
        sens = self._sensitivity_for(subsystem)
        saa_factor = 1.0
        if self._in_saa(t):
            saa_factor = 1.0 + (self.flux.saa_multiplier - 1.0) * sens.saa
        storm_factor = 1.0 + (self.storm_scale_at(t) - 1.0) * sens.storm
        return self.flux.rate_multiplier_scaled(saa_factor, storm_factor)

    # -- segmentation & integration --------------------------------------------

    def segments(self, t0: float, t1: float) -> list[PhaseSegment]:
        """Piecewise-constant phase decomposition of ``[t0, t1)``.

        Segment boundaries are SAA entries/exits, SPE onsets and the
        exact decay crossings of ``active_scale``; every segment carries
        one phase label and a monotone non-increasing multiplier.
        """
        self._check_window(t0, t1)
        if t1 == t0:
            return []
        cuts = {t0, t1}
        if self.orbit is not None:
            for a, b in self.orbit.saa_windows(t0, t1):
                cuts.add(a)
                cuts.add(b)
        spe_intervals = self.spe_intervals(t0, t1)
        for a, b in spe_intervals:
            cuts.add(a)
            cuts.add(b)
        for onset in self.onsets_in(t0, t1):
            cuts.add(onset)
        edges = sorted(cuts)
        segments = []
        for a, b in zip(edges[:-1], edges[1:]):
            mid = (a + b) / 2.0
            in_saa = self._in_saa(mid)
            spe_active = any(s <= mid < e for s, e in spe_intervals)
            if spe_active:
                phase = MissionPhase.SPE
            elif in_saa:
                phase = MissionPhase.SAA
            else:
                phase = MissionPhase.QUIET
            segments.append(PhaseSegment(a, b, phase, in_saa, spe_active))
        return segments

    def phase_profile(
        self, t0: float, t1: float, subsystem: str = "ram"
    ) -> PhaseProfile:
        """Exact per-phase occupancy and multiplier integral over a window.

        The storm term integrates in closed form (sum of exponentials),
        so ``integral`` carries no quadrature error; ``peak_multiplier``
        is exact because the multiplier is non-increasing within each
        segment (its maximum sits at a segment start).
        """
        sens = self._sensitivity_for(subsystem)
        profile = PhaseProfile(t0=t0, t1=t1, subsystem=subsystem)
        if t1 == t0:
            self._check_window(t0, t1)
            return profile
        flux = self.flux
        tau = self.spe.decay_tau_s if self.spe is not None else 1.0
        for seg in self.segments(t0, t1):
            profile.seconds[seg.phase] += seg.duration_s
            saa_factor = 1.0
            if seg.in_saa:
                saa_factor = 1.0 + (flux.saa_multiplier - 1.0) * sens.saa
            base = flux.rate_multiplier_scaled(saa_factor, 1.0)
            profile.integral += base * seg.duration_s
            if self.constant_storm:
                excess_start = flux.storm_multiplier - 1.0
                storm_integral = excess_start * seg.duration_s
            elif self.spe is not None:
                onsets = [
                    o
                    for o in self._relevant_onsets(0.0, seg.t0 + 1.0)
                    if o <= seg.t0
                ]
                excess_start = self._storm_excess(seg.t0, onsets)
                excess_end = excess_start * math.exp(-seg.duration_s / tau)
                storm_integral = tau * (excess_start - excess_end)
            else:
                excess_start = 0.0
                storm_integral = 0.0
            profile.integral += (
                flux.solar_fraction * sens.storm * storm_integral
            )
            profile.peak_multiplier = max(
                profile.peak_multiplier,
                base + flux.solar_fraction * sens.storm * excess_start,
            )
        return profile

    def max_multiplier(
        self, t0: float, t1: float, subsystem: str = "ram"
    ) -> float:
        """Exact upper bound of the multiplier over ``[t0, t1)``."""
        if t1 == t0:
            self._check_window(t0, t1)
            return self.multiplier_at(t0, subsystem)
        return self.phase_profile(t0, t1, subsystem).peak_multiplier

    def expected_events(
        self,
        base_rate_per_s: float,
        t0: float,
        t1: float,
        subsystem: str = "ram",
    ) -> float:
        """Expected event count for a quiet-baseline rate over a window."""
        if base_rate_per_s < 0:
            raise ConfigError("base rate must be non-negative")
        return base_rate_per_s * self.phase_profile(t0, t1, subsystem).integral


def sample_arrivals(
    timeline: EnvironmentTimeline,
    t0: float,
    t1: float,
    base_rate_per_s: float,
    rng: np.random.Generator,
    subsystem: str = "ram",
) -> np.ndarray:
    """Non-homogeneous Poisson arrivals in ``[t0, t1)`` by thinning.

    Candidates are drawn homogeneously at the window's exact peak rate
    (``base_rate_per_s * max_multiplier``), then each is accepted with
    probability ``multiplier(t) / peak`` — the classic Lewis-Shedler
    construction.  All draws happen in a fixed order (count, times,
    acceptance uniforms), so the result is byte-reproducible from the
    generator state: the parent can draw arrivals once and fan the trials
    out to any number of workers.
    """
    if base_rate_per_s < 0:
        raise ConfigError("base rate must be non-negative")
    timeline._check_window(t0, t1)
    duration = t1 - t0
    if duration == 0.0 or base_rate_per_s == 0.0:
        return np.empty(0)
    peak = timeline.max_multiplier(t0, t1, subsystem)
    n = int(rng.poisson(base_rate_per_s * peak * duration))
    if n == 0:
        return np.empty(0)
    times = np.sort(rng.uniform(t0, t1, n))
    accept = rng.uniform(0.0, 1.0, n)
    keep = np.array([
        accept[i] * peak < timeline.multiplier_at(times[i], subsystem)
        for i in range(n)
    ])
    return times[keep]
