"""Particle-flux and upset-rate models.

A full CREME96 transport calculation is out of scope (and proprietary
cross-section data would be required); instead the model combines the three
source terms the paper names — trapped protons, galactic cosmic rays, and
solar particle events — as multiplicative factors on a calibrated baseline
upset rate.  The baseline is the paper's own number for the Snapdragon 801
in LEO: 1.578e-6 upsets per bit per day.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import SECONDS_PER_DAY

#: Sect. 4: "the chance of a SEU on the Snapdragon 801 is roughly
#: 1.578e-6 per bit, per day" (CREME-class simulation, LEO).
SEU_RATE_SNAPDRAGON_PER_BIT_DAY = 1.578e-6

#: Rad-hard parts upset far less; calibrated so a Perseverance-class
#: computer sees ~1 correctable upset per sol across its protected memory.
RAD_HARD_SUPPRESSION = 1e-3


@dataclass(frozen=True)
class FluxModel:
    """Relative contributions of the three radiation sources.

    Attributes:
        trapped_fraction: share of the baseline due to trapped protons
            (dominant inside the South Atlantic Anomaly).
        gcr_fraction: galactic cosmic ray share (always on).
        solar_fraction: quiet-sun solar share.
        saa_multiplier: factor applied to the trapped term inside an SAA
            pass.
        storm_multiplier: factor applied to the solar term during a solar
            particle event.
    """

    trapped_fraction: float = 0.55
    gcr_fraction: float = 0.35
    solar_fraction: float = 0.10
    saa_multiplier: float = 20.0
    storm_multiplier: float = 100.0

    def __post_init__(self) -> None:
        total = self.trapped_fraction + self.gcr_fraction + self.solar_fraction
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"source fractions must sum to 1, got {total}"
            )

    def rate_multiplier(self, in_saa: bool, in_storm: bool) -> float:
        """Current rate as a multiple of the quiet-orbit baseline."""
        return self.rate_multiplier_scaled(
            saa_factor=self.saa_multiplier if in_saa else 1.0,
            storm_factor=self.storm_multiplier if in_storm else 1.0,
        )

    def rate_multiplier_scaled(
        self, saa_factor: float = 1.0, storm_factor: float = 1.0
    ) -> float:
        """Rate multiplier with continuous source-term enhancements.

        The boolean :meth:`rate_multiplier` is the special case where the
        factors are either 1 or the full configured multipliers; the
        timeline needs the continuum — a decaying storm enhances the
        solar term by a factor that slides from ``storm_multiplier`` back
        to 1, and subsystem sensitivities scale the enhancements
        per target.
        """
        if saa_factor < 0 or storm_factor < 0:
            raise ConfigError("enhancement factors must be >= 0")
        return (
            self.trapped_fraction * saa_factor
            + self.gcr_fraction
            + self.solar_fraction * storm_factor
        )


def seu_rate_per_bit_day(
    rad_hard: bool = False,
    multiplier: float = 1.0,
    baseline: float = SEU_RATE_SNAPDRAGON_PER_BIT_DAY,
) -> float:
    """Upset rate per bit per day for a device class and environment."""
    rate = baseline * multiplier
    if rad_hard:
        rate *= RAD_HARD_SUPPRESSION
    return rate


def seu_rate_per_bit_second(
    rad_hard: bool = False,
    multiplier: float = 1.0,
    baseline: float = SEU_RATE_SNAPDRAGON_PER_BIT_DAY,
) -> float:
    """Upset rate per bit per second."""
    return seu_rate_per_bit_day(rad_hard, multiplier, baseline) / SECONDS_PER_DAY


def expected_upsets(
    n_bits: int,
    duration_days: float,
    rad_hard: bool = False,
    multiplier: float = 1.0,
) -> float:
    """Expected upset count over a memory of ``n_bits`` for a duration."""
    if n_bits < 0 or duration_days < 0:
        raise ConfigError("bits and duration must be non-negative")
    return seu_rate_per_bit_day(rad_hard, multiplier) * n_bits * duration_days
