"""repro: software protection against space radiation.

A complete reproduction of the systems proposed in "Mars Attacks! Software
Protection Against Space Radiation" (HotNets '23): SEL detection from
software-extractable metrics, tunable double modular redundancy, quantized
data-flow checking, coprocessor-based memory scrubbing, a static SEU risk
analysis — plus every substrate they need (an SSA compiler IR, a machine
emulator with cache plugin and fault port, ECC codecs, paged memory, a
hardware power/thermal model, anomaly detectors, and a radiation
environment model).

Quickstart::

    from repro import ProtectedProgram, ProtectionLevel, build_program

    module = build_program("fact")
    prog = ProtectedProgram(module, "fact", ProtectionLevel.BB_CFI)
    print(prog.overhead((12,)))           # cycle overhead factor
    print(prog.campaign((12,)).counts)    # fault-injection outcomes
"""

__version__ = "1.0.0"

# The paper's contributions.
from repro.core.dmr import ProtectedProgram, ProtectionLevel, instrument_module
from repro.core.quantize import QuantizedProgram, instrument_quantized
from repro.core.risk import rate_function, rate_blocks, rate_sccs, rate_module
from repro.core.sel import (
    SelDaemon, DaemonConfig, SelTrialConfig, SelFleetService, FleetMember,
    run_detection_trial, train_detector_on_clean_trace,
)
from repro.core.scrubber import (
    ScrubSimConfig, run_scrub_simulation, KernelScrubModule,
)

# Workloads and fault injection.
from repro.workloads import PROGRAMS, build_program, build_suite, golden_run
from repro.faults import (
    Campaign, run_campaign, run_campaign_parallel,
    run_supervised_campaign_parallel, FaultTarget, FaultOutcome, FaultSpec,
)
from repro.perf import GOLDEN_CACHE, module_fingerprint

# Recovery & supervision.
from repro.recover import (
    AdaptiveConfig, AdaptiveController, CheckpointManager, EscalationLadder,
    LadderConfig, RecoveryParams, RecoveryRung, Supervisor, SupervisorConfig,
    run_supervised_campaign,
)

# Mission-level simulation.
from repro.sim import (
    MissionConfig, ProtectionProfile, run_mission, render_mission_table,
    UNPROTECTED_COMMODITY, PROTECTED_COMMODITY, RAD_HARD_BASELINE,
    SUPERVISED_COMMODITY,
)

__all__ = [
    "__version__",
    # core
    "ProtectedProgram", "ProtectionLevel", "instrument_module",
    "QuantizedProgram", "instrument_quantized",
    "rate_function", "rate_blocks", "rate_sccs", "rate_module",
    "SelDaemon", "DaemonConfig", "SelTrialConfig",
    "SelFleetService", "FleetMember",
    "run_detection_trial", "train_detector_on_clean_trace",
    "ScrubSimConfig", "run_scrub_simulation", "KernelScrubModule",
    # workloads / faults
    "PROGRAMS", "build_program", "build_suite", "golden_run",
    "Campaign", "run_campaign", "run_campaign_parallel",
    "run_supervised_campaign_parallel", "FaultTarget", "FaultOutcome",
    "FaultSpec", "GOLDEN_CACHE", "module_fingerprint",
    # recovery
    "AdaptiveConfig", "AdaptiveController", "CheckpointManager",
    "EscalationLadder", "LadderConfig", "RecoveryParams", "RecoveryRung",
    "Supervisor", "SupervisorConfig", "run_supervised_campaign",
    # mission
    "MissionConfig", "ProtectionProfile", "run_mission",
    "render_mission_table",
    "UNPROTECTED_COMMODITY", "PROTECTED_COMMODITY", "RAD_HARD_BASELINE",
    "SUPERVISED_COMMODITY",
]
