"""Bit-level abstract domains: known bits (value range / parity) + demanded bits.

Two complementary per-bit analyses feed the fault-masking prover
(:mod:`repro.analysis.masking`):

* **Known bits** (:class:`KnownBitsAnalysis`) — a forward dataflow domain
  over the framework of :mod:`repro.analysis.dataflow`.  Each integer SSA
  value maps to a :class:`KnownBits` fact recording which bits are
  provably 0 / provably 1 in *every* fault-free execution.  Constants,
  logical ops (``and``/``or``/``xor``), constant shifts, low-bit carry
  propagation through ``add``/``sub``/``mul`` and cast masking are
  modelled; everything else falls to ⊤ (nothing known).  The unsigned /
  signed value range and the parity (bit 0) of a value fall out of the
  same fact — see :meth:`KnownBits.signed_range` and
  :meth:`KnownBits.parity`.

* **Demanded bits** (:func:`demanded_bits`) — a backward fixpoint over
  the SSA use-def graph computing, per value, the mask of result bits
  that can possibly influence any observable (return value, branch
  direction, memory traffic, call arguments, trap behavior).  A flip of
  a bit *outside* a value's demanded mask provably changes no observable:
  every user consumes the corrupted value through an operation that masks
  the bit out again.  Only *literal-constant* sibling operands refine the
  propagation (``and x, 0xff`` demands just the low byte of ``x``) — a
  named sibling could itself sit downstream of the flipped value, so its
  known bits may not survive the fault; literals cannot be corrupted.
  The one use of :class:`KnownBits` here is sound for the same reason:
  the ``icmp``-range refinement consults only the *flipped value's own*
  abstraction, which holds for its fault-free pre-flip content.

Soundness contract (inductive, used by the masking prover): if every
operand of an instruction differs from its golden value only in bits
outside its demanded mask, the instruction's result differs only in bits
outside *its* demanded mask.  Sinks (ret / br / store / call / trapping
ops) demand every bit, so the conclusion propagates to "no observable
changes".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import DataflowAnalysis, Direction, solve
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, Predicate
from repro.ir.values import Constant, Value


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(pattern: int, width: int) -> int:
    pattern &= _mask(width)
    if pattern >> (width - 1):
        return pattern - (1 << width)
    return pattern


def mask_up_to_msb(demand: int) -> int:
    """All bit positions at or below the highest set bit of ``demand``.

    Carry/borrow chains in ``add``/``sub``/``mul`` propagate strictly
    upward, so a demanded result bit *b* can only be influenced by
    operand bits ≤ *b*.
    """
    if demand == 0:
        return 0
    return (1 << demand.bit_length()) - 1


@dataclass(frozen=True)
class KnownBits:
    """Which bits of one integer value are compile-time known.

    Attributes:
        width: logical bit width of the value.
        zeros: mask of bits provably 0.
        ones: mask of bits provably 1 (disjoint from ``zeros``).
    """

    width: int
    zeros: int
    ones: int

    def __post_init__(self) -> None:
        if self.zeros & self.ones:
            raise ValueError("contradictory known bits")

    @classmethod
    def top(cls, width: int) -> "KnownBits":
        return cls(width, 0, 0)

    @classmethod
    def from_pattern(cls, pattern: int, width: int) -> "KnownBits":
        pattern &= _mask(width)
        return cls(width, _mask(width) & ~pattern, pattern)

    @classmethod
    def from_constant(cls, constant: Constant) -> "KnownBits":
        width = constant.type.bits
        return cls.from_pattern(int(constant.value), width)

    @property
    def known(self) -> int:
        return self.zeros | self.ones

    @property
    def is_top(self) -> bool:
        return self.known == 0

    @property
    def is_constant(self) -> bool:
        return self.known == _mask(self.width)

    @property
    def parity(self) -> int | None:
        """0/1 when bit 0 is known (the value's parity), else None."""
        if self.zeros & 1:
            return 0
        if self.ones & 1:
            return 1
        return None

    def join(self, other: "KnownBits") -> "KnownBits":
        """Least upper bound: keep only agreement (CFG-merge meet)."""
        if self.width != other.width:
            raise ValueError("width mismatch in KnownBits.join")
        return KnownBits(
            self.width, self.zeros & other.zeros, self.ones & other.ones
        )

    def signed_range(self) -> tuple[int, int]:
        """Tight signed [lo, hi] interval containing every concretization."""
        unknown = _mask(self.width) & ~self.known
        sign = 1 << (self.width - 1) if self.width > 1 else 1
        lo = self.ones | (unknown & sign)
        hi = self.ones | (unknown & ~sign)
        return _signed(lo, self.width), _signed(hi, self.width)


# -- known-bits transfer functions ---------------------------------------------


def _kb_and(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.zeros | b.zeros, a.ones & b.ones)


def _kb_or(a: KnownBits, b: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.zeros & b.zeros, a.ones | b.ones)


def _kb_xor(a: KnownBits, b: KnownBits) -> KnownBits:
    ones = (a.ones & b.zeros) | (a.zeros & b.ones)
    zeros = (a.zeros & b.zeros) | (a.ones & b.ones)
    return KnownBits(a.width, zeros, ones)


def _trailing_known(a: KnownBits, b: KnownBits) -> int:
    """Number of consecutive low bits known in both operands."""
    known = a.known & b.known
    count = 0
    while count < a.width and (known >> count) & 1:
        count += 1
    return count


def _kb_addsub(a: KnownBits, b: KnownBits, sub: bool) -> KnownBits:
    width = a.width
    t = _trailing_known(a, b)
    if t == 0:
        return KnownBits.top(width)
    low = _mask(t)
    value = (a.ones - b.ones) if sub else (a.ones + b.ones)
    value &= low
    return KnownBits(width, low & ~value, value)


def _kb_mul(a: KnownBits, b: KnownBits) -> KnownBits:
    width = a.width
    # Low bits of a product depend only on equally-low bits of both
    # factors, so the jointly-known low window is exact.
    t = _trailing_known(a, b)
    zeros = 0
    ones = 0
    if t:
        low = _mask(t)
        value = (a.ones * b.ones) & low
        zeros |= low & ~value
        ones |= value
    # Trailing known zeros add: tz(x*y) >= tz(x) + tz(y).
    tz_a = _trailing_known(KnownBits(a.width, a.zeros, 0), KnownBits(a.width, a.zeros, 0))
    tz_b = _trailing_known(KnownBits(b.width, b.zeros, 0), KnownBits(b.width, b.zeros, 0))
    tz = min(tz_a + tz_b, width)
    zeros |= _mask(tz) & ~ones
    return KnownBits(width, zeros, ones)


def _kb_shift(op: Opcode, a: KnownBits, amount: KnownBits) -> KnownBits:
    width = a.width
    if not amount.is_constant:
        return KnownBits.top(width)
    s = amount.ones & (width - 1)
    if op is Opcode.SHL:
        ones = (a.ones << s) & _mask(width)
        zeros = ((a.zeros << s) & _mask(width)) | _mask(s)
        return KnownBits(width, zeros, ones)
    if op is Opcode.LSHR:
        high = (_mask(s) << (width - s)) & _mask(width) if s else 0
        return KnownBits(width, (a.zeros >> s) | high, a.ones >> s)
    # ASHR: the vacated top bits replicate the sign bit.
    sign = 1 << (width - 1)
    keep = _mask(width - s) if s else _mask(width)
    fill = _mask(width) & ~keep
    if a.zeros & sign:
        return KnownBits(width, (a.zeros >> s) | fill, a.ones >> s)
    if a.ones & sign:
        return KnownBits(width, (a.zeros >> s) & keep, (a.ones >> s) | fill)
    return KnownBits(width, (a.zeros >> s) & keep, (a.ones >> s) & keep)


def _kb_icmp(instr: Instruction, a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_constant and b.is_constant:
        va = _signed(a.ones, a.width)
        vb = _signed(b.ones, b.width)
        result = {
            Predicate.EQ: va == vb,
            Predicate.NE: va != vb,
            Predicate.LT: va < vb,
            Predicate.LE: va <= vb,
            Predicate.GT: va > vb,
            Predicate.GE: va >= vb,
        }[instr.predicate]
        return KnownBits.from_pattern(int(result), 1)
    disagree = (a.ones & b.zeros) | (a.zeros & b.ones)
    if disagree and instr.predicate in (Predicate.EQ, Predicate.NE):
        return KnownBits.from_pattern(
            int(instr.predicate is Predicate.NE), 1
        )
    return KnownBits.top(1)


def transfer_instruction(
    instr: Instruction, lookup
) -> KnownBits | None:
    """Known bits of ``instr``'s result given an operand-fact ``lookup``.

    Returns None for results the domain does not track (floats, pointers,
    void).  ``lookup(value)`` must return a :class:`KnownBits` for integer
    operands (⊤ when nothing is known).
    """
    if not instr.defines_value or not instr.type.is_int:
        return None
    width = instr.type.bits
    op = instr.opcode
    if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
        a, b = lookup(instr.operands[0]), lookup(instr.operands[1])
        return {Opcode.AND: _kb_and, Opcode.OR: _kb_or, Opcode.XOR: _kb_xor}[
            op
        ](a, b)
    if op in (Opcode.ADD, Opcode.SUB):
        a, b = lookup(instr.operands[0]), lookup(instr.operands[1])
        return _kb_addsub(a, b, sub=op is Opcode.SUB)
    if op is Opcode.MUL:
        return _kb_mul(lookup(instr.operands[0]), lookup(instr.operands[1]))
    if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        return _kb_shift(
            op, lookup(instr.operands[0]), lookup(instr.operands[1])
        )
    if op is Opcode.TRUNC:
        a = lookup(instr.operands[0])
        return KnownBits(width, a.zeros & _mask(width), a.ones & _mask(width))
    if op is Opcode.ZEXT:
        a = lookup(instr.operands[0])
        src_mask = _mask(a.width)
        return KnownBits(
            width,
            (a.zeros & src_mask) | (_mask(width) & ~src_mask),
            a.ones & src_mask,
        )
    if op is Opcode.ICMP:
        a, b = lookup(instr.operands[0]), lookup(instr.operands[1])
        if a is None or b is None:  # float-typed compare routed to FCMP
            return KnownBits.top(1)
        return _kb_icmp(instr, a, b)
    if op is Opcode.SELECT:
        cond = lookup(instr.operands[0])
        then = lookup(instr.operands[1])
        other = lookup(instr.operands[2])
        if cond.is_constant:
            return then if cond.ones & 1 else other
        return then.join(other)
    # sdiv/srem/loads/calls/fptosi/mag/...: nothing modelled.
    return KnownBits.top(width)


class KnownBitsAnalysis(DataflowAnalysis[dict]):
    """Forward known-bits over integer SSA values.

    Facts are mappings ``name -> KnownBits`` holding only *informative*
    entries (⊤ entries are dropped, so equal information compares equal);
    a missing name means ⊤.  Phi results are bound on the incoming edges
    via :meth:`edge_fact`, exactly like SSA liveness handles phi uses.
    """

    direction = Direction.FORWARD

    def boundary(self, func: Function) -> dict:
        return {}

    def initial(self, func: Function) -> dict:
        return {}

    def meet(self, a: dict, b: dict) -> dict:
        merged: dict[str, KnownBits] = {}
        for name in a.keys() & b.keys():
            joined = a[name].join(b[name])
            if not joined.is_top:
                merged[name] = joined
        return merged

    def _lookup(self, fact: dict, value: Value) -> KnownBits | None:
        if isinstance(value, Constant):
            if not value.type.is_int:
                return None
            return KnownBits.from_constant(value)
        if not value.type.is_int:
            return None
        kb = fact.get(value.name)
        if kb is None:
            return KnownBits.top(value.type.bits)
        return kb

    def transfer(self, block: BasicBlock, fact: dict) -> dict:
        out = dict(fact)
        for instr in block.body:
            if not instr.defines_value:
                continue
            kb = transfer_instruction(instr, lambda v: self._lookup(out, v))
            if kb is not None and not kb.is_top:
                out[instr.name] = kb
            else:
                out.pop(instr.name, None)
        return out

    def edge_fact(self, src: BasicBlock, dst: BasicBlock, fact: dict) -> dict:
        out = None
        for phi in dst.phis:
            if not phi.type.is_int:
                continue
            for value, pred in phi.phi_incoming():
                if pred is not src:
                    continue
                kb = self._lookup(fact, value)
                if kb is not None and not kb.is_top:
                    if out is None:
                        out = dict(fact)
                    out[phi.name] = kb
        return fact if out is None else out


def known_bits(func: Function) -> dict[str, KnownBits]:
    """Flow-insensitive known-bits summary: one fact per integer value.

    Each SSA value is immutable, so the fact at its definition holds
    wherever the value exists; phi facts are read at their block's entry.
    Names absent from the result are ⊤ (or not integer-typed).
    """
    result = solve(func, KnownBitsAnalysis())
    summary: dict[str, KnownBits] = {}
    for block in func.blocks:
        in_fact = result.in_facts[block.name]
        out_fact = result.out_facts[block.name]
        for phi in block.phis:
            kb = in_fact.get(phi.name)
            if kb is not None and not kb.is_top:
                summary[phi.name] = kb
        for instr in block.body:
            if instr.defines_value:
                kb = out_fact.get(instr.name)
                if kb is not None and not kb.is_top:
                    summary[instr.name] = kb
    return summary


# -- demanded bits -------------------------------------------------------------

#: Opcodes whose named operands are always fully demanded: they reach
#: memory, control flow or calls, or can trap on operand values.
_FULL_DEMAND = frozenset({
    Opcode.SDIV, Opcode.SREM, Opcode.FADD, Opcode.FSUB, Opcode.FMUL,
    Opcode.FDIV, Opcode.FCMP, Opcode.SITOFP, Opcode.FPTOSI,
    Opcode.ALLOC, Opcode.LOAD, Opcode.STORE, Opcode.GEP,
    Opcode.RET, Opcode.CALL, Opcode.MAG, Opcode.SIGN, Opcode.BR,
})


def _icmp_insensitive_bits(
    kb: KnownBits, predicate: Predicate, constant: int, flipped_side_right: bool
) -> int:
    """Mask of bits of the compared value whose flips provably cannot
    change the predicate outcome, given the value's own known bits.

    ``constant`` is the literal the value is compared against (signed);
    ``flipped_side_right`` is True for ``icmp C, x`` (the value on the
    right), which mirrors the ordering predicates.

    The returned mask is *jointly* safe: flipping any subset of its bits
    at once leaves the predicate unchanged.  This matters because the
    result feeds the demanded-bits invariant, under which a downstream
    value may differ from its golden content in several non-demanded
    bits simultaneously — individually-safe bits whose deltas add up to
    cross the comparison threshold would be unsound.
    """
    if flipped_side_right:
        predicate = {
            Predicate.LT: Predicate.GT, Predicate.GT: Predicate.LT,
            Predicate.LE: Predicate.GE, Predicate.GE: Predicate.LE,
            Predicate.EQ: Predicate.EQ, Predicate.NE: Predicate.NE,
        }[predicate]
    width = kb.width
    lo, hi = kb.signed_range()
    sign = width - 1
    c = constant

    def same_side(shift_lo: int, shift_hi: int) -> bool:
        """Whether [lo+shift_lo, hi+shift_hi] ∪ [lo, hi] is decided."""
        lo2, hi2 = lo + shift_lo, hi + shift_hi
        if predicate is Predicate.LT:
            return (hi < c and hi2 < c) or (lo >= c and lo2 >= c)
        if predicate is Predicate.LE:
            return (hi <= c and hi2 <= c) or (lo > c and lo2 > c)
        if predicate is Predicate.GT:
            return (lo > c and lo2 > c) or (hi <= c and hi2 <= c)
        if predicate is Predicate.GE:
            return (lo >= c and lo2 >= c) or (hi < c and hi2 < c)
        # EQ / NE: safe only when the literal is outside both hulls.
        return (c < lo or c > hi) and (c < lo2 or c > hi2)

    insensitive = 0
    acc_lo = 0  # accumulated worst-case negative delta over chosen bits
    acc_hi = 0  # accumulated worst-case positive delta
    # High bits first: they decide feasibility, low bits then usually fit.
    for bit in range(width - 1, -1, -1):
        if not kb.known & (1 << bit):
            # Unknown bit: the concretization set is closed under this
            # flip, so it contributes no delta at all.
            delta = 0
        elif bit == sign:
            delta = -(1 << sign) if kb.zeros & (1 << bit) else (1 << sign)
        else:
            delta = (1 << bit) if kb.zeros & (1 << bit) else -(1 << bit)
        new_lo = acc_lo + min(delta, 0)
        new_hi = acc_hi + max(delta, 0)
        if same_side(new_lo, new_hi):
            insensitive |= 1 << bit
            acc_lo, acc_hi = new_lo, new_hi
    return insensitive


def _operand_demand(
    instr: Instruction,
    index: int,
    operand: Value,
    result_demand: int,
    known: dict[str, KnownBits],
) -> int:
    """Bits of ``operand`` demanded through position ``index`` of ``instr``."""
    width = operand.type.bits if operand.type.is_int else 64
    full = _mask(width)
    op = instr.opcode
    if op in _FULL_DEMAND:
        return full
    if op is Opcode.ICMP:
        sibling = instr.operands[1 - index]
        if isinstance(sibling, Constant) and operand.type.is_int:
            kb = known.get(operand.name, KnownBits.top(width))
            insensitive = _icmp_insensitive_bits(
                kb, instr.predicate, int(sibling.value),
                flipped_side_right=(index == 1),
            )
            return full & ~insensitive
        return full
    if op in (Opcode.JMP, Opcode.TRAP):
        return 0
    if op is Opcode.PHI:
        return result_demand
    if op is Opcode.SELECT:
        return full if index == 0 else result_demand
    if op is Opcode.AND:
        sibling = instr.operands[1 - index]
        if isinstance(sibling, Constant):
            return result_demand & (int(sibling.value) & full)
        return result_demand
    if op is Opcode.OR:
        sibling = instr.operands[1 - index]
        if isinstance(sibling, Constant):
            return result_demand & ~(int(sibling.value) & full)
        return result_demand
    if op is Opcode.XOR:
        return result_demand
    if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        return mask_up_to_msb(result_demand)
    if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        if index == 1:
            # The interpreter masks shift amounts with (width - 1).
            return width - 1
        amount = instr.operands[1]
        if isinstance(amount, Constant):
            s = int(amount.value) & (width - 1)
            if op is Opcode.SHL:
                return (result_demand >> s) & full
            shifted = (result_demand << s) & full
            if op is Opcode.ASHR and s:
                replicated = full & ~_mask(width - s)
                if result_demand & replicated:
                    shifted |= 1 << (width - 1)
            return shifted
        if op is Opcode.SHL:
            return mask_up_to_msb(result_demand)
        return full if result_demand else 0
    if op is Opcode.TRUNC:
        return result_demand & full
    if op is Opcode.ZEXT:
        return result_demand & full
    return full


def demanded_bits(
    func: Function, known: dict[str, KnownBits] | None = None
) -> dict[str, int]:
    """Demanded-bit mask of every integer SSA value of ``func``.

    A bit outside ``demanded[name]`` provably cannot influence any
    observable of the function, under single-fault corruption of that
    value alone (see module docstring for the inductive argument).
    Float- and pointer-typed values are omitted — every bit of those is
    treated as demanded by callers.
    """
    if known is None:
        known = known_bits(func)
    widths: dict[str, int] = {
        arg.name: arg.type.bits for arg in func.args if arg.type.is_int
    }
    for instr in func.instructions():
        if instr.defines_value and instr.type.is_int:
            widths[instr.name] = instr.type.bits
    demanded = {name: 0 for name in widths}

    changed = True
    while changed:
        changed = False
        for instr in func.instructions():
            result_demand = demanded.get(instr.name, 0)
            for index, operand in enumerate(instr.operands):
                if isinstance(operand, Constant):
                    continue
                name = operand.name
                if name not in demanded:
                    continue
                contribution = _operand_demand(
                    instr, index, operand, result_demand, known
                )
                merged = demanded[name] | (contribution & _mask(widths[name]))
                if merged != demanded[name]:
                    demanded[name] = merged
                    changed = True
    return demanded
