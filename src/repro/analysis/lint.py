"""Protection-coverage lint CLI.

Instruments workload programs at a protection level, then lints the
instrumented module against the plans the instrumentation claimed to
apply::

    python -m repro.analysis.lint fact
    python -m repro.analysis.lint all --level all --json
    python -m repro.analysis.lint matmul --level full-dmr --fail-on error

Exit status is non-zero when any finding at or above the ``--fail-on``
threshold (default: warning) was emitted — that is the CI gate: a
correctly instrumented module lints clean.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.linter import lint_module
from repro.analysis.rules import (
    RULES,
    Finding,
    Severity,
    rule_descriptor,
    sarif_log,
)
from repro.core.dmr.instrument import instrument_module
from repro.core.dmr.levels import ALL_LEVELS, ProtectionLevel
from repro.workloads.irprograms import PROGRAMS, build_program

_LEVELS_BY_VALUE = {level.value: level for level in ProtectionLevel}


def _parse_levels(text: str) -> list[ProtectionLevel]:
    if text == "all":
        return list(ALL_LEVELS)
    if text not in _LEVELS_BY_VALUE:
        known = ", ".join(sorted(_LEVELS_BY_VALUE))
        raise SystemExit(f"unknown level {text!r} (choose from: {known}, all)")
    return [_LEVELS_BY_VALUE[text]]


def _parse_programs(text: str) -> list[str]:
    if text == "all":
        return sorted(PROGRAMS)
    if text not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise SystemExit(f"unknown program {text!r} (choose from: {known}, all)")
    return [text]


def _finding_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule.id,
        "severity": finding.severity.value,
        "func": finding.func,
        "block": finding.block,
        "where": finding.where,
        "message": finding.message,
    }


def lint_program(
    name: str, level: ProtectionLevel
) -> list[Finding]:
    """Build, instrument and lint one workload program."""
    module = build_program(name)
    instrumented, plans = instrument_module(module, level)
    return lint_module(instrumented, plans)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="lint DMR-instrumented workload programs for "
                    "protection-coverage gaps",
    )
    parser.add_argument(
        "program", nargs="?", default="all",
        help="workload program name, or 'all' (default)",
    )
    parser.add_argument(
        "--level", default="all",
        help="protection level value (e.g. bb-cfi), or 'all' (default)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="emit a SARIF 2.1.0 log on stdout (overrides --json)",
    )
    parser.add_argument(
        "--fail-on", default="warning",
        choices=["error", "warning", "hint", "none"],
        help="minimum severity that makes the exit status non-zero "
             "(default: warning)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.id} [{rule.severity.value}] {rule.summary}")
            print(f"    fix: {rule.fix_hint}")
        return 0

    programs = _parse_programs(args.program)
    levels = _parse_levels(args.level)

    runs = []
    gate_count = 0
    total = 0
    threshold = (
        None if args.fail_on == "none" else Severity(args.fail_on)
    )
    for name in programs:
        for level in levels:
            findings = lint_program(name, level)
            total += len(findings)
            if threshold is not None:
                gate_count += sum(
                    1 for f in findings
                    if f.severity.rank >= threshold.rank
                )
            runs.append((name, level, findings))

    if args.as_sarif:
        log = sarif_log(
            "repro-lint",
            [rule_descriptor(rule) for rule in RULES.values()],
            [
                {
                    **f.to_sarif(),
                    "properties": {"program": name, "level": level.value},
                }
                for name, level, findings in runs
                for f in findings
            ],
        )
        json.dump(log, sys.stdout, indent=2)
        print()
    elif args.as_json:
        report = {
            "fail_on": args.fail_on,
            "total_findings": total,
            "gating_findings": gate_count,
            "runs": [
                {
                    "program": name,
                    "level": level.value,
                    "findings": [_finding_json(f) for f in findings],
                }
                for name, level, findings in runs
            ],
        }
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        for name, level, findings in runs:
            status = "clean" if not findings else f"{len(findings)} finding(s)"
            print(f"{name} @ {level.value}: {status}")
            for finding in findings:
                print(f"  {finding.format()}")
        print(
            f"{total} finding(s) across {len(runs)} run(s); "
            f"{gate_count} at/above --fail-on={args.fail_on}"
        )
    return 1 if gate_count else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
