"""Static analysis over the IR: dataflow framework, vulnerability
scoring, and the protection-coverage linter.

- :mod:`repro.analysis.dataflow` — generic iterative forward/backward
  solver (worklist, reverse-postorder seeding, meet-over-lattice).
- :mod:`repro.analysis.liveness` / :mod:`repro.analysis.reaching` — the
  canonical backward and forward clients.
- :mod:`repro.analysis.vulnerability` — ACE-style static SEU scoring of
  every register.
- :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — the
  protection-coverage linter and its rule catalog.
- CLIs: ``python -m repro.analysis.lint`` and
  ``python -m repro.analysis.rank``.
"""

from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    is_fixpoint,
    solve,
)
from repro.analysis.linter import (
    gate,
    lint_function,
    lint_module,
    worst_severity,
)
from repro.analysis.liveness import LiveInfo, live_ranges, liveness
from repro.analysis.reaching import ReachingInfo, reaching_definitions
from repro.analysis.rules import RULES, Finding, LintRule, Severity
from repro.analysis.vulnerability import (
    CLASS_WEIGHTS,
    SiteScore,
    VulnerabilityReport,
    analyze_function,
    analyze_module,
)

__all__ = [
    "CLASS_WEIGHTS",
    "RULES",
    "DataflowAnalysis",
    "DataflowResult",
    "Direction",
    "Finding",
    "LintRule",
    "LiveInfo",
    "ReachingInfo",
    "Severity",
    "SiteScore",
    "VulnerabilityReport",
    "analyze_function",
    "analyze_module",
    "gate",
    "is_fixpoint",
    "lint_function",
    "lint_module",
    "live_ranges",
    "liveness",
    "reaching_definitions",
    "solve",
    "worst_severity",
]
