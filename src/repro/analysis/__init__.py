"""Static analysis over the IR: dataflow framework, vulnerability
scoring, and the protection-coverage linter.

- :mod:`repro.analysis.dataflow` — generic iterative forward/backward
  solver (worklist, reverse-postorder seeding, meet-over-lattice).
- :mod:`repro.analysis.liveness` / :mod:`repro.analysis.reaching` — the
  canonical backward and forward clients.
- :mod:`repro.analysis.vulnerability` — ACE-style static SEU scoring of
  every register.
- :mod:`repro.analysis.bitclass` — bit-level known-bits / demanded-bits
  abstract domains.
- :mod:`repro.analysis.masking` — sound per-(site, bit) fault-masking
  classification with AVF upper bounds.
- :mod:`repro.analysis.protect_verify` — translation validation of the
  DMR protection transforms.
- :mod:`repro.analysis.linter` / :mod:`repro.analysis.rules` — the
  protection-coverage linter and its rule catalog.
- CLIs: ``python -m repro.analysis.lint``,
  ``python -m repro.analysis.rank`` and
  ``python -m repro.analysis.verify``.
"""

from repro.analysis.bitclass import (
    KnownBits,
    KnownBitsAnalysis,
    demanded_bits,
    known_bits,
)
from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    is_fixpoint,
    solve,
)
from repro.analysis.linter import (
    gate,
    lint_function,
    lint_module,
    worst_severity,
)
from repro.analysis.liveness import LiveInfo, live_ranges, liveness
from repro.analysis.masking import (
    EXACT_BENIGN,
    PROVEN_BENIGN,
    FunctionMasking,
    MaskClass,
    MaskingReport,
    analyze_masking,
)
from repro.analysis.protect_verify import (
    VerifyFinding,
    VerifyResult,
    verify_protection,
)
from repro.analysis.reaching import ReachingInfo, reaching_definitions
from repro.analysis.rules import (
    RULES,
    Finding,
    LintRule,
    Severity,
    rule_descriptor,
    sarif_log,
)
from repro.analysis.vulnerability import (
    CLASS_WEIGHTS,
    SiteScore,
    VulnerabilityReport,
    analyze_function,
    analyze_module,
)

__all__ = [
    "CLASS_WEIGHTS",
    "EXACT_BENIGN",
    "PROVEN_BENIGN",
    "RULES",
    "DataflowAnalysis",
    "DataflowResult",
    "Direction",
    "Finding",
    "FunctionMasking",
    "KnownBits",
    "KnownBitsAnalysis",
    "LintRule",
    "LiveInfo",
    "MaskClass",
    "MaskingReport",
    "ReachingInfo",
    "Severity",
    "SiteScore",
    "VerifyFinding",
    "VerifyResult",
    "VulnerabilityReport",
    "analyze_function",
    "analyze_masking",
    "analyze_module",
    "demanded_bits",
    "gate",
    "is_fixpoint",
    "known_bits",
    "lint_function",
    "lint_module",
    "live_ranges",
    "liveness",
    "reaching_definitions",
    "rule_descriptor",
    "sarif_log",
    "solve",
    "verify_protection",
    "worst_severity",
]
