"""Static vulnerability ranking CLI.

Scores every register of a workload program with the ACE-style static
analysis and prints the ranking, most-vulnerable first::

    python -m repro.analysis.rank fact
    python -m repro.analysis.rank matmul --top 10 --json

This is the same ranking :func:`repro.faults.campaign.rank_sites` feeds
to fault-injection campaigns, and the one E14 validates against
empirical per-site harm.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.rules import sarif_log
from repro.analysis.vulnerability import SiteScore, analyze_function
from repro.ir.costmodel import CORTEX_A53, ENDUROSAT_OBC
from repro.workloads.irprograms import PROGRAMS, build_program

_COST_MODELS = {"cortex-a53": CORTEX_A53, "endurosat-obc": ENDUROSAT_OBC}


def _site_json(site: SiteScore) -> dict:
    return {
        "name": site.name,
        "func": site.func,
        "block": site.block,
        "opcode": site.opcode,
        "live_cycles": site.live_cycles,
        "fanout": site.fanout,
        "criticality": site.criticality,
        "score": site.score,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.rank",
        description="rank a program's registers by static SEU "
                    "vulnerability",
    )
    parser.add_argument("program", help="workload program name")
    parser.add_argument(
        "--top", type=int, default=0,
        help="print only the N most vulnerable sites (0 = all)",
    )
    parser.add_argument(
        "--cost-model", default="cortex-a53", choices=sorted(_COST_MODELS),
        help="latency model weighting the live windows",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="emit a SARIF 2.1.0 log on stdout (overrides --json)",
    )
    args = parser.parse_args(argv)

    if args.program not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise SystemExit(
            f"unknown program {args.program!r} (choose from: {known})"
        )
    module = build_program(args.program)
    func = module.function(args.program)
    report = analyze_function(func, _COST_MODELS[args.cost_model])
    ranked = report.ranked()
    if args.top > 0:
        ranked = ranked[: args.top]

    if args.as_sarif:
        rule = {
            "id": "RANK001",
            "shortDescription": {
                "text": "register ranked by static SEU vulnerability",
            },
            "defaultConfiguration": {"level": "note"},
        }
        results = [
            {
                "ruleId": "RANK001",
                "level": "note",
                "message": {
                    "text": f"{site.name} scores {site.score:.1f} "
                            f"({site.criticality}, {site.opcode})",
                },
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName":
                            f"@{site.func}:^{site.block} {site.name}",
                        "kind": "function",
                    }],
                }],
                "properties": {
                    "rank": index,
                    "score": site.score,
                    "live_cycles": site.live_cycles,
                    "fanout": site.fanout,
                    "criticality": site.criticality,
                },
            }
            for index, site in enumerate(ranked)
        ]
        json.dump(
            sarif_log("repro-rank", [rule], results), sys.stdout, indent=2
        )
        print()
        return 0

    if args.as_json:
        json.dump(
            {
                "program": args.program,
                "func": func.name,
                "cost_model": args.cost_model,
                "sites": [_site_json(s) for s in ranked],
            },
            sys.stdout,
            indent=2,
        )
        print()
        return 0

    width = max((len(s.name) for s in ranked), default=4)
    print(
        f"{'site':<{width}}  {'score':>10}  {'class':<8}"
        f"  {'live':>6}  {'fanout':>6}  opcode"
    )
    for site in ranked:
        print(
            f"{site.name:<{width}}  {site.score:>10.1f}  "
            f"{site.criticality:<8}  {site.live_cycles:>6}  "
            f"{site.fanout:>6}  {site.opcode}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
