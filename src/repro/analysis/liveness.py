"""Liveness analysis and cost-weighted live ranges.

Backward may-analysis over SSA value *names* (register fault injection
addresses registers by name, so names are the right granularity): a value
is live at a point if some path from that point uses it before redefining
it — in SSA, simply "uses it".

Phi semantics follow the textbook SSA treatment: a phi's incoming value
is a use *on the predecessor edge* it arrives from, and the phi's own
result is defined at the head of its block.  :class:`LivenessAnalysis`
implements that with the framework's ``edge_fact`` hook, so a loop-carried
value is live around the whole loop body but a phi operand is never live
on the edges it does not arrive from.

:func:`live_ranges` turns liveness into the *live window* the ACE-style
vulnerability analysis needs: for every value name, the number of model
cycles (per :class:`repro.ir.costmodel.CostModel`) during which the value
sits exposed in a live register.  Each block is charged once — the static
window deliberately ignores loop trip counts, the same single-visit
policy as :mod:`repro.core.risk.propagate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    solve,
)
from repro.ir.block import BasicBlock
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.function import Function
from repro.ir.values import Constant


def _use_names(instr) -> list[str]:
    """Names of the non-constant operands of one instruction."""
    return [op.name for op in instr.operands if not isinstance(op, Constant)]


class LivenessAnalysis(DataflowAnalysis[frozenset]):
    """Backward liveness over value names."""

    direction = Direction.BACKWARD

    def boundary(self, func: Function) -> frozenset:
        return frozenset()

    def initial(self, func: Function) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block: BasicBlock, fact: frozenset) -> frozenset:
        live = set(fact)
        for instr in reversed(block.instructions):
            if instr.defines_value:
                live.discard(instr.name)
            if not instr.is_phi:  # phi uses live on predecessor edges only
                live.update(_use_names(instr))
        return frozenset(live)

    def edge_fact(
        self, src: BasicBlock, dst: BasicBlock, fact: frozenset
    ) -> frozenset:
        incoming = {
            value.name
            for phi in dst.phis
            for value, pred in phi.phi_incoming()
            if pred is src and not isinstance(value, Constant)
        }
        if not incoming:
            return fact
        return fact | incoming


@dataclass
class LiveInfo:
    """Converged liveness of one function.

    Attributes:
        func: the analyzed function.
        live_in: value names live at each block's entry (after phi defs).
        live_out: value names live at each block's exit.
        iterations: solver worklist pops (diagnostics).
    """

    func: Function
    live_in: dict[str, frozenset]
    live_out: dict[str, frozenset]
    iterations: int


def liveness(func: Function) -> LiveInfo:
    """Compute liveness for ``func``."""
    result: DataflowResult[frozenset] = solve(func, LivenessAnalysis())
    return LiveInfo(
        func=func,
        live_in=result.in_facts,
        live_out=result.out_facts,
        iterations=result.iterations,
    )


def live_ranges(
    func: Function,
    cost_model: CostModel = CORTEX_A53,
    info: LiveInfo | None = None,
) -> dict[str, int]:
    """Cost-weighted live window of every value name, in model cycles.

    Walking each block backward from its ``live_out`` set, every live
    name is charged the cycle cost of each instruction it stays live
    across.  A value charges nothing at its own definition (the window
    opens after the def writes back) and is charged through its last use
    in the block.  Names never live anywhere (dead results) map to 0.
    """
    if info is None:
        info = liveness(func)
    windows: dict[str, int] = {arg.name: 0 for arg in func.args}
    for instr in func.instructions():
        if instr.defines_value:
            windows[instr.name] = 0
    for block in func.blocks:
        live = set(info.live_out[block.name])
        for instr in reversed(block.instructions):
            if instr.defines_value:
                live.discard(instr.name)
            if not instr.is_phi:
                live.update(_use_names(instr))
            cost = cost_model.cost(instr)
            for name in live:
                if name in windows:
                    windows[name] += cost
    return windows
