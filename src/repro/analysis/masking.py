"""Sound per-(site, bit) fault-masking analysis.

Classifies every injectable (program point, live register, bit) triple of
a function into one of five :class:`MaskClass` values:

* ``DEAD`` / ``OVERWRITTEN`` — the register is not live-before the point:
  no path reads it again (or its next access is the redefinition of a
  loop-carried phi), so the flipped value is never consumed.  Execution,
  return value, heap traffic and cycle count are bit-identical to the
  fault-free run.
* ``MASKED_BITS`` — the bit lies outside the register's *demanded* mask
  (:func:`repro.analysis.bitclass.demanded_bits`): every downstream
  consumer provably masks it out before it can reach a return, branch,
  memory access, call or trapping operation.  Execution is again
  bit-identical — same path, same value, same cycles.
* ``CHECK_MASKED`` — the flip is caught by the DMR check fabric: either
  the register is *observer-only* (consumed exclusively by compare /
  or-chain / guard-branch logic that can at worst divert into a detect
  trap) or it is a duplicated primary inside a *checked window* (the
  first consumer on every path is a compare-and-trap against its
  replica).  Outcome is provably BENIGN or DETECTED — but which of the
  two depends on the dynamic value, so these trials cannot be pruned.
* ``POSSIBLY_ACE`` — none of the proofs apply; the flip may be an
  Architecturally Correct Execution violation (SDC/crash/hang).

``PROVEN_BENIGN`` (the first four) is the soundness-gate set: exhaustive
re-execution of every such fault must yield BENIGN or DETECTED.
``EXACT_BENIGN`` (the first three) is the *prunable* subset: the trial
outcome is exactly BENIGN with the golden value and golden cycle count,
so :func:`repro.faults.campaign.prune_masked_trials` can reconstruct the
trial record without running it, byte-for-byte.

Bits are indexed exactly as the register injector indexes them
(:func:`repro.ir.types.injectable_width`): integers expose ``bits``
positions, floats and pointers a full 64-bit register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.bitclass import demanded_bits, known_bits
from repro.analysis.liveness import liveness
from repro.analysis.reaching import reaching_definitions
from repro.core.dmr.instrument import _DUP_SUFFIX
from repro.ir.block import BasicBlock
from repro.ir.cfg import successors
from repro.ir.function import Function
from repro.ir.instructions import (
    COMPARISONS,
    Instruction,
    Opcode,
    Predicate,
)
from repro.ir.module import Module
from repro.ir.types import Type, bit_class, injectable_width
from repro.ir.values import Constant, Value


class MaskClass(enum.Enum):
    """Verdict for one (point, register, bit) fault site."""

    DEAD = "dead"
    OVERWRITTEN = "overwritten"
    MASKED_BITS = "masked-bits"
    CHECK_MASKED = "check-masked"
    POSSIBLY_ACE = "possibly-ace"


#: Classes whose faults provably end BENIGN or DETECTED (soundness gate).
PROVEN_BENIGN = frozenset({
    MaskClass.DEAD, MaskClass.OVERWRITTEN,
    MaskClass.MASKED_BITS, MaskClass.CHECK_MASKED,
})

#: Classes whose faults provably reproduce the golden run bit-for-bit
#: (outcome BENIGN, golden value, golden cycles) — safe to prune.
EXACT_BENIGN = frozenset({
    MaskClass.DEAD, MaskClass.OVERWRITTEN, MaskClass.MASKED_BITS,
})


#: Opcodes through which a corrupted *observer* value may flow without
#: any possibility of trapping or reaching memory/calls/returns.  Float
#: arithmetic is excluded (division and magnitude extraction can raise),
#: as is everything that touches the heap or another frame.
_OBSERVER_SAFE_OPS = frozenset({
    Opcode.ICMP, Opcode.FCMP, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL, Opcode.LSHR,
    Opcode.ASHR, Opcode.SELECT, Opcode.PHI, Opcode.ZEXT, Opcode.TRUNC,
    Opcode.SIGN,
})


def _value_types(func: Function) -> dict[str, Type]:
    types = {arg.name: arg.type for arg in func.args}
    for instr in func.instructions():
        if instr.defines_value:
            types[instr.name] = instr.type
    return types


def _detect_block_names(func: Function) -> frozenset[str]:
    return frozenset(
        b.name for b in func.blocks
        if b.is_terminated and b.terminator.opcode is Opcode.TRAP
    )


def _uses(instr: Instruction) -> list[str]:
    return [op.name for op in instr.operands if not isinstance(op, Constant)]


def _replica_isomorphic(primary: Instruction, replica: Instruction) -> bool:
    """Whether ``replica`` recomputes ``primary`` from parallel operands.

    Required before trusting a checked window: the replica must hold the
    golden value of the primary in every run where only the primary's
    register was corrupted, which holds when it applies the same
    operation to operands that are either identical constants, the same
    uncorrupted names, or their replicas — never the primary itself.
    """
    if (replica.opcode is not primary.opcode
            or replica.type != primary.type
            or replica.predicate is not primary.predicate
            or replica.imm != primary.imm
            or replica.callee != primary.callee
            or len(replica.operands) != len(primary.operands)):
        return False
    for p_op, r_op in zip(primary.operands, replica.operands):
        if isinstance(p_op, Constant) or isinstance(r_op, Constant):
            if p_op != r_op:
                return False
            continue
        if r_op.name not in (p_op.name, p_op.name + _DUP_SUFFIX):
            return False
        if r_op.name == primary.name:
            return False
    return True


@dataclass
class _CheckFabric:
    """The DMR check structure of one function, discovered structurally."""

    #: names of trap-only blocks.
    detect: frozenset[str]
    #: id(instr) of every NE compare that, when true, is guaranteed to
    #: divert the terminator of its own block into a detect block.
    guarded_checks: frozenset[int]
    #: primary name -> id(check) set of qualifying checks against its replica.
    checks_for: dict[str, frozenset[int]]
    #: names whose every transitive consumer is check/or/guard logic.
    observers: frozenset[str]


def _guarded_check_ids(func: Function, detect: frozenset[str]) -> frozenset[int]:
    """NE compares whose truth forces the same-block guard into a trap."""
    guarded: set[int] = set()
    for block in func.blocks:
        if not block.is_terminated:
            continue
        term = block.terminator
        if term.opcode is not Opcode.BR or not term.block_targets:
            continue
        if term.block_targets[0].name not in detect:
            continue
        # Values that, when true, force the branch condition true: the
        # condition itself and, transitively, operands of same-block ORs.
        forcing: set[int] = set()
        cond = term.operands[0] if term.operands else None
        if isinstance(cond, Instruction):
            stack = [cond]
            while stack:
                value = stack.pop()
                if id(value) in forcing or value.parent is not block:
                    continue
                forcing.add(id(value))
                if value.opcode is Opcode.OR:
                    stack.extend(
                        op for op in value.operands
                        if isinstance(op, Instruction)
                    )
        for instr in block.body:
            if (id(instr) in forcing
                    and instr.opcode in COMPARISONS
                    and instr.predicate is Predicate.NE):
                guarded.add(id(instr))
    return guarded


def _check_fabric(func: Function) -> _CheckFabric:
    detect = _detect_block_names(func)
    guarded = _guarded_check_ids(func, detect)

    by_name = {i.name: i for i in func.instructions() if i.name}
    checks_for: dict[str, set[int]] = {}
    for instr in func.instructions():
        if id(instr) not in guarded:
            continue
        names = {op.name for op in instr.operands if not isinstance(op, Constant)}
        if len(names) != 2:
            continue
        for name in names:
            if name + _DUP_SUFFIX in names:
                primary = by_name.get(name)
                replica = by_name.get(name + _DUP_SUFFIX)
                if (primary is not None and replica is not None
                        and _replica_isomorphic(primary, replica)):
                    checks_for.setdefault(name, set()).add(id(instr))

    # Observer-only values: greatest fixpoint — start from every named
    # value and peel off any whose user is not safe observer logic.
    users: dict[str, list[Instruction]] = {}
    named: set[str] = set(by_name)
    named.update(arg.name for arg in func.args)
    for instr in func.instructions():
        for name in _uses(instr):
            users.setdefault(name, []).append(instr)

    observers = set(named)
    changed = True
    while changed:
        changed = False
        for name in list(observers):
            for user in users.get(name, ()):
                if user.is_terminator:
                    ok = (user.opcode is Opcode.BR
                          and user.block_targets
                          and user.block_targets[0].name in detect)
                elif user.opcode in _OBSERVER_SAFE_OPS:
                    ok = user.defines_value and user.name in observers
                else:
                    ok = False
                if not ok:
                    observers.discard(name)
                    changed = True
                    break
    # Arguments are values the caller observes being consumed normally in
    # the golden run too, but corrupting them is fine if all users are
    # observer logic — keep them; typically primaries use args, which
    # evicts them above.

    return _CheckFabric(
        detect=detect,
        guarded_checks=guarded,
        checks_for={k: frozenset(v) for k, v in checks_for.items()},
        observers=frozenset(observers),
    )


@dataclass
class _Window:
    """Per-block next-consumer summary for one duplicated primary."""

    #: block name -> ordered (body_index, is_qualifying_check) of uses.
    uses: dict[str, list[tuple[int, bool]]]
    #: block name -> True when every path leaving the block meets a
    #: qualifying check before any other consumer (or no consumer at all).
    safe_after: dict[str, bool]

    def safe_at(self, block: str, body_index: int) -> bool:
        for index, is_check in self.uses.get(block, ()):
            if index >= body_index:
                return is_check
        return self.safe_after.get(block, False)


def _build_window(func: Function, name: str, check_ids: frozenset[int]) -> _Window:
    uses: dict[str, list[tuple[int, bool]]] = {}
    for block in func.blocks:
        entries = []
        for index, instr in enumerate(block.body):
            if name in _uses(instr):
                entries.append((index, id(instr) in check_ids))
        if entries:
            uses[block.name] = entries

    # Backward must-fixpoint: optimistic start, peel to stability.
    entry_state: dict[str, bool] = {}
    for block in func.blocks:
        block_uses = uses.get(block.name)
        entry_state[block.name] = block_uses[0][1] if block_uses else True

    safe_after: dict[str, bool] = {b.name: True for b in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            safe = True
            for succ in successors(block):
                for phi in succ.phis:
                    for value, pred in phi.phi_incoming():
                        if pred is block and not isinstance(value, Constant) \
                                and value.name == name:
                            safe = False
                if not entry_state[succ.name]:
                    safe = False
            if safe != safe_after[block.name]:
                safe_after[block.name] = safe
                changed = True
            block_uses = uses.get(block.name)
            state = block_uses[0][1] if block_uses else safe
            if state != entry_state[block.name]:
                entry_state[block.name] = state
                changed = True
    return _Window(uses=uses, safe_after=safe_after)


@dataclass
class FunctionMasking:
    """Converged masking facts for one function.

    ``classify`` answers the per-trial question the campaign planner and
    the soundness gate ask: given a fault at the hook *before* body
    instruction ``body_index`` of ``block``, flipping ``bit`` of live
    register ``site`` — what do we know statically?
    """

    func: Function
    types: dict[str, Type]
    live_before: dict[tuple[str, int], frozenset[str]]
    demanded: dict[str, int]
    fabric: _CheckFabric
    windows: dict[str, _Window]
    phi_names: frozenset[str]
    reach_at: dict[tuple[str, int], frozenset[str]]
    #: (mask class -> count) over the full static enumeration.
    counts: dict[MaskClass, int] = field(default_factory=dict)
    #: bit-class string -> (mask class -> count).
    class_counts: dict[str, dict[MaskClass, int]] = field(default_factory=dict)
    avf_upper_bound: float = 1.0

    def width_of(self, site: str) -> int:
        return injectable_width(self.types[site])

    def classify(
        self, block: str, body_index: int, site: str, bit: int
    ) -> MaskClass:
        type_ = self.types.get(site)
        if type_ is None:
            return MaskClass.POSSIBLY_ACE
        live = self.live_before.get((block, body_index))
        if live is None:
            return MaskClass.POSSIBLY_ACE
        if site not in live:
            return (MaskClass.OVERWRITTEN if site in self.phi_names
                    else MaskClass.DEAD)
        if type_.is_int:
            demand = self.demanded.get(site)
            if demand is not None and not (demand >> bit) & 1:
                return MaskClass.MASKED_BITS
        if site in self.fabric.observers:
            return MaskClass.CHECK_MASKED
        window = self.windows.get(site)
        if window is not None and window.safe_at(block, body_index):
            # Float sign-bit flips can turn 0.0 into the numerically
            # equal -0.0, slipping past the NE check — not proven.
            if not (type_.is_float and bit == 63):
                return MaskClass.CHECK_MASKED
        return MaskClass.POSSIBLY_ACE

    def proven_benign(
        self, block: str, body_index: int, site: str, bit: int
    ) -> bool:
        return self.classify(block, body_index, site, bit) in PROVEN_BENIGN

    def prunable(
        self, block: str, body_index: int, site: str, bit: int
    ) -> bool:
        return self.classify(block, body_index, site, bit) in EXACT_BENIGN


def _analyze_function(func: Function) -> FunctionMasking:
    types = _value_types(func)
    info = liveness(func)
    reach = reaching_definitions(func)

    live_before: dict[tuple[str, int], frozenset[str]] = {}
    reach_at: dict[tuple[str, int], frozenset[str]] = {}
    for block in func.blocks:
        live = set(info.live_out[block.name])
        records: list[frozenset[str]] = []
        for instr in reversed(block.instructions):
            if instr.defines_value:
                live.discard(instr.name)
            if not instr.is_phi:
                live.update(_uses(instr))
            records.append(frozenset(live))
        records.reverse()
        phi_count = len(block.phis)
        available = set(reach.reach_in[block.name])
        available.update(phi.name for phi in block.phis)
        for body_index, instr in enumerate(block.body):
            key = (block.name, body_index)
            live_before[key] = records[phi_count + body_index]
            reach_at[key] = frozenset(available)
            if instr.defines_value:
                available.add(instr.name)

    known = known_bits(func)
    demanded = demanded_bits(func, known)
    fabric = _check_fabric(func)
    windows = {
        name: _build_window(func, name, check_ids)
        for name, check_ids in fabric.checks_for.items()
    }
    phi_names = frozenset(
        phi.name for block in func.blocks for phi in block.phis
    )

    masking = FunctionMasking(
        func=func,
        types=types,
        live_before=live_before,
        demanded=demanded,
        fabric=fabric,
        windows=windows,
        phi_names=phi_names,
        reach_at=reach_at,
    )

    counts: dict[MaskClass, int] = {cls: 0 for cls in MaskClass}
    class_counts: dict[str, dict[MaskClass, int]] = {}
    for (block, body_index), sites in reach_at.items():
        for site in sorted(sites):
            type_ = types.get(site)
            if type_ is None:
                continue
            width = injectable_width(type_)
            for bit in range(width):
                verdict = masking.classify(block, body_index, site, bit)
                counts[verdict] += 1
                bucket = class_counts.setdefault(
                    bit_class(type_, bit), {cls: 0 for cls in MaskClass}
                )
                bucket[verdict] += 1
    total = sum(counts.values())
    masking.counts = counts
    masking.class_counts = class_counts
    masking.avf_upper_bound = (
        counts[MaskClass.POSSIBLY_ACE] / total if total else 0.0
    )
    return masking


@dataclass
class MaskingReport:
    """Module-level masking analysis: one :class:`FunctionMasking` each."""

    module: Module
    functions: dict[str, FunctionMasking]

    def for_function(self, name: str) -> FunctionMasking | None:
        return self.functions.get(name)

    def as_dict(self) -> dict:
        out: dict = {"module": self.module.name, "functions": {}}
        for name, fm in self.functions.items():
            out["functions"][name] = {
                "avf_upper_bound": fm.avf_upper_bound,
                "counts": {cls.value: n for cls, n in fm.counts.items()},
                "bit_classes": {
                    bc: {cls.value: n for cls, n in bucket.items()}
                    for bc, bucket in sorted(fm.class_counts.items())
                },
            }
        return out

    def render(self) -> str:
        lines = [f"masking report for {self.module.name}"]
        for name, fm in self.functions.items():
            total = sum(fm.counts.values())
            proven = sum(
                n for cls, n in fm.counts.items() if cls in PROVEN_BENIGN
            )
            lines.append(
                f"  @{name}: {total} site-bits, "
                f"{proven} proven benign "
                f"({proven / total:.1%})" if total else
                f"  @{name}: no injectable sites"
            )
            lines.append(
                f"    AVF upper bound {fm.avf_upper_bound:.3f}; " + ", ".join(
                    f"{cls.value}={fm.counts[cls]}" for cls in MaskClass
                )
            )
        return "\n".join(lines)


def analyze_masking(module: Module) -> MaskingReport:
    """Run the masking analysis over every function of ``module``."""
    return MaskingReport(
        module=module,
        functions={
            func.name: _analyze_function(func) for func in module
        },
    )
