"""Reaching definitions over the SSA IR.

Forward may-analysis: a definition (an SSA name) reaches a program point
if some CFG path from its defining instruction arrives there.  In SSA
there is exactly one definition per name, so the interesting output is
*which* names are available where — the linter's dominance checks and the
vulnerability analysis' exposure windows both build on it, and it doubles
as the canonical forward client of the dataflow framework.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    solve,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function


class ReachingDefsAnalysis(DataflowAnalysis[frozenset]):
    """Forward union analysis over defined value names."""

    direction = Direction.FORWARD

    def boundary(self, func: Function) -> frozenset:
        return frozenset(arg.name for arg in func.args)

    def initial(self, func: Function) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block: BasicBlock, fact: frozenset) -> frozenset:
        defs = {i.name for i in block.instructions if i.defines_value}
        if not defs:
            return fact
        return fact | defs


@dataclass
class ReachingInfo:
    """Converged reaching-definition facts of one function."""

    func: Function
    reach_in: dict[str, frozenset]
    reach_out: dict[str, frozenset]
    iterations: int

    def reaches(self, name: str, block: BasicBlock) -> bool:
        """Whether definition ``name`` may reach the entry of ``block``."""
        return name in self.reach_in[block.name]


def reaching_definitions(func: Function) -> ReachingInfo:
    """Compute reaching definitions for ``func``."""
    result: DataflowResult[frozenset] = solve(func, ReachingDefsAnalysis())
    return ReachingInfo(
        func=func,
        reach_in=result.in_facts,
        reach_out=result.out_facts,
        iterations=result.iterations,
    )
