"""Generic iterative dataflow framework over the IR.

A dataflow *analysis* pairs a lattice of facts (here: any values with a
``meet`` the analysis defines, typically frozensets under union) with a
per-block transfer function.  The solver runs the classic worklist
algorithm to the maximum fixpoint, seeding the worklist in reverse
postorder for forward problems (and reversed RPO for backward problems)
so that acyclic regions converge in one sweep and loops in a handful.

Phi nodes are handled on CFG *edges*: an analysis may override
:meth:`DataflowAnalysis.edge_fact` to adjust the fact flowing across one
specific edge (liveness uses this to materialize a phi's incoming value
only on the predecessor edge it arrives from — the textbook treatment of
SSA liveness).

Unreachable blocks are analyzed too (with no predecessor contribution),
matching :func:`repro.ir.cfg.reverse_postorder`, which appends them after
the reachable region; the protection-coverage linter relies on every
block having a fact.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.ir.block import BasicBlock
from repro.ir.cfg import predecessors, reverse_postorder, successors
from repro.ir.function import Function

F = TypeVar("F")


class Direction(enum.Enum):
    """Which way facts propagate along CFG edges."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowAnalysis(Generic[F]):
    """One dataflow problem: lattice + transfer + direction.

    Subclasses set :attr:`direction` and implement the four hooks.  Facts
    must be immutable (the solver compares with ``==`` and caches them).
    """

    direction: Direction = Direction.FORWARD

    def boundary(self, func: Function) -> F:
        """Fact at the CFG boundary (entry for forward, exits for backward)."""
        raise NotImplementedError

    def initial(self, func: Function) -> F:
        """Optimistic starting fact for every non-boundary block (top)."""
        raise NotImplementedError

    def meet(self, a: F, b: F) -> F:
        """Combine facts arriving over multiple edges."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, fact: F) -> F:
        """Push a fact through one whole block.

        Forward problems receive the block-entry fact and return the
        block-exit fact; backward problems the reverse.
        """
        raise NotImplementedError

    def edge_fact(self, src: BasicBlock, dst: BasicBlock, fact: F) -> F:
        """Adjust ``fact`` as it crosses the ``src -> dst`` edge.

        For forward problems ``fact`` is ``out[src]`` flowing into ``dst``;
        for backward problems it is ``in[dst]`` flowing back into ``src``.
        The default is the identity.
        """
        return fact


@dataclass
class DataflowResult(Generic[F]):
    """Converged facts of one analysis over one function.

    Attributes:
        in_facts: fact at each block's entry, by block name.
        out_facts: fact at each block's exit, by block name.
        iterations: worklist pops until convergence (diagnostics).
    """

    in_facts: dict[str, F] = field(default_factory=dict)
    out_facts: dict[str, F] = field(default_factory=dict)
    iterations: int = 0


def solve(func: Function, analysis: DataflowAnalysis[F]) -> DataflowResult[F]:
    """Run ``analysis`` over ``func`` to its maximum fixpoint."""
    rpo = reverse_postorder(func)
    forward = analysis.direction is Direction.FORWARD
    order = rpo if forward else list(reversed(rpo))
    preds = {b.name: predecessors(func, b) for b in func.blocks}
    succs = {b.name: successors(b) for b in func.blocks}
    by_name = {b.name: b for b in func.blocks}

    result: DataflowResult[F] = DataflowResult()
    boundary = analysis.boundary(func)
    for block in func.blocks:
        result.in_facts[block.name] = analysis.initial(func)
        result.out_facts[block.name] = analysis.initial(func)

    worklist: deque[str] = deque(b.name for b in order)
    queued = set(worklist)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        block = by_name[name]
        result.iterations += 1

        if forward:
            sources = preds[name]
            incoming = boundary if block is func.entry else None
            for src in sources:
                edge = analysis.edge_fact(src, block, result.out_facts[src.name])
                incoming = edge if incoming is None else analysis.meet(incoming, edge)
            if incoming is None:  # unreachable block: no edge contributes
                incoming = analysis.initial(func)
            result.in_facts[name] = incoming
            outgoing = analysis.transfer(block, incoming)
            if outgoing != result.out_facts[name]:
                result.out_facts[name] = outgoing
                for succ in succs[name]:
                    if succ.name not in queued:
                        worklist.append(succ.name)
                        queued.add(succ.name)
        else:
            targets = succs[name]
            incoming = boundary if not targets else None
            for dst in targets:
                edge = analysis.edge_fact(block, dst, result.in_facts[dst.name])
                incoming = edge if incoming is None else analysis.meet(incoming, edge)
            if incoming is None:
                incoming = analysis.initial(func)
            result.out_facts[name] = incoming
            entry_fact = analysis.transfer(block, incoming)
            if entry_fact != result.in_facts[name]:
                result.in_facts[name] = entry_fact
                for pred in preds[name]:
                    if pred.name not in queued:
                        worklist.append(pred.name)
                        queued.add(pred.name)
    return result


def is_fixpoint(
    func: Function, analysis: DataflowAnalysis[F], result: DataflowResult[F]
) -> bool:
    """Whether ``result`` is stable under one more full sweep.

    Used by the property tests: a converged solution must be idempotent —
    re-applying every edge meet and block transfer reproduces it exactly.
    """
    preds = {b.name: predecessors(func, b) for b in func.blocks}
    succs = {b.name: successors(b) for b in func.blocks}
    boundary = analysis.boundary(func)
    forward = analysis.direction is Direction.FORWARD
    for block in func.blocks:
        name = block.name
        if forward:
            incoming = boundary if block is func.entry else None
            for src in preds[name]:
                edge = analysis.edge_fact(src, block, result.out_facts[src.name])
                incoming = edge if incoming is None else analysis.meet(incoming, edge)
            if incoming is None:
                incoming = analysis.initial(func)
            if incoming != result.in_facts[name]:
                return False
            if analysis.transfer(block, incoming) != result.out_facts[name]:
                return False
        else:
            targets = succs[name]
            incoming = boundary if not targets else None
            for dst in targets:
                edge = analysis.edge_fact(block, dst, result.in_facts[dst.name])
                incoming = edge if incoming is None else analysis.meet(incoming, edge)
            if incoming is None:
                incoming = analysis.initial(func)
            if incoming != result.out_facts[name]:
                return False
            if analysis.transfer(block, incoming) != result.in_facts[name]:
                return False
    return True
