"""Translation-validation CLI for the DMR protection transforms.

Instruments workload programs at each protection level and validates
that the transform is semantics-preserving (replica isomorphism, check
fabric well-formedness, residual isomorphism, zero-fault dynamic
equality — see :mod:`repro.analysis.protect_verify`)::

    python -m repro.analysis.verify fact
    python -m repro.analysis.verify all --level all --json

Exit status is non-zero when any workload × level combination fails to
validate — that is the CI gate: every protection transform must be
provably equivalent under zero faults.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.protect_verify import VerifyResult, verify_protection
from repro.core.dmr.levels import ALL_LEVELS, ProtectionLevel
from repro.workloads.irprograms import PROGRAMS, build_program

_LEVELS_BY_VALUE = {level.value: level for level in ProtectionLevel}


def _parse_levels(text: str) -> list[ProtectionLevel]:
    if text == "all":
        return list(ALL_LEVELS)
    if text not in _LEVELS_BY_VALUE:
        known = ", ".join(sorted(_LEVELS_BY_VALUE))
        raise SystemExit(f"unknown level {text!r} (choose from: {known}, all)")
    return [_LEVELS_BY_VALUE[text]]


def _parse_programs(text: str) -> list[str]:
    if text == "all":
        return sorted(PROGRAMS)
    if text not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise SystemExit(f"unknown program {text!r} (choose from: {known}, all)")
    return [text]


def verify_program(name: str, level: ProtectionLevel) -> VerifyResult:
    """Build one workload and validate its instrumentation at ``level``."""
    spec = PROGRAMS[name]
    module = build_program(name)
    return verify_protection(
        module, level, func_name=spec.name, args=spec.default_args
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description="validate that DMR protection transforms preserve "
                    "zero-fault semantics",
    )
    parser.add_argument(
        "program", nargs="?", default="all",
        help="workload program name, or 'all' (default)",
    )
    parser.add_argument(
        "--level", default="all",
        help="protection level value (e.g. full-dmr), or 'all' (default)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report on stdout",
    )
    args = parser.parse_args(argv)

    programs = _parse_programs(args.program)
    levels = _parse_levels(args.level)

    results: list[tuple[str, VerifyResult]] = []
    failures = 0
    for name in programs:
        for level in levels:
            result = verify_program(name, level)
            if not result.equivalent:
                failures += 1
            results.append((name, result))

    if args.as_json:
        json.dump(
            {
                "failures": failures,
                "runs": [
                    {"program": name, **result.as_dict()}
                    for name, result in results
                ],
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for name, result in results:
            func = PROGRAMS[name].name
            metrics = result.metrics.get(func, {})
            if result.equivalent:
                print(
                    f"{name} @ {result.level.value}: equivalent "
                    f"(replicas={int(metrics.get('replicas', 0))}, "
                    f"checks={int(metrics.get('checks', 0))}, "
                    f"cycles {int(metrics.get('base_cycles', 0))} -> "
                    f"{int(metrics.get('protected_cycles', 0))})"
                )
            else:
                print(f"{name} @ {result.level.value}: NOT EQUIVALENT")
                for finding in result.findings:
                    print(
                        f"  [{finding.kind}] @{finding.func}: "
                        f"{finding.detail}"
                    )
        print(f"{failures} non-equivalent run(s) of {len(results)}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
