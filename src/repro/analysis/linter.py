"""Protection-coverage linter.

Statically verifies that a DMR-instrumented module actually delivers the
coverage its :class:`~repro.core.dmr.critical.CriticalPlan` promised —
the oracle that previously required a full fault-injection campaign:

- **DMR001** every planned-critical instruction has a replica;
- **DMR002** replicas never consume their original's operands when a
  replica of that operand exists (no single point of failure: one flip
  corrupting both chains would never diverge at a check);
- **DMR003** every guarded ``br``/``ret``/``store`` is dominated by a
  compare-and-trap check of each (primary, replica) pair — a check that
  can be bypassed, or that runs after the guarded use, detects nothing;
- **DMR004** critical slices that stop at call boundaries are reported
  as uncoverable from this function (instrument the callee).

Plus general IR hygiene independent of any plan: unreachable blocks
(**IR001**), dead results (**IR002**), and unchecked float multiply /
divide chains reaching a return that quantized checking could shadow
(**IR003**, a hint).

The contract the acceptance tests pin down: on every workload program at
every protection level, a faithfully instrumented module produces **zero
error/warning findings**, and each seeded coverage-gap mutant is caught.
"""

from __future__ import annotations

from repro.analysis.rules import (
    CALL_BOUNDARY,
    CHECK_NOT_DOMINATING,
    DEAD_BLOCK,
    DEAD_VALUE,
    MISSING_REPLICA,
    SHARED_OPERAND,
    UNCHECKED_FP_CHAIN,
    Finding,
    Severity,
)
from repro.core.dmr.critical import CriticalPlan
from repro.core.dmr.instrument import _DUP_SUFFIX
from repro.ir.block import BasicBlock
from repro.ir.cfg import reachable_blocks
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import COMPARISONS, Instruction, Opcode, Predicate
from repro.ir.module import Module
from repro.ir.usedef import UseDefInfo, backward_slice
from repro.ir.values import Constant

_CHAIN_OPS = frozenset({Opcode.FMUL, Opcode.FDIV})


def _positions(func: Function) -> dict[int, tuple[BasicBlock, int]]:
    return {
        id(instr): (block, index)
        for block in func.blocks
        for index, instr in enumerate(block.instructions)
    }


def _replica_map(
    func: Function, plan: CriticalPlan
) -> dict[int, Instruction | None]:
    """primary-id -> replica instruction (None when missing)."""
    by_name = {
        instr.name: instr for instr in func.instructions() if instr.name
    }
    replicas: dict[int, Instruction | None] = {}
    for primary_id, primary in plan.duplicate.items():
        candidate = by_name.get(primary.name + _DUP_SUFFIX)
        if candidate is not None and candidate.opcode is primary.opcode:
            replicas[primary_id] = candidate
        else:
            replicas[primary_id] = None
    return replicas


class _FunctionLinter:
    """Shared per-function state for all rules."""

    def __init__(self, func: Function, plan: CriticalPlan | None) -> None:
        self.func = func
        self.plan = plan
        self.findings: list[Finding] = []
        self.usedef = UseDefInfo(func)
        self.reachable = reachable_blocks(func)
        self.positions = _positions(func)
        self.replicas = _replica_map(func, plan) if plan is not None else {}

    def report(self, rule, block: str, where: str, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, func=self.func.name, block=block, where=where,
            message=message,
        ))

    # -- DMR coverage rules -------------------------------------------------

    def check_replicas_present(self) -> None:
        assert self.plan is not None
        for primary in self.plan.duplicate.values():
            if self.replicas.get(id(primary)) is None:
                block = primary.parent.name if primary.parent else ""
                self.report(
                    MISSING_REPLICA, block, primary.ref(),
                    f"critical {primary.opcode.value} {primary.ref()} has "
                    f"no {primary.name + _DUP_SUFFIX} replica",
                )

    def check_replica_operands(self) -> None:
        assert self.plan is not None
        for primary in self.plan.duplicate.values():
            replica = self.replicas.get(id(primary))
            if replica is None:
                continue  # DMR001's finding
            block = replica.parent.name if replica.parent else ""
            if len(replica.operands) != len(primary.operands):
                self.report(
                    SHARED_OPERAND, block, replica.ref(),
                    f"replica {replica.ref()} has "
                    f"{len(replica.operands)} operands; original has "
                    f"{len(primary.operands)}",
                )
                continue
            for index, (p_op, r_op) in enumerate(
                zip(primary.operands, replica.operands)
            ):
                if not isinstance(p_op, Instruction):
                    continue
                op_replica = self.replicas.get(id(p_op))
                if op_replica is None:
                    continue  # operand was not duplicated (or DMR001 fires)
                if r_op is p_op:
                    self.report(
                        SHARED_OPERAND, block, replica.ref(),
                        f"replica {replica.ref()} operand {index} is the "
                        f"original {p_op.ref()} although replica "
                        f"{op_replica.ref()} exists — one flip corrupts "
                        f"both chains",
                    )

    def _guards(self) -> list[Instruction]:
        """br instructions that can reach a trap (detect) block."""
        detect = {
            b.name
            for b in self.func.blocks
            if b.is_terminated and b.terminator.opcode is Opcode.TRAP
        }
        return [
            b.terminator
            for b in self.func.blocks
            if b.is_terminated
            and b.terminator.opcode is Opcode.BR
            and any(t.name in detect for t in b.terminator.block_targets)
        ]

    def _dominates(self, guard: Instruction, use: Instruction) -> bool:
        g_block, g_index = self.positions[id(guard)]
        u_block, u_index = self.positions[id(use)]
        if g_block is u_block:
            return g_index < u_index
        if (g_block.name not in self.reachable
                or u_block.name not in self.reachable):
            return False
        domtree = self._domtree
        if domtree is None:
            domtree = self._domtree = DominatorTree(self.func)
        return domtree.dominates(g_block, u_block)

    _domtree: DominatorTree | None = None

    def check_guard_dominance(self) -> None:
        assert self.plan is not None
        guards = self._guards()
        guard_deps = {
            id(g): {id(i) for i in backward_slice([g.operands[0]])}
            for g in guards
        }
        # NE-compare index: {frozenset of operand ids: [cmp, ...]}.
        cmp_index: dict[frozenset, list[Instruction]] = {}
        for instr in self.func.instructions():
            if instr.opcode in COMPARISONS and instr.predicate is Predicate.NE:
                key = frozenset(id(op) for op in instr.operands)
                cmp_index.setdefault(key, []).append(instr)

        checkpoints = (
            [(c, "br") for c in self.plan.check_branches]
            + [(c, "ret") for c in self.plan.check_returns]
            + [(c, "store") for c in self.plan.check_stores]
        )
        for checkpoint, kind in checkpoints:
            block = (
                checkpoint.parent.name if checkpoint.parent is not None else ""
            )
            for value in checkpoint.operands:
                if not isinstance(value, Instruction):
                    continue
                replica = self.replicas.get(id(value))
                if replica is None:
                    continue  # not duplicated, or DMR001 already fired
                key = frozenset({id(value), id(replica)})
                compares = cmp_index.get(key, [])
                dominated = False
                checked_somewhere = False
                for cmp in compares:
                    for guard in guards:
                        if id(cmp) not in guard_deps[id(guard)]:
                            continue
                        checked_somewhere = True
                        if self._dominates(guard, checkpoint):
                            dominated = True
                            break
                    if dominated:
                        break
                if dominated:
                    continue
                if checked_somewhere:
                    message = (
                        f"check of {value.ref()} vs {replica.ref()} does "
                        f"not dominate the guarded {kind} — a path reaches "
                        f"the {kind} without passing the check"
                    )
                else:
                    message = (
                        f"guarded {kind} consumes duplicated {value.ref()} "
                        f"but no compare-and-trap check of {value.ref()} vs "
                        f"{replica.ref()} exists"
                    )
                self.report(CHECK_NOT_DOMINATING, block, value.ref(), message)

    def check_call_boundaries(self) -> None:
        assert self.plan is not None
        for call in self.plan.call_boundaries:
            block = call.parent.name if call.parent is not None else ""
            callee = call.callee or "?"
            self.report(
                CALL_BOUNDARY, block, call.ref(),
                f"critical slice stops at call to @{callee}; its result "
                f"{call.ref()} cannot be replicated here",
            )

    # -- hygiene rules ------------------------------------------------------

    def check_dead_blocks(self) -> None:
        for block in self.func.blocks:
            if block.name not in self.reachable:
                self.report(
                    DEAD_BLOCK, block.name, f"^{block.name}",
                    f"block ^{block.name} is unreachable from the entry",
                )

    def check_dead_values(self) -> None:
        for instr in self.func.instructions():
            if not self.usedef.is_dead(instr):
                continue
            if instr.name.endswith(_DUP_SUFFIX):
                continue  # replica coverage is DMR001/DMR002's concern
            block = instr.parent.name if instr.parent is not None else ""
            self.report(
                DEAD_VALUE, block, instr.ref(),
                f"{instr.opcode.value} {instr.ref()} defines a value "
                f"nothing uses",
            )

    def check_fp_chains(self) -> None:
        """Flag ret-feeding fmul/fdiv chains with no protection at all."""
        roots = [
            term.operands[0]
            for block in self.func.blocks
            if block.is_terminated
            for term in [block.terminator]
            if term.opcode is Opcode.RET and term.operands
            and isinstance(term.operands[0], Instruction)
            and term.operands[0].opcode in _CHAIN_OPS
        ]
        if not roots:
            return
        by_name = {i.name: i for i in self.func.instructions() if i.name}
        observed = {
            id(op)
            for instr in self.func.instructions()
            if instr.opcode is Opcode.MAG
            for op in instr.operands
            if not isinstance(op, Constant)
        }
        for root in roots:
            chain: list[Instruction] = []
            stack: list[Instruction] = [root]
            seen: set[int] = set()
            while stack:
                instr = stack.pop()
                if id(instr) in seen:
                    continue
                seen.add(id(instr))
                chain.append(instr)
                stack.extend(
                    op for op in instr.operands
                    if isinstance(op, Instruction) and op.opcode in _CHAIN_OPS
                )
            duplicated = all(
                by_name.get(i.name + _DUP_SUFFIX) is not None for i in chain
            )
            quantized = id(root) in observed
            if duplicated or quantized:
                continue
            block = root.parent.name if root.parent is not None else ""
            self.report(
                UNCHECKED_FP_CHAIN, block, root.ref(),
                f"{len(chain)}-op fmul/fdiv chain ending at {root.ref()} "
                f"reaches a return with neither DMR replicas nor a "
                f"quantized shadow",
            )

    # -- driver -------------------------------------------------------------

    def run(self) -> list[Finding]:
        if self.plan is not None:
            self.check_replicas_present()
            self.check_replica_operands()
            self.check_guard_dominance()
            self.check_call_boundaries()
        self.check_dead_blocks()
        self.check_dead_values()
        self.check_fp_chains()
        return self.findings


def lint_function(
    func: Function, plan: CriticalPlan | None = None
) -> list[Finding]:
    """Lint one function, against ``plan`` when it was DMR-instrumented."""
    return _FunctionLinter(func, plan).run()


def lint_module(
    module: Module, plans: dict[str, CriticalPlan] | None = None
) -> list[Finding]:
    """Lint every function of ``module``.

    ``plans`` is the per-function map returned by
    :func:`repro.core.dmr.instrument.instrument_module`; without it only
    the plan-independent hygiene rules run.
    """
    findings: list[Finding] = []
    for func in module:
        plan = plans.get(func.name) if plans is not None else None
        findings.extend(lint_function(func, plan))
    return findings


def worst_severity(findings: list[Finding]) -> Severity | None:
    """The most severe class present in ``findings`` (None when empty)."""
    if not findings:
        return None
    return max((f.severity for f in findings), key=lambda s: s.rank)


def gate(findings: list[Finding], fail_on: Severity) -> bool:
    """True when ``findings`` should fail a gate at the given threshold."""
    return any(f.severity.rank >= fail_on.rank for f in findings)
