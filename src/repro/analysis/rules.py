"""Lint rule registry: rule metadata, severities, findings.

Every check the protection-coverage linter can emit is declared once as a
:class:`LintRule` — id, severity, one-line summary, and a fix hint — and
registered in :data:`RULES`.  The linter then reports :class:`Finding`
instances that reference their rule, so the CLI, tests and the CI gate
all agree on what a rule means and how severe it is.

Severity policy:

- ``ERROR`` — the instrumentation violated its own :class:`CriticalPlan`
  contract (a coverage gap an SEU can slip through).  Always gates.
- ``WARNING`` — structural hygiene the protection passes should not
  leave behind (dead blocks, dead results, uncoverable call boundaries).
  Gates by default.
- ``HINT`` — a protection *opportunity* (e.g. an unchecked FP chain that
  quantized checking could cover).  Never gates; surfaced for humans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; ordered for ``--fail-on`` thresholds."""

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        return _RANKS[self]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 result level this severity maps to."""
        return _SARIF_LEVELS[self]


_RANKS = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.HINT: 0}

#: SARIF 2.1.0 result levels corresponding to each severity.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.HINT: "note",
}


@dataclass(frozen=True)
class LintRule:
    """One registered linter rule.

    Attributes:
        id: stable identifier (``DMR001``, ``IR002``, ...).
        severity: gate class of every finding this rule emits.
        summary: one-line description of what the rule checks.
        fix_hint: what to do about a finding.
    """

    id: str
    severity: Severity
    summary: str
    fix_hint: str


#: All registered rules by id.
RULES: dict[str, LintRule] = {}


def register(rule: LintRule) -> LintRule:
    if rule.id in RULES:
        raise ValueError(f"duplicate lint rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


@dataclass(frozen=True)
class Finding:
    """One rule violation at one program point.

    Attributes:
        rule: the violated rule.
        func: function name (no leading ``@``).
        block: block name (no leading ``^``; "" for function-level).
        where: value/instruction reference the finding anchors to.
        message: specific explanation for this site.
    """

    rule: LintRule
    func: str
    block: str
    where: str
    message: str

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def format(self) -> str:
        location = f"@{self.func}"
        if self.block:
            location += f":^{self.block}"
        return (
            f"{self.rule.id} [{self.severity.value}] {location}: "
            f"{self.message}"
        )

    def to_sarif(self) -> dict:
        """This finding as a SARIF 2.1.0 ``result`` object."""
        qualified = f"@{self.func}"
        if self.block:
            qualified += f":^{self.block}"
        if self.where:
            qualified += f" {self.where}"
        return {
            "ruleId": self.rule.id,
            "level": self.severity.sarif_level,
            "message": {"text": self.message},
            "locations": [{
                "logicalLocations": [{
                    "fullyQualifiedName": qualified,
                    "kind": "function",
                }],
            }],
        }


def sarif_log(tool_name: str, rules: list[dict], results: list[dict]) -> dict:
    """Assemble a minimal SARIF 2.1.0 log for one analysis run.

    ``rules`` are ``reportingDescriptor`` objects (see
    :func:`rule_descriptor`), ``results`` are ``result`` objects such as
    :meth:`Finding.to_sarif` produces.  Shared by the lint and rank CLIs
    so both emit the same envelope.
    """
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": tool_name, "rules": rules}},
            "results": results,
        }],
    }


def rule_descriptor(rule: LintRule) -> dict:
    """A :class:`LintRule` as a SARIF ``reportingDescriptor``."""
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "help": {"text": rule.fix_hint},
        "defaultConfiguration": {"level": rule.severity.sarif_level},
    }


# -- the rule catalog ----------------------------------------------------------

MISSING_REPLICA = register(LintRule(
    id="DMR001",
    severity=Severity.ERROR,
    summary="critical instruction in the plan has no replica",
    fix_hint="re-run the instrumentation pass; every instruction in "
             "CriticalPlan.duplicate must have a '<name>.dup' twin of the "
             "same opcode",
))

SHARED_OPERAND = register(LintRule(
    id="DMR002",
    severity=Severity.ERROR,
    summary="replica consumes its original's operand (single point of "
            "failure)",
    fix_hint="rewire the replica to consume the operand's replica so a "
             "flip in either chain diverges at the next check",
))

CHECK_NOT_DOMINATING = register(LintRule(
    id="DMR003",
    severity=Severity.ERROR,
    summary="guarded br/ret/store is not dominated by its compare-and-trap "
            "check",
    fix_hint="the primary/replica comparison must execute on every path "
             "before the guarded instruction; move the check or remove the "
             "bypassing edge",
))

CALL_BOUNDARY = register(LintRule(
    id="DMR004",
    severity=Severity.WARNING,
    summary="critical slice stops at a call boundary (callee not covered)",
    fix_hint="instrument the callee at the same protection level; a replica "
             "of the call result cannot be derived inside this function",
))

DEAD_BLOCK = register(LintRule(
    id="IR001",
    severity=Severity.WARNING,
    summary="block is unreachable from the entry",
    fix_hint="delete the block or restore the edge that reached it; "
             "unreachable code is unscrubbed attack surface",
))

DEAD_VALUE = register(LintRule(
    id="IR002",
    severity=Severity.WARNING,
    summary="instruction result feeds nothing",
    fix_hint="delete the instruction (dead results waste cycles and widen "
             "the live-register surface SEUs can strike)",
))

UNCHECKED_FP_CHAIN = register(LintRule(
    id="IR003",
    severity=Severity.HINT,
    summary="float multiply/divide chain reaches a return unchecked",
    fix_hint="quantized checking (repro.core.quantize) shadows fmul/fdiv "
             "chains for ~1 integer cycle per op; DMR duplication also "
             "covers it at higher cost",
))
