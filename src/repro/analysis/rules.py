"""Lint rule registry: rule metadata, severities, findings.

Every check the protection-coverage linter can emit is declared once as a
:class:`LintRule` — id, severity, one-line summary, and a fix hint — and
registered in :data:`RULES`.  The linter then reports :class:`Finding`
instances that reference their rule, so the CLI, tests and the CI gate
all agree on what a rule means and how severe it is.

Severity policy:

- ``ERROR`` — the instrumentation violated its own :class:`CriticalPlan`
  contract (a coverage gap an SEU can slip through).  Always gates.
- ``WARNING`` — structural hygiene the protection passes should not
  leave behind (dead blocks, dead results, uncoverable call boundaries).
  Gates by default.
- ``HINT`` — a protection *opportunity* (e.g. an unchecked FP chain that
  quantized checking could cover).  Never gates; surfaced for humans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; ordered for ``--fail-on`` thresholds."""

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        return _RANKS[self]


_RANKS = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.HINT: 0}


@dataclass(frozen=True)
class LintRule:
    """One registered linter rule.

    Attributes:
        id: stable identifier (``DMR001``, ``IR002``, ...).
        severity: gate class of every finding this rule emits.
        summary: one-line description of what the rule checks.
        fix_hint: what to do about a finding.
    """

    id: str
    severity: Severity
    summary: str
    fix_hint: str


#: All registered rules by id.
RULES: dict[str, LintRule] = {}


def register(rule: LintRule) -> LintRule:
    if rule.id in RULES:
        raise ValueError(f"duplicate lint rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


@dataclass(frozen=True)
class Finding:
    """One rule violation at one program point.

    Attributes:
        rule: the violated rule.
        func: function name (no leading ``@``).
        block: block name (no leading ``^``; "" for function-level).
        where: value/instruction reference the finding anchors to.
        message: specific explanation for this site.
    """

    rule: LintRule
    func: str
    block: str
    where: str
    message: str

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def format(self) -> str:
        location = f"@{self.func}"
        if self.block:
            location += f":^{self.block}"
        return (
            f"{self.rule.id} [{self.severity.value}] {location}: "
            f"{self.message}"
        )


# -- the rule catalog ----------------------------------------------------------

MISSING_REPLICA = register(LintRule(
    id="DMR001",
    severity=Severity.ERROR,
    summary="critical instruction in the plan has no replica",
    fix_hint="re-run the instrumentation pass; every instruction in "
             "CriticalPlan.duplicate must have a '<name>.dup' twin of the "
             "same opcode",
))

SHARED_OPERAND = register(LintRule(
    id="DMR002",
    severity=Severity.ERROR,
    summary="replica consumes its original's operand (single point of "
            "failure)",
    fix_hint="rewire the replica to consume the operand's replica so a "
             "flip in either chain diverges at the next check",
))

CHECK_NOT_DOMINATING = register(LintRule(
    id="DMR003",
    severity=Severity.ERROR,
    summary="guarded br/ret/store is not dominated by its compare-and-trap "
            "check",
    fix_hint="the primary/replica comparison must execute on every path "
             "before the guarded instruction; move the check or remove the "
             "bypassing edge",
))

CALL_BOUNDARY = register(LintRule(
    id="DMR004",
    severity=Severity.WARNING,
    summary="critical slice stops at a call boundary (callee not covered)",
    fix_hint="instrument the callee at the same protection level; a replica "
             "of the call result cannot be derived inside this function",
))

DEAD_BLOCK = register(LintRule(
    id="IR001",
    severity=Severity.WARNING,
    summary="block is unreachable from the entry",
    fix_hint="delete the block or restore the edge that reached it; "
             "unreachable code is unscrubbed attack surface",
))

DEAD_VALUE = register(LintRule(
    id="IR002",
    severity=Severity.WARNING,
    summary="instruction result feeds nothing",
    fix_hint="delete the instruction (dead results waste cycles and widen "
             "the live-register surface SEUs can strike)",
))

UNCHECKED_FP_CHAIN = register(LintRule(
    id="IR003",
    severity=Severity.HINT,
    summary="float multiply/divide chain reaches a return unchecked",
    fix_hint="quantized checking (repro.core.quantize) shadows fmul/fdiv "
             "chains for ~1 integer cycle per op; DMR duplication also "
             "covers it at higher cost",
))
