"""Translation validation of the DMR protection transforms.

For each :class:`~repro.core.dmr.levels.ProtectionLevel`, checks that the
instrumented module is semantics-preserving in the zero-fault world — the
protected program must behave exactly like the original, modulo the extra
(cost-model-visible) replica/check work:

* **Replica isomorphism** — every ``*.dup`` value recomputes its primary:
  same opcode/type/predicate/immediate, operands positionally equal up to
  the ``.dup`` renaming, never the primary itself, and only side-effect-
  free opcodes (duplicating an ``alloc``/``call``/``store`` would change
  observable state even without faults).
* **Check fabric well-formedness** — every ``dmr.ne*`` is an NE compare
  of a verified (primary, replica) pair; every ``dmr.or*`` only combines
  check results; every guard branch sends mismatch=true into a trap-only
  detect block and false into the split continuation, and the check
  dominates its guard trivially (same block, by construction here, but
  verified rather than assumed).
* **Residual isomorphism** — deleting replicas, checks, or-chains, guard
  branches and detect blocks from the protected function, and collapsing
  each split-continuation chain back into its head block, must reproduce
  the original function instruction-for-instruction (names, opcodes,
  operands, phi incomings, branch targets).
* **Cost-model-only dynamic delta** — executing both modules with zero
  faults yields bit-identical return values and statuses; the protected
  run may only spend *more* instructions and cycles.

Run over every workload × level by ``python -m repro.analysis.verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.masking import _replica_isomorphic
from repro.core.dmr.critical import _NEVER_DUPLICATE
from repro.core.dmr.instrument import _DUP_SUFFIX, instrument_module
from repro.core.dmr.levels import ProtectionLevel
from repro.ir.block import BasicBlock
from repro.ir.costmodel import CORTEX_A53, CostModel
from repro.ir.function import Function
from repro.ir.instructions import COMPARISONS, Instruction, Opcode, Predicate
from repro.ir.interp import ExecutionStatus, Interpreter
from repro.ir.module import Module
from repro.ir.values import Constant, Value

_CHECK_PREFIX = "dmr.ne"
_OR_PREFIX = "dmr.or"


@dataclass(frozen=True)
class VerifyFinding:
    """One way the protected module deviates from the contract."""

    func: str
    kind: str
    detail: str


@dataclass
class VerifyResult:
    """Outcome of validating one module × level combination."""

    module: str
    level: ProtectionLevel
    findings: list[VerifyFinding] = field(default_factory=list)
    #: per-function structural and dynamic metrics.
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "module": self.module,
            "level": self.level.value,
            "equivalent": self.equivalent,
            "findings": [
                {"func": f.func, "kind": f.kind, "detail": f.detail}
                for f in self.findings
            ],
            "metrics": self.metrics,
        }


def _is_detect_block(block: BasicBlock) -> bool:
    return (
        len(block.instructions) == 1
        and block.instructions[0].opcode is Opcode.TRAP
    )


class _FunctionValidator:
    """Validates one protected function against its original."""

    def __init__(self, original: Function, protected: Function) -> None:
        self.original = original
        self.protected = protected
        self.findings: list[VerifyFinding] = []
        self.by_name = {
            i.name: i for i in protected.instructions() if i.name
        }
        self.detect = {
            b.name for b in protected.blocks if _is_detect_block(b)
        }
        self.replicas = [
            i for i in protected.instructions()
            if i.name.endswith(_DUP_SUFFIX)
        ]
        self.checks = [
            i for i in protected.instructions()
            if i.name.startswith(_CHECK_PREFIX)
        ]
        self.ors = [
            i for i in protected.instructions()
            if i.name.startswith(_OR_PREFIX)
        ]
        self.guards = [
            b.terminator for b in protected.blocks
            if b.is_terminated
            and b.terminator.opcode is Opcode.BR
            and any(t.name in self.detect for t in b.terminator.block_targets)
        ]
        self._scaffold_ids = (
            {id(i) for i in self.replicas}
            | {id(i) for i in self.checks}
            | {id(i) for i in self.ors}
            | {id(g) for g in self.guards}
        )

    def report(self, kind: str, detail: str) -> None:
        self.findings.append(
            VerifyFinding(func=self.original.name, kind=kind, detail=detail)
        )

    # -- replica isomorphism ------------------------------------------------

    def check_replicas(self) -> None:
        for replica in self.replicas:
            primary_name = replica.name[: -len(_DUP_SUFFIX)]
            primary = self.by_name.get(primary_name)
            if primary is None:
                self.report(
                    "orphan-replica",
                    f"{replica.ref()} has no primary {primary_name}",
                )
                continue
            if replica.opcode in _NEVER_DUPLICATE or replica.is_terminator:
                self.report(
                    "side-effecting-replica",
                    f"{replica.ref()} duplicates a "
                    f"{replica.opcode.value}, which is not effect-free",
                )
                continue
            if not _replica_isomorphic(primary, replica):
                self.report(
                    "replica-mismatch",
                    f"{replica.ref()} does not recompute "
                    f"{primary.ref()} from parallel operands",
                )

    # -- check fabric -------------------------------------------------------

    def check_fabric(self) -> None:
        for check in self.checks:
            ok = (
                check.opcode in COMPARISONS
                and check.predicate is Predicate.NE
                and len(check.operands) == 2
                and not isinstance(check.operands[0], Constant)
                and not isinstance(check.operands[1], Constant)
                and check.operands[1].name
                == check.operands[0].name + _DUP_SUFFIX
            )
            if not ok:
                self.report(
                    "malformed-check",
                    f"{check.ref()} is not an NE compare of a "
                    f"(primary, replica) pair",
                )
        check_like = {id(i) for i in self.checks} | {id(i) for i in self.ors}
        for or_instr in self.ors:
            if or_instr.opcode is not Opcode.OR or any(
                not isinstance(op, Instruction) or id(op) not in check_like
                for op in or_instr.operands
            ):
                self.report(
                    "malformed-or-chain",
                    f"{or_instr.ref()} combines non-check values",
                )
        for guard in self.guards:
            block = guard.parent
            cond = guard.operands[0] if guard.operands else None
            cond_ok = (
                isinstance(cond, Instruction)
                and id(cond) in check_like
                and cond.parent is block
            )
            shape_ok = (
                len(guard.block_targets) == 2
                and guard.block_targets[0].name in self.detect
                and guard.block_targets[1].name not in self.detect
            )
            if not (cond_ok and shape_ok):
                where = block.name if block is not None else "?"
                self.report(
                    "malformed-guard",
                    f"guard br in ^{where} must test a same-block check "
                    f"and target [detect, continuation]",
                )

    # -- residual isomorphism -----------------------------------------------

    def _origin_map(self) -> dict[str, str] | None:
        """protected block name -> original block name (split collapse)."""
        original_names = {b.name for b in self.original.blocks}
        origin: dict[str, str] = {}
        for block in self.protected.blocks:
            if block.name in original_names:
                origin[block.name] = block.name
        changed = True
        while changed:
            changed = False
            for block in self.protected.blocks:
                if block.name not in origin or not block.is_terminated:
                    continue
                term = block.terminator
                if term in self.guards:
                    cont = term.block_targets[1]
                    if cont.name not in origin:
                        origin[cont.name] = origin[block.name]
                        changed = True
        unknown = [
            b.name for b in self.protected.blocks
            if b.name not in origin and b.name not in self.detect
        ]
        if unknown:
            self.report(
                "unmapped-blocks",
                f"blocks {unknown} are neither original, split "
                f"continuations, nor detect blocks",
            )
            return None
        return origin

    def _residual_chain(
        self, head: BasicBlock
    ) -> list[Instruction] | None:
        """Non-scaffold instructions of ``head`` and its split tail."""
        out: list[Instruction] = []
        block: BasicBlock | None = head
        seen: set[int] = set()
        while block is not None:
            if id(block) in seen:  # guard-br cycle: malformed
                return None
            seen.add(id(block))
            tail: BasicBlock | None = None
            for instr in block.instructions:
                if id(instr) in self._scaffold_ids:
                    if instr in self.guards:
                        tail = instr.block_targets[1]
                    continue
                out.append(instr)
            block = tail
        return out

    def _operand_equal(self, a: Value, b: Value) -> bool:
        if isinstance(a, Constant) or isinstance(b, Constant):
            return a == b
        return a.name == b.name

    def _instr_equal(
        self, orig: Instruction, prot: Instruction, origin: dict[str, str]
    ) -> str | None:
        if orig.name != prot.name:
            return f"expected {orig.ref()}, found {prot.ref()}"
        if (orig.opcode is not prot.opcode or orig.type != prot.type
                or orig.predicate is not prot.predicate
                or orig.imm != prot.imm or orig.callee != prot.callee):
            return f"{prot.ref()} changed operation or attributes"
        if len(orig.operands) != len(prot.operands) or any(
            not self._operand_equal(a, b)
            for a, b in zip(orig.operands, prot.operands)
        ):
            return f"{prot.ref()} changed operands"
        orig_targets = [t.name for t in orig.block_targets]
        prot_targets = [origin.get(t.name) for t in prot.block_targets]
        if orig_targets != prot_targets:
            return (
                f"{prot.ref()} targets {prot_targets}, "
                f"original had {orig_targets}"
            )
        return None

    def check_residual(self) -> None:
        origin = self._origin_map()
        if origin is None:
            return
        if [a.name for a in self.original.args] != [
            a.name for a in self.protected.args
        ]:
            self.report("signature-changed", "argument lists differ")
            return
        protected_heads = {b.name: b for b in self.protected.blocks}
        for block in self.original.blocks:
            head = protected_heads.get(block.name)
            if head is None:
                self.report(
                    "missing-block", f"original ^{block.name} disappeared"
                )
                continue
            chain = self._residual_chain(head)
            if chain is None:
                self.report(
                    "guard-cycle", f"split chain of ^{block.name} loops"
                )
                continue
            if len(chain) != len(block.instructions):
                self.report(
                    "residual-size",
                    f"^{block.name}: original has "
                    f"{len(block.instructions)} instructions, residual "
                    f"has {len(chain)}",
                )
                continue
            for orig, prot in zip(block.instructions, chain):
                problem = self._instr_equal(orig, prot, origin)
                if problem is not None:
                    self.report("residual-mismatch", problem)

    def run(self) -> dict[str, float]:
        self.check_replicas()
        self.check_fabric()
        self.check_residual()
        return {
            "replicas": float(len(self.replicas)),
            "checks": float(len(self.checks)),
            "guards": float(len(self.guards)),
        }


def verify_protection(
    module: Module,
    level: ProtectionLevel,
    func_name: str | None = None,
    args: tuple[int | float, ...] | None = None,
    cost_model: CostModel = CORTEX_A53,
    fuel: int = 5_000_000,
) -> VerifyResult:
    """Instrument ``module`` at ``level`` and validate the translation.

    Structural validation covers every function; when ``func_name`` and
    ``args`` are given, the zero-fault dynamic check runs that entry
    point on both modules and compares results bit-for-bit.
    """
    protected, _plans = instrument_module(module, level)
    result = VerifyResult(module=module.name, level=level)

    for original in module:
        validator = _FunctionValidator(
            original, protected.function(original.name)
        )
        metrics = validator.run()
        if level is ProtectionLevel.NONE and (
            validator.replicas or validator.checks or validator.guards
        ):
            validator.report(
                "unexpected-scaffold",
                "protection level none must not add replicas or checks",
            )
        result.findings.extend(validator.findings)
        result.metrics[original.name] = metrics

    if func_name is not None and args is not None:
        base = Interpreter(module, cost_model=cost_model, fuel=fuel).run(
            func_name, list(args)
        )
        prot = Interpreter(protected, cost_model=cost_model, fuel=fuel).run(
            func_name, list(args)
        )
        fm = result.metrics.setdefault(func_name, {})
        fm["base_cycles"] = float(base.cycles)
        fm["protected_cycles"] = float(prot.cycles)
        fm["base_instructions"] = float(base.instructions)
        fm["protected_instructions"] = float(prot.instructions)
        if base.status is not prot.status:
            result.findings.append(VerifyFinding(
                func_name, "status-diverged",
                f"original {base.status.value}, "
                f"protected {prot.status.value}",
            ))
        elif base.status is ExecutionStatus.OK:
            same = (
                base.value == prot.value
                or (isinstance(base.value, float)
                    and isinstance(prot.value, float)
                    and base.value != base.value
                    and prot.value != prot.value)
            )
            if not same:
                result.findings.append(VerifyFinding(
                    func_name, "value-diverged",
                    f"original returned {base.value!r}, "
                    f"protected returned {prot.value!r}",
                ))
            if (prot.cycles < base.cycles
                    or prot.instructions < base.instructions):
                result.findings.append(VerifyFinding(
                    func_name, "cost-shrunk",
                    "protected run spent fewer cycles/instructions "
                    "than the original — the delta must be pure overhead",
                ))
    return result
