"""Mission simulator.

Event-driven over mission days: SEU and SEL events arrive per the
environment model; their outcomes are resolved by the active protection
profile.  Compute-affecting SEUs (register/cache) are resolved against the
profile's outcome distribution — measured by the library's own
fault-injection campaigns at the profile's DMR level; DRAM SEUs are
resolved against the scrubber's measured corrupted-read fraction; SELs are
resolved against the SEL daemon's detection profile.

The three canonical profiles realize the paper's comparison: commodity
hardware unprotected, commodity hardware with the full software stack, and
a radiation-hardened baseline that is ~50x slower and 13x costlier
(Table 1) but nearly immune.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dmr.levels import ProtectionLevel
from repro.faults.outcomes import FaultOutcome
from repro.hw.specs import ENDUROSAT_OBC_SPEC, SNAPDRAGON_801, SocSpec
from repro.radiation.environment import Environment, LEO_NOMINAL
from repro.obs.events import MissionDay, MissionSel, Tracer
from repro.radiation.events import DEFAULT_TARGET_WEIGHTS
from repro.radiation.schedule import EnvironmentTimeline
from repro.recover.supervisor import RecoveryParams
from repro.rng import make_rng
from repro.sim.report import MissionReport
from repro.units import SECONDS_PER_DAY


@dataclass(frozen=True)
class ProtectionProfile:
    """A hardware + software protection configuration.

    The probabilistic parameters default to values measured by this
    library's own component experiments (E1, E4, E8); callers reproducing
    those experiments can feed their measurements back in.

    Attributes:
        name: label for reports.
        spec: the flight computer.
        dmr_level: tunable-DMR level applied to compute jobs.
        dmr_outcome_probs: outcome distribution of a compute-affecting SEU
            under that level (register campaigns, E4).
        dmr_overhead: cycle overhead factor of the level (E4).
        scrubber_enabled: DSP scrubber active on DRAM.
        scrub_corrupted_read_frac: chance a DRAM flip is consumed before
            the scrubber clears it.  E8 measures ~3.5% under a ~1e5-fold
            accelerated flip rate with a deliberately scarce scrub budget;
            at orbital rates a Hexagon-class DSP sweeps 2 GB in under a
            minute, so the orbit-extrapolated default is ~2e-3.
        sel_daemon_enabled: metric-aware SEL daemon active.
        sel_min_detectable_a: smallest latch-up delta the detector catches
            (E1: residual-CUSUM reaches 5 mA; naive threshold ~300 mA).
        sel_detect_latency_s: typical alarm latency once detectable.
        reboot_downtime_s: cost of each power cycle / crash recovery
            when no supervisor is flown (the flat legacy charge).
        recovery: supervisor-derived recovery parameters (measured by a
            supervised fault-injection campaign, see
            :func:`repro.recover.run_supervised_campaign`).  When set,
            each CRASH/HANG/DETECTED compute event is resolved through
            the supervisor's measured recovery rate and latency instead
            of the flat ``reboot_downtime_s`` charge.
    """

    name: str
    spec: SocSpec = SNAPDRAGON_801
    dmr_level: ProtectionLevel = ProtectionLevel.NONE
    dmr_outcome_probs: dict[FaultOutcome, float] = field(
        default_factory=lambda: {
            FaultOutcome.BENIGN: 0.55,
            FaultOutcome.SDC: 0.30,
            FaultOutcome.CRASH: 0.10,
            FaultOutcome.HANG: 0.05,
            FaultOutcome.DETECTED: 0.0,
        }
    )
    dmr_overhead: float = 1.0
    scrubber_enabled: bool = False
    scrub_corrupted_read_frac: float = 0.002
    #: Fraction of unprotected DRAM flips that land in live data and reach
    #: the output (the rest hit free or dead memory).
    unprotected_dram_consumed_frac: float = 0.3
    sel_daemon_enabled: bool = False
    sel_min_detectable_a: float = 0.005
    sel_detect_latency_s: float = 16.0
    naive_sel_min_detectable_a: float = 0.3
    reboot_downtime_s: float = 30.0
    recovery: RecoveryParams | None = None


#: Commodity hardware, no software protection: a naive current threshold
#: is assumed (industry default), catching only large latch-ups.
UNPROTECTED_COMMODITY = ProtectionProfile(name="commodity-unprotected")

#: Commodity hardware with the full software stack at CFI+dataflow level.
#: Outcome distribution from the E4 campaigns at that level.
PROTECTED_COMMODITY = ProtectionProfile(
    name="commodity-protected",
    dmr_level=ProtectionLevel.CFI_DATAFLOW,
    dmr_outcome_probs={
        FaultOutcome.BENIGN: 0.60,
        FaultOutcome.SDC: 0.03,
        FaultOutcome.CRASH: 0.08,
        FaultOutcome.HANG: 0.04,
        FaultOutcome.DETECTED: 0.25,
    },
    dmr_overhead=2.1,
    scrubber_enabled=True,
    sel_daemon_enabled=True,
)

#: Radiation-hardened baseline: nearly immune to upsets (1e-3 rate factor
#: via the flux model), but Table 1's compute deficit applies.
RAD_HARD_BASELINE = ProtectionProfile(
    name="rad-hard",
    spec=ENDUROSAT_OBC_SPEC,
)

#: The protected commodity stack with the recovery supervisor flown:
#: observable compute failures resolve through the supervisor's measured
#: recovery rate and latency (order-of-magnitude defaults from the
#: supervised campaigns in ``benchmarks/bench_recovery.py``) instead of a
#: flat 30 s reboot each.
SUPERVISED_COMMODITY = replace(
    PROTECTED_COMMODITY,
    name="commodity-supervised",
    recovery=RecoveryParams(
        mean_downtime_s=0.5,
        success_frac=0.97,
        residual_sdc_frac=0.002,
        unrecovered_downtime_s=30.0,
    ),
)


@dataclass(frozen=True)
class MissionConfig:
    """One mission run.

    Attributes:
        profile: hardware + protection configuration.
        environment: radiation environment.
        duration_days: mission length.
        timeline: optional :class:`~repro.radiation.schedule.EnvironmentTimeline`.
            When set, each day-chunk's SEU rate uses the timeline's exact
            mean RAM multiplier over the chunk (SAA passes and SPE decay
            integrated in closed form) and the SEL rate uses the board
            sensitivity's mean multiplier, instead of the legacy
            start-of-chunk point sample from ``environment``.
    """

    profile: ProtectionProfile
    environment: Environment = LEO_NOMINAL
    duration_days: float = 365.0
    timeline: EnvironmentTimeline | None = None


def run_mission(
    config: MissionConfig,
    seed: int | np.random.Generator | None = None,
    tracer: Tracer | None = None,
) -> MissionReport:
    """Simulate one mission; returns the aggregated report.

    A ``tracer`` receives one :class:`MissionDay` event per resolved
    day-chunk and one :class:`MissionSel` event per latch-up; emission
    never touches the RNG, so traced missions reproduce untraced ones.
    """
    rng = make_rng(seed)
    profile = config.profile
    env = config.environment
    duration_s = config.duration_days * SECONDS_PER_DAY

    seu_rate = env.seu_rate_device_per_s(
        profile.spec.ram_bytes, rad_hard=profile.spec.rad_hard
    )
    sel_rate = env.sel_rate_per_device_day / SECONDS_PER_DAY
    if profile.spec.rad_hard:
        sel_rate *= 1e-3

    report = MissionReport(
        profile_name=profile.name,
        environment=env.name,
        duration_days=config.duration_days,
    )
    outcomes = list(profile.dmr_outcome_probs)
    probs = np.array([profile.dmr_outcome_probs[o] for o in outcomes])
    probs = probs / probs.sum()
    target_probs = np.array([
        DEFAULT_TARGET_WEIGHTS["dram"],
        DEFAULT_TARGET_WEIGHTS["cache"] + DEFAULT_TARGET_WEIGHTS["register"],
    ])
    target_probs = target_probs / target_probs.sum()

    # SEUs arrive tens of thousands of times per day over 2 GB, so they are
    # resolved in bulk per day-chunk (multinomial splits); SELs are rare
    # and handled individually.
    chunk_s = SECONDS_PER_DAY
    t = 0.0
    downtime_s = 0.0
    destroyed = False
    timeline = config.timeline
    while t < duration_s and not destroyed:
        t_end = min(t + chunk_s, duration_s)
        dt = t_end - t
        if timeline is not None:
            seu_multiplier = timeline.phase_profile(t, t_end, "ram").mean_multiplier
            sel_multiplier = timeline.phase_profile(t, t_end, "board").mean_multiplier
        else:
            seu_multiplier = sel_multiplier = env.rate_multiplier(t)
        chunk_downtime_s = 0.0
        chunk_failures = 0

        n_seu = int(rng.poisson(seu_rate * seu_multiplier * dt))
        report.seu_events += n_seu
        n_dram, n_compute = rng.multinomial(n_seu, target_probs)

        # Compute-affecting upsets: resolve against the DMR distribution.
        outcome_counts = rng.multinomial(n_compute, probs)
        for outcome, count in zip(outcomes, outcome_counts):
            count = int(count)
            report.compute_outcomes[outcome] += count
            if outcome is FaultOutcome.SDC:
                report.sdc_escapes += count
            if outcome in (FaultOutcome.CRASH, FaultOutcome.HANG,
                           FaultOutcome.DETECTED):
                chunk_failures += count
                recovery = profile.recovery
                if recovery is None:
                    # No supervisor flown: every observable failure costs
                    # a full reboot.
                    chunk_downtime_s += count * profile.reboot_downtime_s
                    continue
                recovered = int(rng.binomial(count, recovery.success_frac))
                unrecovered = count - recovered
                event_downtime = (
                    recovered * recovery.mean_downtime_s
                    + unrecovered * recovery.unrecovered_downtime_s
                )
                chunk_downtime_s += event_downtime
                report.recovered_events += recovered
                report.unrecovered_events += unrecovered
                report.recovery_downtime_s += event_downtime
                # A recovery that accepted a wrong output is an SDC.
                residual = int(
                    rng.binomial(recovered, recovery.residual_sdc_frac)
                )
                report.sdc_escapes += residual

        # DRAM upsets: hardware ECC, scrubber, or exposed.
        if profile.spec.ram_ecc:
            report.dram_corrected += int(n_dram)
        elif profile.scrubber_enabled:
            consumed = int(
                rng.binomial(n_dram, profile.scrub_corrupted_read_frac)
            )
            report.dram_sdc += consumed
            report.sdc_escapes += consumed
            report.dram_corrected += int(n_dram) - consumed
        else:
            consumed = int(
                rng.binomial(n_dram, profile.unprotected_dram_consumed_frac)
            )
            report.dram_sdc += consumed
            report.sdc_escapes += consumed

        # Latch-ups: individually resolved.
        n_sel = int(rng.poisson(sel_rate * sel_multiplier * dt))
        for _ in range(n_sel):
            report.sel_events += 1
            threshold = (
                profile.sel_min_detectable_a
                if profile.sel_daemon_enabled
                else profile.naive_sel_min_detectable_a
            )
            # Latch-up severity drawn log-uniform over [5 mA, 1 A].
            delta = float(np.exp(rng.uniform(np.log(0.005), np.log(1.0))))
            detected = profile.spec.rad_hard or delta >= threshold
            if profile.spec.rad_hard:
                report.sel_survived += 1  # latch-up immune by design
            elif delta >= threshold:
                report.sel_survived += 1
                chunk_downtime_s += (
                    profile.sel_detect_latency_s + profile.reboot_downtime_s
                )
            else:
                destroyed = True
                report.destroyed = True
                report.destroyed_at_day = (
                    t + float(rng.uniform(0.0, dt))
                ) / SECONDS_PER_DAY
            if tracer is not None:
                tracer.emit(MissionSel(
                    day=t / SECONDS_PER_DAY,
                    delta_a=delta,
                    detected=detected,
                    destroyed=destroyed,
                ))
            if destroyed:
                break
        downtime_s += chunk_downtime_s
        if tracer is not None:
            tracer.emit(MissionDay(
                day=t_end / SECONDS_PER_DAY,
                seu_events=n_seu,
                compute_failures=chunk_failures,
                downtime_s=chunk_downtime_s,
            ))
        t = t_end

    alive_s = (t if not destroyed else
               (report.destroyed_at_day or 0.0) * SECONDS_PER_DAY)
    # Accumulated downtime can exceed alive time under failure-heavy
    # profiles (recoveries overlap in real hardware; the charges here are
    # additive) — useful time is floored at zero, never negative.
    useful_s = max(0.0, alive_s - downtime_s)
    report.uptime_fraction = useful_s / duration_s
    # Compute delivered: alive time x throughput / protection overhead,
    # normalized to the commodity spec running unprotected.
    throughput = profile.spec.compute_score / SNAPDRAGON_801.compute_score
    report.compute_delivered = (
        useful_s / duration_s * throughput / profile.dmr_overhead
    )
    report.cost_usd = profile.spec.cost_usd
    return report


def sweep_profiles(
    profiles: list[ProtectionProfile],
    environment: Environment = LEO_NOMINAL,
    duration_days: float = 365.0,
    n_runs: int = 5,
    seed: int = 0,
) -> list[MissionReport]:
    """Run each profile ``n_runs`` times and average the reports."""
    rng = make_rng(seed)
    reports = []
    for profile in profiles:
        runs = [
            run_mission(
                MissionConfig(
                    profile=profile,
                    environment=environment,
                    duration_days=duration_days,
                ),
                seed=child,
            )
            for child in rng.spawn(n_runs)
        ]
        reports.append(MissionReport.average(runs))
    return reports
